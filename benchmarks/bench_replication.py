"""E17 (extension): the replication write-cost / availability trade-off.

Benchmarks index construction over :class:`ReplicatedDHT` at replication
factors 1-3 and records the routed-operation multiplier — the price of
the availability the crash tests demonstrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, LHTIndex
from repro.dht import LocalDHT, ReplicatedDHT

N = 5_000


def _build(n_replicas: int) -> LHTIndex:
    keys = [float(k) for k in np.random.default_rng(7).random(N)]
    dht = ReplicatedDHT(LocalDHT(64, 0), n_replicas=n_replicas)
    index = LHTIndex(dht, IndexConfig(theta_split=50, max_depth=20))
    for key in keys:
        index.insert(key)
    return index


@pytest.mark.benchmark(group="replication-build")
@pytest.mark.parametrize("n_replicas", [1, 2, 3])
def test_replicated_build(benchmark, n_replicas):
    index = benchmark.pedantic(
        _build, args=(n_replicas,), rounds=2, iterations=1
    )
    benchmark.extra_info["routed_ops"] = index.dht.metrics.dht_lookups


def test_write_cost_scales_with_replicas():
    ops = {r: _build(r).dht.metrics.dht_lookups for r in (1, 2, 3)}
    # puts are replicated; gets are not (primary answers), so the total
    # grows sub-linearly in r but strictly monotonically.
    assert ops[1] < ops[2] < ops[3]
    assert ops[3] < 3 * ops[1]
