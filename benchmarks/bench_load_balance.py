"""E15: storage load-balance measurement.

Benchmarks per-peer load aggregation over a built index and asserts the
extension finding: LHT's placement imbalance is independent of data
skew (uniform vs gaussian Gini within a small band of each other).
"""

from __future__ import annotations

import pytest

from repro.analysis import gini_coefficient
from repro.core import IndexInspector


def _record_gini(index) -> float:
    dht = index.dht
    loads: dict[int, int] = {pid: 0 for pid in dht.peer_loads()}
    for storage_label, bucket in IndexInspector(dht).buckets().items():
        loads[dht.peer_of(str(storage_label))] += len(bucket)
    return gini_coefficient(list(loads.values()))


@pytest.mark.benchmark(group="load-balance")
def test_gini_uniform(benchmark, lht_uniform):
    value = benchmark(_record_gini, lht_uniform)
    benchmark.extra_info["gini"] = value


@pytest.mark.benchmark(group="load-balance")
def test_gini_gaussian(benchmark, lht_gaussian):
    value = benchmark(_record_gini, lht_gaussian)
    benchmark.extra_info["gini"] = value


def test_skew_independence(lht_uniform, lht_gaussian):
    uniform = _record_gini(lht_uniform)
    gaussian = _record_gini(lht_gaussian)
    assert abs(uniform - gaussian) < 0.15
