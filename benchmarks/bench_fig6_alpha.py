"""E1/E2 (Fig. 6): tree growth and the average split fraction ᾱ.

Times LHT bulk construction (the workload behind Fig. 6's curves) at the
paper's two headline thresholds, and asserts the measured ᾱ against the
closed form ``1/2 + 1/(2θ)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, LHTIndex
from repro.dht import LocalDHT
from repro.experiments.fig6_alpha import expected_alpha

N = 8_192


def _grow(theta: int, distribution: str) -> LHTIndex:
    rng = np.random.default_rng(1)
    if distribution == "gaussian":
        keys: list[float] = []
        while len(keys) < N:
            batch = rng.normal(0.5, 1 / 6, 2 * N)
            keys.extend(float(k) for k in batch if 0 <= k < 1)
        keys = keys[:N]
    else:
        keys = [float(k) for k in rng.random(N)]
    index = LHTIndex(LocalDHT(64, 0), IndexConfig(theta_split=theta, max_depth=24))
    index.bulk_load(keys)
    return index


@pytest.mark.benchmark(group="fig6-growth")
@pytest.mark.parametrize("theta", [40, 160])
@pytest.mark.parametrize("distribution", ["uniform", "gaussian"])
def test_tree_growth_alpha(benchmark, theta, distribution):
    index = benchmark.pedantic(
        _grow, args=(theta, distribution), rounds=3, iterations=1
    )
    alpha = index.ledger.average_alpha
    benchmark.extra_info["average_alpha"] = alpha
    benchmark.extra_info["expected_alpha"] = expected_alpha(theta)
    # Fig. 6's shape: ᾱ near 1/2 + 1/(2θ); gaussian deviates more.
    tolerance = 0.02 if distribution == "uniform" else 0.06
    assert abs(alpha - expected_alpha(theta)) < tolerance
