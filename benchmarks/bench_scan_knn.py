"""E18 (extension): ordered scan and k-nearest-key query cost.

Benchmarks the traversal extensions on the prebuilt 20k-record index:
a full ordered scan costs ~one DHT-lookup per leaf; a kNN query touches
only a neighborhood of leaves regardless of index size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scan import knn_query, scan_records


@pytest.mark.benchmark(group="scan")
def test_full_ordered_scan(benchmark, lht_uniform):
    def run() -> int:
        return sum(1 for _ in scan_records(lht_uniform.dht, lht_uniform.config))

    count = benchmark(run)
    assert count == len(lht_uniform)


@pytest.mark.benchmark(group="knn")
@pytest.mark.parametrize("k", [1, 10, 100])
def test_knn(benchmark, lht_uniform, k):
    probes = [float(p) for p in np.random.default_rng(8).random(50)]

    def run() -> int:
        return sum(
            knn_query(lht_uniform.dht, lht_uniform.config, p, k).dht_lookups
            for p in probes
        )

    total = benchmark(run)
    benchmark.extra_info["lookups_per_query"] = total / len(probes)


def test_knn_locality(lht_uniform):
    """kNN cost stays near the lookup cost for small k — it must not
    degrade into a scan."""
    result = knn_query(lht_uniform.dht, lht_uniform.config, 0.5, 5)
    assert result.dht_lookups < 12
    assert len(result.records) == 5
