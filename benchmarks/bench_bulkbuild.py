"""Bulk-build fast path vs incremental replay (the PR's headline).

Times both construction paths on the same key set and asserts the fast
path's count contract — one routed put per final leaf, zero records
moved — plus byte-identical structure (leaf count, record count) with
the incremental replay of the sorted input.
"""

from __future__ import annotations

import pytest

from repro.core import IndexConfig, LHTIndex
from repro.dht import LocalDHT

from conftest import BENCH_DEPTH, BENCH_THETA


def _build(keys: list[float], fast: bool) -> LHTIndex:
    index = LHTIndex(
        LocalDHT(64, 0), IndexConfig(theta_split=BENCH_THETA, max_depth=BENCH_DEPTH)
    )
    index.bulk_load(keys, fast=fast)
    return index


@pytest.mark.benchmark(group="bulk-build")
@pytest.mark.parametrize("path", ["incremental", "fast"])
def test_bulk_build_paths(benchmark, uniform_keys, path):
    fast = path == "fast"
    index = benchmark.pedantic(
        _build, args=(uniform_keys, fast), rounds=3, iterations=1
    )
    metrics = index.dht.metrics.snapshot()
    benchmark.extra_info["leaf_count"] = index.leaf_count
    benchmark.extra_info["records_moved"] = metrics.records_moved
    reference = _build(sorted(uniform_keys), fast=False)
    assert index.record_count == reference.record_count
    if fast:
        # One put per final leaf (+1 for the bootstrap root bucket),
        # nothing moved — the §5 plan contract — and the same partition
        # as the incremental replay of the sorted input.  The unsorted
        # incremental arm may differ by a few leaves (order dependence).
        assert metrics.records_moved == 0
        assert metrics.puts == index.leaf_count + 1
        assert index.leaf_count == reference.leaf_count
    else:
        assert metrics.records_moved > 0
