"""E13: routed-operation cost across DHT substrates.

Benchmarks raw get throughput per substrate and records the mean
physical hops per routed operation (the cost-model's ``j`` driver).
Index-level counts are substrate-independent — asserted in the test
suite; here we measure what *does* differ: routing work.
"""

from __future__ import annotations

import pytest

from repro.dht import CANDHT, ChordDHT, KademliaDHT, LocalDHT, PastryDHT, TapestryDHT

SUBSTRATES = {
    "local": lambda: LocalDHT(n_peers=256, seed=0),
    "chord": lambda: ChordDHT(n_peers=256, seed=0),
    "can": lambda: CANDHT(n_peers=256, seed=0),
    "kademlia": lambda: KademliaDHT(n_peers=256, seed=0),
    "pastry": lambda: PastryDHT(n_peers=256, seed=0),
    "tapestry": lambda: TapestryDHT(n_peers=256, seed=0),
}

N_OPS = 500


@pytest.mark.benchmark(group="substrates-get")
@pytest.mark.parametrize("name", sorted(SUBSTRATES))
def test_routed_gets(benchmark, name):
    dht = SUBSTRATES[name]()
    for i in range(N_OPS):
        dht.put(f"k{i}", i)

    def run() -> None:
        for i in range(N_OPS):
            dht.get(f"k{i}")

    benchmark(run)
    benchmark.extra_info["mean_hops_per_op"] = (
        dht.metrics.hops / dht.metrics.dht_lookups
    )


def test_hops_scale_sublinearly():
    """All routed substrates stay well under linear scan cost."""
    for name, factory in SUBSTRATES.items():
        dht = factory()
        for i in range(100):
            dht.put(f"k{i}", i)
        mean_hops = dht.metrics.hops / dht.metrics.dht_lookups
        assert mean_hops < 32, f"{name}: {mean_hops} hops for 256 peers"
