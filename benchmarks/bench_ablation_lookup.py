"""E16 (ablation): binary search vs linear descent in lookups.

LHT's lookup saving has two ingredients — the name-class collapse
(D → D/2 candidates) and the binary search over them.  This ablation
separates them by benchmarking all four combinations:

* LHT binary (Alg. 2)      — log(D/2) probes
* LHT linear               — O(D/2) probes (collapse only)
* PHT binary               — log(D) probes (search only)
* PHT linear               — O(leaf depth) probes (neither)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import lht_lookup, lht_lookup_linear

N_PROBES = 500


def _probes() -> list[float]:
    return [float(k) for k in np.random.default_rng(6).random(N_PROBES)]


@pytest.mark.benchmark(group="ablation-lookup")
def test_lht_binary(benchmark, lht_uniform):
    probes = _probes()
    total = benchmark(
        lambda: sum(
            lht_lookup(lht_uniform.dht, lht_uniform.config, p).dht_lookups
            for p in probes
        )
    )
    benchmark.extra_info["probes_per_lookup"] = total / N_PROBES


@pytest.mark.benchmark(group="ablation-lookup")
def test_lht_linear(benchmark, lht_uniform):
    probes = _probes()
    total = benchmark(
        lambda: sum(
            lht_lookup_linear(
                lht_uniform.dht, lht_uniform.config, p
            ).dht_lookups
            for p in probes
        )
    )
    benchmark.extra_info["probes_per_lookup"] = total / N_PROBES


@pytest.mark.benchmark(group="ablation-lookup")
def test_pht_binary(benchmark, pht_uniform):
    probes = _probes()
    total = benchmark(
        lambda: sum(pht_uniform.lookup(p).dht_lookups for p in probes)
    )
    benchmark.extra_info["probes_per_lookup"] = total / N_PROBES


@pytest.mark.benchmark(group="ablation-lookup")
def test_pht_linear(benchmark, pht_uniform):
    probes = _probes()
    total = benchmark(
        lambda: sum(pht_uniform.lookup_linear(p).dht_lookups for p in probes)
    )
    benchmark.extra_info["probes_per_lookup"] = total / N_PROBES


def test_ablation_ordering(lht_uniform, pht_uniform):
    """Binary beats linear within each scheme; LHT binary beats PHT
    binary (the paper's claim isolates to the name-class collapse)."""
    probes = _probes()
    lht_bin = sum(
        lht_lookup(lht_uniform.dht, lht_uniform.config, p).dht_lookups
        for p in probes
    )
    lht_lin = sum(
        lht_lookup_linear(lht_uniform.dht, lht_uniform.config, p).dht_lookups
        for p in probes
    )
    pht_bin = sum(pht_uniform.lookup(p).dht_lookups for p in probes)
    pht_lin = sum(pht_uniform.lookup_linear(p).dht_lookups for p in probes)
    assert lht_bin < lht_lin
    assert pht_bin < pht_lin
    assert lht_bin < pht_bin
