"""E11 (Eq. 3): the maintenance saving ratio, analytic vs measured.

Benchmarks the measured-cost computation over real ledgers and asserts
the paper's 50%-75% band at every γ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel import LinearCostModel, saving_ratio

GAMMAS = (0.1, 1.0, 10.0, 100.0, 1000.0)


def _measured(lht, pht, gamma: float) -> float:
    theta = lht.config.theta_split
    model = LinearCostModel(record_move_cost=gamma / theta, lookup_cost=1.0)
    return model.measured_saving_ratio(lht.ledger, pht.ledger)


@pytest.mark.benchmark(group="eq3")
def test_saving_ratio_sweep(benchmark, lht_uniform, pht_uniform):
    results = benchmark(
        lambda: {g: _measured(lht_uniform, pht_uniform, g) for g in GAMMAS}
    )
    for gamma, measured in results.items():
        benchmark.extra_info[f"gamma_{gamma}"] = measured
        assert 0.45 <= measured <= 0.80
        assert abs(measured - saving_ratio(gamma)) < 0.1


def test_paper_band():
    """'saves up to 75% (at least 50%)' — the abstract's claim."""
    assert saving_ratio(0.0) == 0.75
    assert saving_ratio(1e9) > 0.5
