"""E5/E6 (Fig. 8): LHT-lookup vs PHT-lookup cost and speed.

Times lookups on prebuilt 20k-record indexes (uniform and gaussian) and
asserts the figure's shape: LHT uses fewer DHT-lookups than PHT (its
binary search runs over ≈ D/2 name classes instead of D lengths).
"""

from __future__ import annotations

import numpy as np
import pytest

N_PROBES = 1_000


def _probes() -> list[float]:
    return [float(k) for k in np.random.default_rng(3).random(N_PROBES)]


def _total_cost(index, probes) -> int:
    return sum(index.lookup(k).dht_lookups for k in probes)


@pytest.mark.benchmark(group="fig8-lookup-uniform")
def test_lht_lookup_uniform(benchmark, lht_uniform):
    probes = _probes()
    total = benchmark(_total_cost, lht_uniform, probes)
    benchmark.extra_info["dht_lookups_per_lookup"] = total / N_PROBES


@pytest.mark.benchmark(group="fig8-lookup-uniform")
def test_pht_lookup_uniform(benchmark, pht_uniform):
    probes = _probes()
    total = benchmark(_total_cost, pht_uniform, probes)
    benchmark.extra_info["dht_lookups_per_lookup"] = total / N_PROBES


@pytest.mark.benchmark(group="fig8-lookup-gaussian")
def test_lht_lookup_gaussian(benchmark, lht_gaussian):
    probes = _probes()
    total = benchmark(_total_cost, lht_gaussian, probes)
    benchmark.extra_info["dht_lookups_per_lookup"] = total / N_PROBES


@pytest.mark.benchmark(group="fig8-lookup-gaussian")
def test_pht_lookup_gaussian(benchmark, pht_gaussian):
    probes = _probes()
    total = benchmark(_total_cost, pht_gaussian, probes)
    benchmark.extra_info["dht_lookups_per_lookup"] = total / N_PROBES


def test_fig8_shape(lht_uniform, pht_uniform, lht_gaussian, pht_gaussian):
    """LHT's lookup cost sits below PHT's on both distributions."""
    probes = _probes()
    for lht, pht in ((lht_uniform, pht_uniform), (lht_gaussian, pht_gaussian)):
        lht_cost = _total_cost(lht, probes)
        pht_cost = _total_cost(pht, probes)
        saving = 1 - lht_cost / pht_cost
        assert saving > 0.1, f"expected >10% lookup saving, got {saving:.1%}"
