"""E9/E10 (Fig. 10): range-query latency (parallel DHT-lookup steps).

Asserts the figure's ordering on prebuilt indexes: PHT(sequential) is
worst by roughly an order of magnitude at wide spans (its walk is fully
sequential); LHT beats PHT(parallel).
"""

from __future__ import annotations

import numpy as np
import pytest

N_QUERIES = 100
SPAN = 0.1


def _queries(span: float = SPAN) -> list[tuple[float, float]]:
    rng = np.random.default_rng(5)
    lows = rng.random(N_QUERIES) * (1 - span)
    return [(float(lo), float(lo) + span) for lo in lows]


def _latency(run, span: float = SPAN) -> int:
    return sum(run(lo, hi).parallel_steps for lo, hi in _queries(span))


@pytest.mark.benchmark(group="fig10-latency")
def test_lht_range_latency(benchmark, lht_uniform):
    total = benchmark(_latency, lht_uniform.range_query)
    benchmark.extra_info["steps_per_query"] = total / N_QUERIES


@pytest.mark.benchmark(group="fig10-latency")
def test_pht_seq_range_latency(benchmark, pht_uniform):
    total = benchmark(_latency, pht_uniform.range_query_sequential)
    benchmark.extra_info["steps_per_query"] = total / N_QUERIES


@pytest.mark.benchmark(group="fig10-latency")
def test_pht_par_range_latency(benchmark, pht_uniform):
    total = benchmark(_latency, pht_uniform.range_query_parallel)
    benchmark.extra_info["steps_per_query"] = total / N_QUERIES


def test_fig10_ordering(lht_uniform, pht_uniform, lht_gaussian, pht_gaussian):
    for lht, pht in ((lht_uniform, pht_uniform), (lht_gaussian, pht_gaussian)):
        lht_steps = _latency(lht.range_query)
        seq_steps = _latency(pht.range_query_sequential)
        par_steps = _latency(pht.range_query_parallel)
        assert lht_steps < par_steps < seq_steps
        # "by an order of magnitude": sequential is several-fold worse
        assert seq_steps > 3 * par_steps
