"""E12 (Theorem 3): min/max queries in one DHT-lookup.

Benchmarks min/max on the prebuilt 20k-record index and asserts the
constant single-lookup cost, against PHT's depth-proportional descent.
"""

from __future__ import annotations

import pytest


@pytest.mark.benchmark(group="minmax")
def test_lht_min(benchmark, lht_uniform):
    result = benchmark(lht_uniform.min_query)
    assert result.dht_lookups == 1


@pytest.mark.benchmark(group="minmax")
def test_lht_max(benchmark, lht_uniform):
    result = benchmark(lht_uniform.max_query)
    assert result.dht_lookups == 1


@pytest.mark.benchmark(group="minmax")
def test_pht_min(benchmark, pht_uniform):
    record, cost = benchmark(pht_uniform.min_query)
    assert cost > 1  # trie-edge descent: one probe per level


def test_theorem3_shape(lht_uniform, pht_uniform, uniform_keys):
    assert lht_uniform.min_query().record.key == min(uniform_keys)
    assert lht_uniform.max_query().record.key == max(uniform_keys)
    _, pht_cost = pht_uniform.min_query()
    assert lht_uniform.min_query().dht_lookups < pht_cost
