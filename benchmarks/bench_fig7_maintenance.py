"""E3/E4 (Fig. 7): cumulative maintenance cost of LHT vs PHT.

Times index construction for both schemes on the same dataset and
asserts the paper's ratios: LHT moves ≈ half the records and spends
≈ a quarter of the maintenance DHT-lookups.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pht import PHTIndex
from repro.core import IndexConfig, LHTIndex
from repro.dht import LocalDHT

N = 16_384
THETA = 100


def _dataset() -> list[float]:
    return [float(k) for k in np.random.default_rng(2).random(N)]


def _build(scheme: str):
    keys = _dataset()
    config = IndexConfig(theta_split=THETA, max_depth=24)
    cls = LHTIndex if scheme == "lht" else PHTIndex
    index = cls(LocalDHT(64, 0), config)
    index.bulk_load(keys)
    return index


@pytest.mark.benchmark(group="fig7-build")
@pytest.mark.parametrize("scheme", ["lht", "pht"])
def test_build_maintenance(benchmark, scheme):
    index = benchmark.pedantic(_build, args=(scheme,), rounds=3, iterations=1)
    benchmark.extra_info["maintenance_lookups"] = index.ledger.maintenance_lookups
    benchmark.extra_info["records_moved"] = index.ledger.maintenance_records_moved
    benchmark.extra_info["splits"] = index.ledger.split_count


def test_fig7_ratios():
    """The figure's comparative claims, asserted once per bench run."""
    lht = _build("lht")
    pht = _build("pht")
    lookup_ratio = (
        lht.ledger.maintenance_lookups / pht.ledger.maintenance_lookups
    )
    move_ratio = (
        lht.ledger.maintenance_records_moved
        / pht.ledger.maintenance_records_moved
    )
    assert 0.2 < lookup_ratio < 0.3, f"Fig. 7b expects ~25%, got {lookup_ratio:.1%}"
    assert 0.4 < move_ratio < 0.6, f"Fig. 7a expects ~50%, got {move_ratio:.1%}"
