"""E14: simulated churn throughput and post-churn availability.

Benchmarks a full churn simulation (events + stabilization) over a Chord
ring carrying an LHT, and asserts graceful churn preserves availability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, LHTIndex
from repro.dht import ChordDHT, ChurnConfig, ChurnDriver
from repro.sim import Simulator


def _run_churn(crash_fraction: float):
    dht = ChordDHT(n_peers=32, seed=0)
    index = LHTIndex(dht, IndexConfig(theta_split=20, max_depth=20))
    keys = [float(k) for k in np.random.default_rng(0).random(1_000)]
    for key in keys:
        index.insert(key)
    sim = Simulator()
    driver = ChurnDriver(
        dht,
        sim,
        np.random.default_rng(1),
        ChurnConfig(
            join_rate=0.5,
            leave_rate=0.5,
            crash_fraction=crash_fraction,
            min_peers=8,
        ),
    )
    driver.start(until=30.0)
    sim.run_until(30.0)
    dht.check_ring()
    return dht, index, keys, driver


@pytest.mark.benchmark(group="churn")
@pytest.mark.parametrize("crash_fraction", [0.0, 0.5])
def test_churn_simulation(benchmark, crash_fraction):
    dht, _, _, driver = benchmark.pedantic(
        _run_churn, args=(crash_fraction,), rounds=2, iterations=1
    )
    benchmark.extra_info["events"] = driver.joins + driver.leaves + driver.crashes
    benchmark.extra_info["peers_after"] = dht.n_peers


def test_graceful_availability():
    _, index, keys, _ = _run_churn(0.0)
    for key in keys[:200]:
        record, _ = index.exact_match(key)
        assert record is not None
