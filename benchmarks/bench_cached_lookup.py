"""E23 companion: cached vs uncached exact-match cost and speed.

Times repeated exact matches on a prebuilt 20k-record index with the
leaf cache on and off, and asserts the extension's shape: an ample warm
cache answers in ~1 validated get per probe while the uncached baseline
pays the full Alg. 2 binary search, with identical answers either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, LHTIndex
from repro.dht import LocalDHT

from conftest import BENCH_DEPTH, BENCH_THETA

N_PROBES = 1_000
#: Zipf exponent for the skewed probe stream (cf. E23's sweep).
SKEW = 1.2


@pytest.fixture(scope="session")
def lht_cached(uniform_keys) -> LHTIndex:
    index = LHTIndex(
        LocalDHT(64, 0),
        IndexConfig(
            theta_split=BENCH_THETA,
            max_depth=BENCH_DEPTH,
            cache_enabled=True,
            cache_capacity=4096,
        ),
    )
    index.bulk_load(uniform_keys)
    return index


def _zipf_probes(keys: list[float]) -> list[float]:
    rng = np.random.default_rng(5)
    ranked = rng.permutation(keys)
    weights = np.arange(1, len(ranked) + 1, dtype=float) ** (-SKEW)
    weights /= weights.sum()
    return [float(k) for k in rng.choice(ranked, size=N_PROBES, p=weights)]


def _total_cost(index, probes) -> int:
    return sum(index.exact_match(k)[1] for k in probes)


@pytest.mark.benchmark(group="cached-exact-match")
def test_uncached_exact_match(benchmark, lht_uniform, uniform_keys):
    probes = _zipf_probes(uniform_keys)
    total = benchmark(_total_cost, lht_uniform, probes)
    benchmark.extra_info["dht_lookups_per_probe"] = total / N_PROBES


@pytest.mark.benchmark(group="cached-exact-match")
def test_cached_exact_match(benchmark, lht_cached, uniform_keys):
    probes = _zipf_probes(uniform_keys)
    total = benchmark(_total_cost, lht_cached, probes)
    benchmark.extra_info["dht_lookups_per_probe"] = total / N_PROBES


def test_cached_shape(lht_uniform, lht_cached, uniform_keys):
    """The warm cache cuts amortized cost while preserving every answer."""
    probes = _zipf_probes(uniform_keys)
    uncached = cached = 0
    for key in probes:
        u_record, u_cost = lht_uniform.exact_match(key)
        c_record, c_cost = lht_cached.exact_match(key)
        assert u_record is not None and c_record is not None
        assert u_record.key == c_record.key
        uncached += u_cost
        cached += c_cost
    assert cached / N_PROBES <= 1.5, "warm ample cache should amortize to ~1 get"
    assert cached < uncached / 1.5, "expected a >1.5x amortized-cost cut"
