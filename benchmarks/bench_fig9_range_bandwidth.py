"""E7/E8 (Fig. 9): range-query bandwidth of LHT vs PHT(seq) vs PHT(par).

Times a fixed query batch per algorithm on prebuilt indexes and asserts
the figure's ordering: PHT(parallel) pays the most DHT-lookups (it visits
every internal trie node under the LCA); LHT is lowest, at most a few
lookups above the per-bucket optimum.
"""

from __future__ import annotations

import numpy as np
import pytest

N_QUERIES = 100
SPAN = 0.05


def _queries() -> list[tuple[float, float]]:
    rng = np.random.default_rng(4)
    lows = rng.random(N_QUERIES) * (1 - SPAN)
    return [(float(lo), float(lo) + SPAN) for lo in lows]


def _bandwidth(run) -> int:
    return sum(run(lo, hi).dht_lookups for lo, hi in _queries())


@pytest.mark.benchmark(group="fig9-bandwidth")
def test_lht_range_bandwidth(benchmark, lht_uniform):
    total = benchmark(_bandwidth, lht_uniform.range_query)
    benchmark.extra_info["dht_lookups_per_query"] = total / N_QUERIES


@pytest.mark.benchmark(group="fig9-bandwidth")
def test_pht_seq_range_bandwidth(benchmark, pht_uniform):
    total = benchmark(_bandwidth, pht_uniform.range_query_sequential)
    benchmark.extra_info["dht_lookups_per_query"] = total / N_QUERIES


@pytest.mark.benchmark(group="fig9-bandwidth")
def test_pht_par_range_bandwidth(benchmark, pht_uniform):
    total = benchmark(_bandwidth, pht_uniform.range_query_parallel)
    benchmark.extra_info["dht_lookups_per_query"] = total / N_QUERIES


def test_fig9_ordering(lht_uniform, pht_uniform):
    lht = _bandwidth(lht_uniform.range_query)
    seq = _bandwidth(pht_uniform.range_query_sequential)
    par = _bandwidth(pht_uniform.range_query_parallel)
    assert lht <= seq < par, (lht, seq, par)


def test_fig9_near_optimality(lht_uniform):
    """§6.3: bandwidth ≤ B + 3 (+1 for the repaired child case)."""
    for lo, hi in _queries():
        result = lht_uniform.range_query(lo, hi)
        assert result.dht_lookups <= result.buckets_visited + 4
