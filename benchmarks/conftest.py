"""Shared prebuilt indexes for the benchmark suite.

Benchmarks time the *operations* the paper measures (tree growth,
lookups, range queries, min/max) on indexes built once per session; each
module also asserts the paper's qualitative shape so a regression in the
algorithms fails the bench run, not just slows it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pht import PHTIndex
from repro.core import IndexConfig, LHTIndex
from repro.dht import LocalDHT

BENCH_SIZE = 20_000
BENCH_THETA = 100
BENCH_DEPTH = 20


def _keys(distribution: str, n: int = BENCH_SIZE, seed: int = 0) -> list[float]:
    rng = np.random.default_rng(seed)
    if distribution == "gaussian":
        out: list[float] = []
        while len(out) < n:
            batch = rng.normal(0.5, 1 / 6, 2 * (n - len(out)))
            out.extend(float(k) for k in batch if 0.0 <= k < 1.0)
        return out[:n]
    return [float(k) for k in rng.random(n)]


@pytest.fixture(scope="session")
def uniform_keys() -> list[float]:
    return _keys("uniform")


@pytest.fixture(scope="session")
def gaussian_keys() -> list[float]:
    return _keys("gaussian")


@pytest.fixture(scope="session")
def lht_uniform(uniform_keys) -> LHTIndex:
    index = LHTIndex(
        LocalDHT(64, 0), IndexConfig(theta_split=BENCH_THETA, max_depth=BENCH_DEPTH)
    )
    index.bulk_load(uniform_keys)
    return index


@pytest.fixture(scope="session")
def pht_uniform(uniform_keys) -> PHTIndex:
    index = PHTIndex(
        LocalDHT(64, 0), IndexConfig(theta_split=BENCH_THETA, max_depth=BENCH_DEPTH)
    )
    index.bulk_load(uniform_keys)
    return index


@pytest.fixture(scope="session")
def lht_gaussian(gaussian_keys) -> LHTIndex:
    index = LHTIndex(
        LocalDHT(64, 0), IndexConfig(theta_split=BENCH_THETA, max_depth=BENCH_DEPTH)
    )
    index.bulk_load(gaussian_keys)
    return index


@pytest.fixture(scope="session")
def pht_gaussian(gaussian_keys) -> PHTIndex:
    index = PHTIndex(
        LocalDHT(64, 0), IndexConfig(theta_split=BENCH_THETA, max_depth=BENCH_DEPTH)
    )
    index.bulk_load(gaussian_keys)
    return index
