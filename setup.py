"""Setup shim for environments without PEP 517 build isolation (offline).

All project metadata lives in pyproject.toml; this file only enables
``pip install -e .`` with legacy setuptools when the ``wheel`` package is
unavailable.
"""

from setuptools import setup

setup()
