"""Resilience layer: retry/backoff, circuit breaking, fault recovery.

The paper motivates LHT with continuous peer dynamism (§1) yet its
algorithms read a failed DHT-get structurally (Alg. 2).  This package
supplies the recovery machinery a deployment needs between the index
algorithms and a lossy substrate:

* :class:`RetryPolicy` — seeded exponential backoff + jitter with
  per-operation attempt and timeout budgets;
* :class:`CircuitBreaker` — consecutive-failure breaker that half-opens
  on a sim-clock schedule;
* :class:`ResilientDHT` — the composition, stackable over any
  :class:`~repro.dht.base.DHT` (including :class:`~repro.dht.faulty.FaultyDHT`
  and :class:`~repro.dht.replicated.ReplicatedDHT`).

Degraded-mode *query* semantics (``complete`` flags, unreachable
intervals, proven-absent vs unreachable lookups) live with the query
algorithms in :mod:`repro.core`; this package handles the substrate
boundary.  See ``docs/resilience.md`` for the full design.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.policy import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY_POLICY,
    RetryPolicy,
)
from repro.resilience.wrapper import ResilientDHT

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY_POLICY",
    "RetryPolicy",
    "ResilientDHT",
]
