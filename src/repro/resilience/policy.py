"""Seeded retry policy: exponential backoff with deterministic jitter.

Retries are the first line of defence against the transient failures the
paper motivates LHT with (§1): a dropped DHT-get is indistinguishable
from "this internal node does not exist" (Alg. 2's structural reading),
so the only way to shrink the false-absence probability is to ask again.
With an independent per-attempt drop probability ``p`` and ``k`` total
attempts, the residual false-absence probability is ``p^k``.

All jitter draws flow through an explicitly seeded
:class:`numpy.random.Generator` (see :func:`repro.sim.rng.derive_seed`),
so a replayed workload performs bit-identical backoff decisions — the
same property rule LHT002 enforces for the rest of the simulation core.
Delays are *virtual* (simulated seconds): the wrapper never sleeps, it
accounts the wait on its clock so breaker schedules and timeout budgets
stay meaningful inside a discrete-event run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "NO_RETRY_POLICY"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-operation retry budget with exponential backoff + jitter.

    Attributes:
        max_attempts: Total tries per operation (1 = no retries).
        base_delay: Backoff before the first retry, in simulated seconds.
        multiplier: Exponential growth factor between consecutive delays.
        max_delay: Cap on a single backoff delay.
        jitter: Fraction of each delay randomized away: the delay is drawn
            uniformly from ``[delay * (1 - jitter), delay]``.  ``0`` makes
            backoff fully deterministic even without the seeded stream.
        timeout_budget: Per-operation cap on *cumulative* backoff delay
            (the "per-key timeout budget"): once the accumulated waits
            would exceed it, remaining attempts are forfeited.  ``None``
            disables the cap.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    timeout_budget: float | None = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1: {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.timeout_budget is not None and self.timeout_budget < 0:
            raise ConfigurationError(
                f"timeout_budget must be non-negative: {self.timeout_budget}"
            )

    @property
    def max_retries(self) -> int:
        """Retries after the initial attempt (``max_attempts - 1``)."""
        return self.max_attempts - 1

    def backoff(self, retry: int, rng: np.random.Generator) -> float:
        """Simulated delay before retry number ``retry`` (0-based).

        Exponential schedule with the configured cap, randomized by the
        jitter fraction from the seeded generator.
        """
        if retry < 0:
            raise ConfigurationError(f"retry index must be >= 0: {retry}")
        delay = min(self.max_delay, self.base_delay * self.multiplier**retry)
        if self.jitter:
            delay *= 1.0 - self.jitter * float(rng.random())
        return delay

    def residual_failure(self, drop_rate: float) -> float:
        """False-absence probability left after the full attempt budget,
        for an independent per-attempt drop probability."""
        if not 0.0 <= drop_rate <= 1.0:
            raise ConfigurationError(f"drop rate must be in [0, 1]: {drop_rate}")
        return drop_rate**self.max_attempts


#: The default policy used by :class:`repro.resilience.ResilientDHT`:
#: 5 attempts leave a 0.2^5 = 0.032% residual at a 20% drop rate.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: A pass-through policy: one attempt, no backoff (useful as the control
#: arm of availability experiments).
NO_RETRY_POLICY = RetryPolicy(max_attempts=1, timeout_budget=None)
