"""ResilientDHT: retries + timeout budgets + circuit breaking over any DHT.

The paper's lookup algorithm reads a failed DHT-get *structurally*
("this internal node does not exist", Alg. 2), so a lossy network can
silently bend a query's search path.  This wrapper narrows that hazard
at the substrate boundary, staying inside the over-DHT philosophy — it
composes over any :class:`~repro.dht.base.DHT`, including other
wrappers:

* **Retries** (:class:`~repro.resilience.policy.RetryPolicy`): a get
  that returns ``None`` is retried up to the attempt budget — a genuine
  miss stays a miss (every attempt agrees), while a dropped reply is
  recovered with probability ``1 - p^k``.  Puts and removes retry on
  :class:`~repro.errors.DHTError`.
* **Per-operation timeout budgets**: cumulative (simulated) backoff per
  operation is capped, so one key cannot burn unbounded time.
* **Circuit breaker** (:class:`~repro.resilience.breaker.CircuitBreaker`):
  consecutive *infrastructure errors* (``DHTError`` raised by the inner
  substrate — injected put/remove failures, routing errors) trip the
  breaker; further operations fail fast with
  :class:`~repro.errors.CircuitOpenError` until the sim-clock cool-down
  half-opens it.  ``None``-gets never feed the breaker: an absent key is
  a *valid answer* in the DHT interface, not a health signal.

Stacking order matters and is free to the caller:
``ResilientDHT(ReplicatedDHT(FaultyDHT(...)))`` retries the whole
replica fan-out (each attempt fails over across replicas), which is the
recommended composition for availability experiments.

Cost accounting is honest: every retry attempt that reaches the
substrate is charged there as a normal routed operation, and the shared
:class:`~repro.dht.metrics.MetricsRecorder` additionally counts
``retries``, ``breaker_trips`` and ``breaker_rejections`` so experiments
can report lookup-cost inflation next to availability.

Time: with no ``clock`` argument the wrapper owns a private
:class:`~repro.sim.clock.Clock` and advances it ``op_tick`` per
operation plus each backoff delay — deterministic and self-contained.
Pass a simulator-driven clock instead to schedule the breaker on real
simulated time (the wrapper then only reads it).
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

import numpy as np

from repro.dht.base import DHT
from repro.dht.kernel import DelegatingDHT
from repro.errors import CircuitOpenError, DHTError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.policy import RetryPolicy
from repro.sim.clock import Clock
from repro.sim.rng import derive_seed

__all__ = ["ResilientDHT"]

T = TypeVar("T")


class ResilientDHT(DelegatingDHT):
    """Compose retries, timeout budgets, and a circuit breaker over a DHT.

    Args:
        inner: Any substrate (or wrapper stack) implementing the DHT
            interface.
        policy: Retry/backoff budget; defaults to
            :data:`~repro.resilience.policy.DEFAULT_RETRY_POLICY`.
        breaker: Circuit breaker; constructed on the wrapper's clock when
            omitted.  A caller-supplied breaker should share ``clock``.
        clock: Simulated time source.  Omitted → the wrapper owns a
            private clock advanced per operation (see module docs).
        seed: Root seed for the backoff-jitter stream (ignored when
            ``rng`` is given); derived via :func:`repro.sim.rng.derive_seed`
            so it never collides with other consumers.
        rng: Explicit jitter generator, for callers managing streams.
        op_tick: Virtual seconds a privately-owned clock advances per
            operation (including fast rejections, so an open breaker can
            reach its cool-down without external time).
    """

    def __init__(
        self,
        inner: DHT,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Clock | None = None,
        seed: int = 0,
        rng: np.random.Generator | None = None,
        op_tick: float = 1.0,
    ) -> None:
        super().__init__(inner)
        self.policy = policy or RetryPolicy()
        self._owns_clock = clock is None
        self.clock = clock or (breaker.clock if breaker is not None else Clock())
        self.breaker = breaker or CircuitBreaker(clock=self.clock)
        self._rng = rng or np.random.default_rng(derive_seed(seed, "resilience"))
        self.op_tick = op_tick
        # Local statistics (the shared metrics aggregate across wrappers).
        self.retries = 0
        self.confirmed_drops = 0
        self.exhausted_gets = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    # Retry machinery
    # ------------------------------------------------------------------

    def _tick(self, seconds: float) -> None:
        """Advance a privately-owned clock (no-op for external clocks,
        which only their simulator may advance)."""
        if self._owns_clock and seconds > 0:
            self.clock.advance_to(self.clock.now + seconds)

    def _gate(self, key: str) -> None:
        """Fail fast when the breaker is open (nothing is routed)."""
        self._tick(self.op_tick)
        if not self.breaker.allows():
            self.rejections += 1
            self.metrics.record_breaker_rejection()
            raise CircuitOpenError(
                f"circuit open: operation on {key!r} rejected "
                f"(cool-down {self.breaker.reset_timeout}s)"
            )

    def _record_failure(self) -> None:
        """Feed one infrastructure failure to the breaker, counting a
        trip in the shared metrics when it opens."""
        if self.breaker.record_failure():
            self.metrics.record_breaker_trip()

    def _next_backoff(self, retry: int, spent: float) -> float | None:
        """Backoff before retry ``retry``, or ``None`` when the attempt
        or timeout budget is exhausted."""
        if retry >= self.policy.max_retries:
            return None
        delay = self.policy.backoff(retry, self._rng)
        budget = self.policy.timeout_budget
        if budget is not None and spent + delay > budget:
            return None
        return delay

    def _with_retries(self, operation: Callable[[], T]) -> T:
        """Run a mutating operation, retrying on typed DHT errors.

        Every failed attempt feeds the breaker; the terminal failure
        re-raises the substrate's typed error.
        """
        retry = 0
        spent = 0.0
        while True:
            try:
                result = operation()
            except CircuitOpenError:
                raise  # never retry a fast rejection
            except DHTError:
                self._record_failure()
                delay = self._next_backoff(retry, spent)
                if delay is None:
                    raise
                self.retries += 1
                self.metrics.record_retry()
                self._tick(delay)
                spent += delay
                retry += 1
            else:
                self.breaker.record_success()
                return result

    # ------------------------------------------------------------------
    # DHT interface
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self._gate(key)
        self._with_retries(lambda: self.inner.put(key, value))

    def get(self, key: str) -> Any | None:
        self._gate(key)
        retry = 0
        spent = 0.0
        while True:
            try:
                value = self.inner.get(key)
            except DHTError:
                # Routing-level failure: same treatment as put/remove.
                self._record_failure()
                delay = self._next_backoff(retry, spent)
                if delay is None:
                    raise
            else:
                if value is not None:
                    if retry:
                        # The earlier None was a dropped reply, proven by
                        # this success — worth counting, but the breaker
                        # sees a completed operation.
                        self.confirmed_drops += 1
                    self.breaker.record_success()
                    return value
                # Ambiguous: absent key or dropped reply.  Retry while
                # budget remains; the breaker is not consulted (an absent
                # key is a valid answer, not a failure).
                delay = self._next_backoff(retry, spent)
                if delay is None:
                    self.exhausted_gets += 1
                    return None
            self.retries += 1
            self.metrics.record_retry()
            self._tick(delay)
            spent += delay
            retry += 1

    def remove(self, key: str) -> Any | None:
        self._gate(key)
        return self._with_retries(lambda: self.inner.remove(key))

    # ``local_write`` involves no network (no retries, no breaker) and
    # introspection is oracle access — both delegate via DelegatingDHT.
