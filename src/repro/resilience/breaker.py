"""Circuit breaker over a simulated clock (closed → open → half-open).

Retries recover *transient* faults; a breaker protects against
*sustained* ones.  When a substrate fails many operations in a row
(routing errors, injected put/remove failures, confirmed reply drops),
hammering it with full retry budgets multiplies the damage — the breaker
fails fast instead, then probes cautiously once a cool-down has passed.

State machine:

* **closed** — operations flow; consecutive failures are counted, a
  success resets the count.  Reaching ``failure_threshold`` trips the
  breaker to *open*.
* **open** — operations are rejected immediately (the wrapper raises
  :class:`repro.errors.CircuitOpenError` without routing anything).
  After ``reset_timeout`` simulated seconds the next operation is let
  through as a trial (*half-open*).
* **half-open** — one trial operation: success closes the breaker,
  failure re-opens it with a fresh cool-down.

Time comes from a :class:`repro.sim.clock.Clock` — never the wall clock
(rule LHT001) — so breaker schedules replay deterministically.  The
owning wrapper decides how that clock advances (simulator-driven, or
virtual per-operation ticks; see :class:`repro.resilience.ResilientDHT`).
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError
from repro.sim.clock import Clock

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker on a simulated clock.

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        reset_timeout: Simulated seconds the breaker stays open before
            allowing a half-open trial operation.
        clock: Time source; the breaker only ever *reads* it.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ConfigurationError(
                f"reset_timeout must be positive: {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock or Clock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state, resolving open → half-open when the cool-down
        has elapsed."""
        if (
            self._state is BreakerState.OPEN
            and self.clock.now - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success."""
        return self._consecutive_failures

    def allows(self) -> bool:
        """Whether the next operation may proceed (closed or half-open)."""
        return self.state is not BreakerState.OPEN

    # ------------------------------------------------------------------
    # Outcome recording (called by the owning wrapper)
    # ------------------------------------------------------------------

    def record_success(self) -> None:
        """A shielded operation completed: close and reset the breaker."""
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED

    def record_failure(self) -> bool:
        """A shielded operation failed; returns True if this tripped the
        breaker (closed → open) or re-opened a half-open one."""
        state = self.state
        self._consecutive_failures += 1
        if state is BreakerState.HALF_OPEN:
            # The trial failed: back to open with a fresh cool-down.
            self._state = BreakerState.OPEN
            self._opened_at = self.clock.now
            self.trips += 1
            return True
        if (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = BreakerState.OPEN
            self._opened_at = self.clock.now
            self.trips += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CircuitBreaker(state={self.state.value}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
