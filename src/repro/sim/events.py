"""Event queue and simulator loop.

A classic discrete-event core: events are ``(time, sequence, action)``
triples in a binary heap.  The sequence number makes ordering total and
deterministic for simultaneous events (FIFO among equals), which keeps
whole simulations bit-for-bit reproducible under a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import Clock

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled event.

    Orders by ``(time, seq)``; the action is excluded from comparison.
    Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        event = Event(time, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or ``None`` if drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Simulator:
    """Drives a :class:`Clock` through an :class:`EventQueue`.

    Usage::

        sim = Simulator()
        sim.schedule_in(1.0, lambda: print("hello at t=1"))
        sim.run_until(10.0)
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or Clock()
        self.queue = EventQueue()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def schedule_at(self, when: float, action: Callable[[], None]) -> Event:
        """Schedule an action at an absolute time (not in the past)."""
        if when < self.clock.now:
            raise SimulationError(f"cannot schedule in the past: {when}")
        return self.queue.push(when, action)

    def schedule_in(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule an action ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.queue.push(self.clock.now + delay, action)

    def schedule_every(
        self, period: float, action: Callable[[], None], *, until: float | None = None
    ) -> None:
        """Schedule a periodic action (first firing one period from now)."""
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")

        def fire() -> None:
            action()
            next_time = self.clock.now + period
            if until is None or next_time <= until:
                self.schedule_at(next_time, fire)

        self.schedule_in(period, fire)

    def step(self) -> bool:
        """Process one event; return ``False`` when the queue is drained."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.action()
        self.events_processed += 1
        return True

    def run_until(self, deadline: float) -> None:
        """Process events up to and including ``deadline``."""
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
        self.clock.advance_to(max(self.clock.now, deadline))

    def run(self, max_events: int = 1_000_000) -> None:
        """Run until the queue drains (bounded against runaway loops)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(f"simulation exceeded {max_events} events")
