"""Virtual simulation clock."""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["Clock"]


class Clock:
    """A monotonically advancing virtual clock.

    Time is a float in arbitrary simulated units (the experiments treat it
    as seconds).  Only the event loop advances the clock; components read
    :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Advance the clock; rejects travel into the past."""
        if when < self._now:
            raise SimulationError(f"clock cannot go backwards: {when} < {self._now}")
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Clock(t={self._now:.6f})"
