"""Message-level network model for the simulated overlays.

The paper's metrics (DHT-lookup counts, parallel steps) are intentionally
independent of physical latency, but the churn and substrate experiments
need a notion of message delay to order stabilization against failures.
:class:`Network` delivers messages between named endpoints through the
event queue with sampled latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from repro.errors import SimulationError
from repro.sim.events import Simulator

__all__ = ["LatencyModel", "Network"]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """One-way message latency: lognormal around a median, plus a floor.

    Lognormal heavy tails are the standard stand-in for wide-area RTT
    distributions in P2P simulation; parameters are in simulated seconds.
    """

    median: float = 0.05
    sigma: float = 0.3
    floor: float = 0.001

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one latency value."""
        return max(self.floor, float(rng.lognormal(np.log(self.median), self.sigma)))


class Network:
    """Delivers messages to registered endpoints with simulated latency.

    Endpoints register a handler; :meth:`send` schedules delivery through
    the simulator.  Messages to unregistered endpoints are counted as drops
    (a crashed peer), not errors — exactly how a UDP overlay behaves.
    """

    def __init__(
        self,
        simulator: Simulator,
        rng: np.random.Generator,
        latency: LatencyModel | None = None,
    ) -> None:
        self.simulator = simulator
        self.rng = rng
        self.latency = latency or LatencyModel()
        self._handlers: dict[Hashable, Callable[[Any], None]] = {}
        self.messages_sent = 0
        self.messages_dropped = 0

    def register(self, endpoint: Hashable, handler: Callable[[Any], None]) -> None:
        """Attach a live endpoint."""
        if endpoint in self._handlers:
            raise SimulationError(f"endpoint already registered: {endpoint!r}")
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Hashable) -> None:
        """Detach an endpoint (e.g. peer failure); future messages drop."""
        self._handlers.pop(endpoint, None)

    def is_live(self, endpoint: Hashable) -> bool:
        """Whether the endpoint currently receives messages."""
        return endpoint in self._handlers

    def send(self, endpoint: Hashable, message: Any) -> None:
        """Send a message; it arrives after sampled latency, or drops."""
        self.messages_sent += 1
        delay = self.latency.sample(self.rng)

        def deliver() -> None:
            handler = self._handlers.get(endpoint)
            if handler is None:
                self.messages_dropped += 1
            else:
                handler(message)

        self.simulator.schedule_in(delay, deliver)
