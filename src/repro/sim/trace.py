"""Structured trace log for simulations and experiments.

A lightweight append-only record of what happened and when — used by the
churn experiments to reconstruct availability timelines, and handy when
debugging distributed interactions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: time, category, and free-form details."""

    time: float
    category: str
    details: dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Append-only event trace with simple filtering."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def record(self, time: float, category: str, **details: Any) -> None:
        """Append one record (no-op when disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, category, details))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records with the given category, in time order."""
        return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
