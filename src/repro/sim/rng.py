"""Named, independently seeded random streams.

Each subsystem draws from its own :class:`numpy.random.Generator`, derived
from a root seed plus the stream name.  Adding a new consumer of randomness
therefore never perturbs the draws seen by existing consumers — experiment
results stay stable as the codebase grows.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named deterministic random generators."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self.root_seed, name)
            )
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """A child stream family, independent of this one."""
        return RngStreams(derive_seed(self.root_seed, f"fork:{name}"))
