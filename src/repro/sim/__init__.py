"""Deterministic discrete-event simulation kernel.

Provides the virtual clock, event queue, seeded random streams, and a
latency-modelled message network used by the DHT substrates (notably the
churn driver).  Everything is deterministic under a fixed seed.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Simulator",
    "LatencyModel",
    "Network",
    "RngStreams",
    "TraceLog",
    "TraceRecord",
]
