"""E11 — maintenance saving ratio vs γ (paper §8.2, Eq. 3).

The analytic saving ratio ``1 - Ψ_LHT/Ψ_PHT = (γ/2 + 3)/(γ + 4)`` (with
``γ = θ·i/j``) ranges from 75% (small γ: lookup-dominated) to 50% (large
γ: data-dominated) — the paper's abstract claim.  This experiment plots
the analytic curve and cross-checks it against *measured* per-split costs
from a simulated build of both indexes, costed under the same (i, j)
parameterizations.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IndexConfig
from repro.costmodel.model import LinearCostModel, saving_ratio
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    build_index,
    trial_rng,
)
from repro.workloads.datasets import make_keys

__all__ = ["run"]

_SCALES = {
    "ci": {"size": 1 << 12, "theta": 50},
    "paper": {"size": 1 << 16, "theta": 100},
}

_GAMMAS = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0]


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Analytic + measured saving ratio over a γ sweep."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    theta = params["theta"]
    size = params["size"]
    config = IndexConfig(theta_split=theta, max_depth=24)

    rng = trial_rng(seed, "eq3", 0)
    keys = make_keys("uniform", size, rng)
    # E11 reads construction costs off the maintenance ledgers, so both
    # indexes must replay the incremental insertion algorithm.
    lht = build_index("lht", LocalDHT(n_peers=64, seed=0), config, keys, fast=False)
    pht = build_index("pht", LocalDHT(n_peers=64, seed=0), config, keys, fast=False)

    analytic: list[float] = []
    measured: list[float] = []
    for gamma_value in _GAMMAS:
        analytic.append(saving_ratio(gamma_value))
        # γ = θ·i/j; fix j = 1 and solve for i.
        model = LinearCostModel(
            record_move_cost=gamma_value / theta, lookup_cost=1.0
        )
        measured.append(model.measured_saving_ratio(lht.ledger, pht.ledger))

    dense_gamma = list(np.geomspace(0.05, 2000.0, 40))
    return [
        ExperimentResult(
            experiment_id="E11",
            title="Maintenance saving ratio vs gamma (Eq. 3)",
            x_label="gamma = theta*i/j",
            y_label="saving ratio (1 - cost_LHT/cost_PHT)",
            params={"scale": scale, "seed": seed, **params},
            series=[
                Series(
                    "analytic (Eq. 3)",
                    [float(g) for g in dense_gamma],
                    [saving_ratio(float(g)) for g in dense_gamma],
                ),
                Series("analytic @ sweep", list(_GAMMAS), analytic),
                Series("measured", list(_GAMMAS), measured),
            ],
            notes="expect all values within [0.5, 0.75]",
        )
    ]
