"""Render saved experiment results into a Markdown report.

Reads the per-experiment JSON files that ``lht-experiments --out DIR``
writes and produces a single Markdown document with one table per
experiment — the form EXPERIMENTS.md uses for its paper-vs-measured
record.

Usage::

    python -m repro.experiments.report results/paper > report.md
"""

from __future__ import annotations

import argparse
import itertools
import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, Series

__all__ = ["load_result", "load_directory", "to_markdown", "main"]


def load_result(path: Path) -> ExperimentResult:
    """Load one saved experiment result from its JSON file."""
    try:
        data = json.loads(path.read_text())
        return ExperimentResult(
            experiment_id=data["experiment_id"],
            title=data["title"],
            x_label=data["x_label"],
            y_label=data["y_label"],
            params=data["params"],
            series=[
                Series(s["label"], s["x"], s["y"], s.get("y_err", []))
                for s in data["series"]
            ],
            notes=data.get("notes", ""),
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed result file {path}: {exc}") from exc


def load_directory(directory: str | Path) -> list[ExperimentResult]:
    """Load every ``e*.json`` result in a directory, ordered by ID."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"not a directory: {directory}")
    results = [load_result(p) for p in sorted(directory.glob("e*.json"))]

    def _id_key(result: ExperimentResult) -> tuple[int, str]:
        # IDs are "E<number>" with an optional letter suffix for
        # sub-figures sharing one experiment (E25, E25b, E25c).
        body = result.experiment_id.lstrip("E")
        digits = "".join(itertools.takewhile(str.isdigit, body))
        return int(digits), body[len(digits):]

    results.sort(key=_id_key)
    return results


def _markdown_table(result: ExperimentResult) -> str:
    xs = sorted({x for s in result.series for x in s.x})
    header = [result.x_label] + [s.label for s in result.series]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(["---"] * len(header)) + "|",
    ]
    for x in xs:
        row = [_fmt(x)]
        for s in result.series:
            try:
                idx = s.x.index(x)
            except ValueError:
                row.append("-")
                continue
            cell = _fmt(s.y[idx])
            if s.y_err and s.y_err[idx]:
                cell += f" ± {_fmt(s.y_err[idx])}"
            row.append(cell)
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def to_markdown(results: list[ExperimentResult]) -> str:
    """Render loaded results into one Markdown document."""
    chunks = ["# Experiment results\n"]
    for result in results:
        chunks.append(f"## {result.experiment_id}: {result.title}\n")
        chunks.append(
            f"*x: {result.x_label}; y: {result.y_label}; "
            f"scale: {result.params.get('scale', '?')}, "
            f"seed: {result.params.get('seed', '?')}*\n"
        )
        chunks.append(_markdown_table(result) + "\n")
        if result.notes:
            chunks.append(f"> {result.notes}\n")
    return "\n".join(chunks)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Render saved experiment JSON into Markdown."
    )
    parser.add_argument("directory", help="directory of e*.json result files")
    args = parser.parse_args(argv)
    print(to_markdown(load_directory(args.directory)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
