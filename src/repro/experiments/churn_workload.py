"""E20 — maintenance under a churn-flavoured mixed workload (extension).

Figs. 6-7 measure pure insertion; the paper's *motivation* is continuous
insertion **and deletion** driven by peer dynamism (§1).  This extension
replays identical mixed traces (insert/delete/lookup/range) against LHT
and PHT and compares the total maintenance traffic, including LHT's
merge operations — the regime the paper argues matters most.

PHT has no published merge, so its trees only grow; LHT with merging
additionally reclaims structure.  Both effects appear in the table.
"""

from __future__ import annotations

from repro.analysis.stats import aggregate
from repro.baselines.pht import PHTIndex
from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, Series, trial_rng
from repro.workloads.trace import generate_trace, replay

__all__ = ["run"]

_SCALES = {
    "ci": {"n_ops": 4_000, "trials": 3},
    "paper": {"n_ops": 40_000, "trials": 5},
}

_THETA = 50


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Replay mixed traces against both schemes; report maintenance."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None

    metrics = ("maintenance_lookups", "maintenance_records_moved")
    collected: dict[tuple[str, str], list[float]] = {}
    for trial in range(params["trials"]):
        rng = trial_rng(seed, "churn-workload", trial)
        trace = generate_trace(params["n_ops"], rng)
        lht = LHTIndex(
            LocalDHT(64, trial),
            IndexConfig(theta_split=_THETA, max_depth=24, merge_enabled=True),
        )
        pht = PHTIndex(
            LocalDHT(64, trial), IndexConfig(theta_split=_THETA, max_depth=24)
        )
        for scheme, index in (("lht", lht), ("pht", pht)):
            totals = replay(index, trace)
            for metric in metrics:
                collected.setdefault((scheme, metric), []).append(totals[metric])

    xs = [0.0, 1.0]  # [maintenance_lookups, records_moved]
    series = [
        Series(
            scheme,
            xs,
            [aggregate(collected[(scheme, m)]).mean for m in metrics],
            [aggregate(collected[(scheme, m)]).ci95_half_width for m in metrics],
        )
        for scheme in ("lht", "pht")
    ]
    lht_l = aggregate(collected[("lht", "maintenance_lookups")]).mean
    pht_l = aggregate(collected[("pht", "maintenance_lookups")]).mean
    return [
        ExperimentResult(
            experiment_id="E20",
            title="Maintenance under a mixed insert/delete workload",
            x_label="metric index [(0, maintenance_lookups), (1, records_moved)]",
            y_label="cumulative maintenance cost",
            params={"scale": scale, "seed": seed, "theta_split": _THETA, **params},
            series=series,
            notes=(
                f"LHT/PHT maintenance-lookup ratio: {lht_l / pht_l:.2f} "
                "(LHT merges are included; PHT has no published merge)"
            ),
        )
    ]
