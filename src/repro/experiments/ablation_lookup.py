"""E16 — lookup ablation: name-class collapse vs binary search.

LHT's lookup saving over PHT (Fig. 8) has two ingredients: the naming
function collapses the candidate set from ``D`` prefix lengths to
``≈ D/2`` name classes, and a binary search runs over the collapsed set.
This ablation measures all four combinations across data sizes:

* ``lht-binary`` — Alg. 2 as published (collapse + search);
* ``lht-linear`` — collapse only (descend one name class per probe);
* ``pht-binary`` — search only (PHT's published lookup);
* ``pht-linear`` — neither (top-down trie descent).
"""

from __future__ import annotations

from repro.analysis.stats import aggregate, powers_of_two
from repro.core.config import IndexConfig
from repro.core.lookup import lht_lookup, lht_lookup_linear
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    build_index,
    trial_rng,
)
from repro.workloads.datasets import make_keys
from repro.workloads.queries import lookup_keys

__all__ = ["run"]

_SCALES = {
    "ci": {"exps": (8, 13), "trials": 3, "n_lookups": 200},
    "paper": {"exps": (10, 17), "trials": 5, "n_lookups": 1000},
}

_THETA = 100
_MAX_DEPTH = 20


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Probe counts for the four lookup variants across data sizes."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    lo, hi = params["exps"]
    sizes = powers_of_two(lo, hi)
    config = IndexConfig(theta_split=_THETA, max_depth=_MAX_DEPTH)

    curves: dict[str, list[float]] = {
        "lht-binary": [],
        "lht-linear": [],
        "pht-binary": [],
        "pht-linear": [],
    }
    for size in sizes:
        samples: dict[str, list[float]] = {name: [] for name in curves}
        for trial in range(params["trials"]):
            rng = trial_rng(seed, f"ablation:{size}", trial)
            keys = make_keys("uniform", size, rng)
            lht = build_index("lht", LocalDHT(64, trial), config, keys)
            pht = build_index("pht", LocalDHT(64, trial), config, keys)
            probes = [float(p) for p in lookup_keys(params["n_lookups"], rng)]
            n = len(probes)
            samples["lht-binary"].append(
                sum(lht_lookup(lht.dht, config, p).dht_lookups for p in probes) / n
            )
            samples["lht-linear"].append(
                sum(
                    lht_lookup_linear(lht.dht, config, p).dht_lookups
                    for p in probes
                )
                / n
            )
            samples["pht-binary"].append(
                sum(pht.lookup(p).dht_lookups for p in probes) / n
            )
            samples["pht-linear"].append(
                sum(pht.lookup_linear(p).dht_lookups for p in probes) / n
            )
        for name in curves:
            curves[name].append(aggregate(samples[name]).mean)

    xs = [float(s) for s in sizes]
    return [
        ExperimentResult(
            experiment_id="E16",
            title="Lookup ablation: name-class collapse vs binary search",
            x_label="data size",
            y_label="DHT-lookups per index lookup",
            params={
                "scale": scale,
                "seed": seed,
                "theta_split": _THETA,
                "max_depth": _MAX_DEPTH,
                **params,
            },
            series=[Series(name, xs, ys) for name, ys in curves.items()],
            notes=(
                "expect lht-binary < pht-binary and each binary variant "
                "below its linear counterpart"
            ),
        )
    ]
