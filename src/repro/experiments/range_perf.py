"""E7-E10 — range query performance (paper Figs. 9-10, §9.4).

Three algorithms are compared on identical query streams: LHT (Algs. 3-4),
PHT(sequential) (lookup + leaf-link walk) and PHT(parallel) (LCA +
parallel trie descent).  Two measures per query:

* **bandwidth** — total DHT-lookups (Fig. 9);
* **latency** — parallel steps of DHT-lookups, i.e. the longest
  sequential chain (Fig. 10).

Sweeps: data size at a fixed span (panels a), and span at a fixed data
size (panels b); both uniform and gaussian datasets.  Expected shapes:
PHT(parallel) has the highest bandwidth (it pays for every internal trie
node); LHT and PHT(sequential) are both near-optimal (≈ B lookups), LHT
slightly lower; PHT(sequential)'s latency is worst by roughly an order of
magnitude; LHT's latency beats PHT(parallel), with the advantage
shrinking for large uniform spans.

One LHT and one PHT build per (distribution, size, trial) serve all three
algorithms and all four result tables, so the harness computes E7-E10
together.
"""

from __future__ import annotations

from repro.analysis.stats import aggregate, powers_of_two
from repro.core.config import IndexConfig
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    build_index,
    count_query_time,
    trial_rng,
)
from repro.workloads.datasets import make_keys
from repro.workloads.queries import span_ranges

__all__ = ["run", "ALGORITHMS"]

_SCALES = {
    "ci": {
        "exps": (8, 13),
        "trials": 3,
        "n_queries": 30,
        "fixed_size_exp": 12,
        "size_sweep_span": 0.05,
        "spans": [0.01, 0.02, 0.05, 0.1, 0.2, 0.4],
    },
    "paper": {
        "exps": (10, 16),
        "trials": 5,
        "n_queries": 100,
        "fixed_size_exp": 15,
        "size_sweep_span": 0.05,
        "spans": [0.01, 0.02, 0.05, 0.1, 0.2, 0.4],
    },
}

_THETA = 100
_MAX_DEPTH = 20
_DISTRIBUTIONS = ("uniform", "gaussian")
ALGORITHMS = ("lht", "pht-seq", "pht-par")


def _measure_point(
    distribution: str,
    size: int,
    span: float,
    trials: int,
    n_queries: int,
    seed: int,
    tag: str,
) -> dict[str, tuple[float, float, float, float]]:
    """Per-algorithm mean (bw, bw_err, lat, lat_err) at one sweep point."""
    config = IndexConfig(theta_split=_THETA, max_depth=_MAX_DEPTH)
    samples: dict[str, tuple[list[float], list[float]]] = {
        algo: ([], []) for algo in ALGORITHMS
    }
    for trial in range(trials):
        rng = trial_rng(seed, f"{tag}:{distribution}:{size}:{span}", trial)
        keys = make_keys(distribution, size, rng)
        lht = build_index("lht", LocalDHT(n_peers=64, seed=trial), config, keys)
        pht = build_index("pht", LocalDHT(n_peers=64, seed=trial), config, keys)
        queries = span_ranges(n_queries, span, rng)
        runners = {
            "lht": lambda q: lht.range_query(q.lo, q.hi),
            "pht-seq": lambda q: pht.range_query_sequential(q.lo, q.hi),
            "pht-par": lambda q: pht.range_query_parallel(q.lo, q.hi),
        }
        for algo, runner in runners.items():
            bw = lat = 0.0
            with count_query_time():
                for query in queries:
                    result = runner(query)
                    bw += result.dht_lookups
                    lat += result.parallel_steps
            samples[algo][0].append(bw / n_queries)
            samples[algo][1].append(lat / n_queries)
    out: dict[str, tuple[float, float, float, float]] = {}
    for algo, (bw_list, lat_list) in samples.items():
        bw_agg, lat_agg = aggregate(bw_list), aggregate(lat_list)
        out[algo] = (
            bw_agg.mean,
            bw_agg.ci95_half_width,
            lat_agg.mean,
            lat_agg.ci95_half_width,
        )
    return out


def _sweep(
    xs: list[float],
    point_params: list[tuple[int, float]],
    params: dict,
    seed: int,
    tag: str,
) -> tuple[list[Series], list[Series]]:
    """Run one sweep; returns (bandwidth series, latency series)."""
    collected: dict[str, dict[str, list[float]]] = {
        f"{algo}/{distribution}": {"bw": [], "bw_err": [], "lat": [], "lat_err": []}
        for algo in ALGORITHMS
        for distribution in _DISTRIBUTIONS
    }
    for distribution in _DISTRIBUTIONS:
        for size, span in point_params:
            point = _measure_point(
                distribution,
                size,
                span,
                params["trials"],
                params["n_queries"],
                seed,
                tag,
            )
            for algo in ALGORITHMS:
                bw, bw_err, lat, lat_err = point[algo]
                cell = collected[f"{algo}/{distribution}"]
                cell["bw"].append(bw)
                cell["bw_err"].append(bw_err)
                cell["lat"].append(lat)
                cell["lat_err"].append(lat_err)

    bw_series = [
        Series(label, list(xs), cell["bw"], cell["bw_err"])
        for label, cell in collected.items()
    ]
    lat_series = [
        Series(label, list(xs), cell["lat"], cell["lat_err"])
        for label, cell in collected.items()
    ]
    return bw_series, lat_series


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Run the four range-performance experiments: E7, E8, E9, E10."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    lo, hi = params["exps"]
    sizes = powers_of_two(lo, hi)
    fixed_size = 1 << params["fixed_size_exp"]
    span = params["size_sweep_span"]

    size_bw, size_lat = _sweep(
        [float(s) for s in sizes],
        [(s, span) for s in sizes],
        params,
        seed,
        "range-size",
    )
    span_bw, span_lat = _sweep(
        [float(s) for s in params["spans"]],
        [(fixed_size, s) for s in params["spans"]],
        params,
        seed,
        "range-span",
    )

    common = {
        "scale": scale,
        "seed": seed,
        "theta_split": _THETA,
        "max_depth": _MAX_DEPTH,
        **params,
    }
    return [
        ExperimentResult(
            "E7",
            "Range query bandwidth vs data size (Fig. 9a)",
            "data size",
            "DHT-lookups per query",
            common,
            size_bw,
            notes=f"fixed span {span}; expect pht-par highest, lht lowest",
        ),
        ExperimentResult(
            "E8",
            "Range query bandwidth vs span (Fig. 9b)",
            "query span",
            "DHT-lookups per query",
            common,
            span_bw,
            notes=f"fixed size {fixed_size}",
        ),
        ExperimentResult(
            "E9",
            "Range query latency vs data size (Fig. 10a)",
            "data size",
            "parallel DHT-lookup steps",
            common,
            size_lat,
            notes="expect pht-seq worst by ~an order of magnitude",
        ),
        ExperimentResult(
            "E10",
            "Range query latency vs span (Fig. 10b)",
            "query span",
            "parallel DHT-lookup steps",
            common,
            span_lat,
            notes=f"fixed size {fixed_size}; expect lht < pht-par",
        ),
    ]
