"""E13 — substrate independence (paper §3: "adaptable to any DHT").

LHT relies only on put/get, so its index-level costs (DHT-lookup counts)
must be *identical* over every substrate — the paper's footnote 5 makes
exactly this point — while the per-lookup physical hop count varies with
the overlay (``O(log N)`` for all three routed substrates).  This
experiment runs the same workload over Local/Chord/Kademlia/Pastry at
several network sizes and reports:

* mean physical hops per routed operation (grows ~ log N);
* the index-level lookup count (asserted identical across substrates).
"""

from __future__ import annotations

from repro.analysis.stats import aggregate
from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import (
    ExperimentResult,
    SUBSTRATES,
    Series,
    make_dht,
    trial_rng,
)
from repro.workloads.datasets import make_keys
from repro.workloads.queries import lookup_keys, span_ranges

__all__ = ["run"]

_SCALES = {
    "ci": {"n_peers": [16, 64, 256], "size": 1 << 10, "n_lookups": 50},
    "paper": {"n_peers": [16, 64, 256, 1024], "size": 1 << 12, "n_lookups": 200},
}

_THETA = 20


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Hop growth and index-cost invariance across substrates."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    config = IndexConfig(theta_split=_THETA, max_depth=20)

    hop_series: list[Series] = []
    reference_lookup_cost: dict[int, float] = {}
    for substrate in sorted(SUBSTRATES):
        xs: list[float] = []
        hops: list[float] = []
        for n_peers in params["n_peers"]:
            # The workload must be identical across substrates (the whole
            # point of the invariance check), so the stream name omits the
            # substrate.
            rng = trial_rng(seed, f"substrates:{n_peers}", 0)
            dht = make_dht(substrate, n_peers, seed)
            index = LHTIndex(dht, config)
            keys = make_keys("uniform", params["size"], rng)
            for k in keys:
                index.insert(float(k))
            before = dht.metrics.snapshot()
            total_index_lookups = 0
            for probe in lookup_keys(params["n_lookups"], rng):
                total_index_lookups += index.lookup(float(probe)).dht_lookups
            for query in span_ranges(10, 0.05, rng):
                total_index_lookups += index.range_query(
                    query.lo, query.hi
                ).dht_lookups
            delta = dht.metrics.since(before)
            xs.append(float(n_peers))
            hops.append(delta.hops / delta.dht_lookups)

            # Index-level lookup counts must not depend on the substrate.
            expected = reference_lookup_cost.setdefault(
                n_peers, float(total_index_lookups)
            )
            if float(total_index_lookups) != expected:
                raise ReproError(
                    f"index-level cost differs on {substrate} at N={n_peers}: "
                    f"{total_index_lookups} != {expected}"
                )
        hop_series.append(Series(substrate, xs, hops))

    return [
        ExperimentResult(
            experiment_id="E13",
            title="Physical hops per DHT-lookup across substrates",
            x_label="number of peers",
            y_label="mean hops per routed operation",
            params={"scale": scale, "seed": seed, "theta_split": _THETA, **params},
            series=hop_series,
            notes=(
                "index-level DHT-lookup counts verified identical across "
                "all substrates (paper footnote 5)"
            ),
        )
    ]
