"""E15 — storage load balance across peers (extension).

The paper's §1 lists load balance as a DHT advantage that naive
locality-preserving designs sacrifice.  LHT keeps it: leaf buckets are
named by tree labels and placed by uniform hashing, so bucket placement is
uniform even for skewed *data*.  This experiment measures the per-peer
record-count distribution (Gini coefficient and max/mean ratio) for LHT
vs the raw DHT, under uniform and gaussian data.
"""

from __future__ import annotations

from repro.analysis.stats import gini_coefficient
from repro.baselines.naive import NaiveIndex
from repro.baselines.orderpreserving import OrderPreservingIndex
from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.core.stats import IndexInspector
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    count_build_time,
    trial_rng,
)
from repro.workloads.datasets import make_keys

__all__ = ["run"]

_SCALES = {
    "ci": {"n_peers": 128, "size": 1 << 12},
    "paper": {"n_peers": 512, "size": 1 << 16},
}

_THETA = 100
_DISTRIBUTIONS = ("uniform", "gaussian", "pareto")


def _record_loads_lht(dht: LocalDHT) -> list[int]:
    """Per-peer record counts for an LHT (records, not bucket counts)."""
    loads: dict[int, int] = {}
    inspector = IndexInspector(dht)
    for storage_label, bucket in inspector.buckets().items():
        peer = dht.peer_of(str(storage_label))
        loads[peer] = loads.get(peer, 0) + len(bucket)
    all_peers = dht.peer_loads()
    return [loads.get(peer, 0) for peer in all_peers]


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Gini coefficient of per-peer storage, LHT vs raw DHT."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    config = IndexConfig(theta_split=_THETA, max_depth=24)

    schemes = ("lht", "raw-dht", "order-preserving")
    gini: dict[str, list[float]] = {s: [] for s in schemes}
    xs = list(range(len(_DISTRIBUTIONS)))
    for distribution in _DISTRIBUTIONS:
        rng = trial_rng(seed, f"balance:{distribution}", 0)
        keys = make_keys(distribution, params["size"], rng)

        dht = LocalDHT(n_peers=params["n_peers"], seed=seed)
        index = LHTIndex(dht, config)
        with count_build_time():
            index.bulk_load((float(k) for k in keys), fast=True)
        gini["lht"].append(gini_coefficient(_record_loads_lht(dht)))

        raw_dht = LocalDHT(n_peers=params["n_peers"], seed=seed)
        naive = NaiveIndex(raw_dht)
        for k in keys:
            naive.insert(float(k))
        gini["raw-dht"].append(
            gini_coefficient(list(raw_dht.peer_loads().values()))
        )

        # The §2 alternative: locality-sensitive placement ranges well
        # but inherits the data's skew.
        ordered = OrderPreservingIndex(n_peers=params["n_peers"])
        for k in keys:
            ordered.insert(float(k))
        gini["order-preserving"].append(
            gini_coefficient(list(ordered.peer_loads().values()))
        )

    return [
        ExperimentResult(
            experiment_id="E15",
            title="Per-peer storage balance (extension)",
            x_label=f"distribution index {list(enumerate(_DISTRIBUTIONS))}",
            y_label="Gini coefficient of per-peer record counts",
            params={"scale": scale, "seed": seed, "theta_split": _THETA, **params},
            series=[
                Series(scheme, [float(x) for x in xs], values)
                for scheme, values in gini.items()
            ],
            notes=(
                "LHT places whole buckets, so its Gini reflects bucket "
                "granularity (high when buckets << peers) but is "
                "independent of data skew: compare LHT across the three "
                "distributions"
            ),
        )
    ]
