"""E14 — index availability under peer churn (extension).

The paper motivates low-maintenance indexing with P2P peer dynamism but
evaluates on a stable LAN; this extension quantifies how an LHT over a
*churning* Chord ring behaves.  A Poisson join/leave process runs for a
simulated period (stabilization interleaved); afterwards we measure:

* ring integrity (successor cycle covers all peers);
* fraction of previously inserted keys still retrievable by exact-match;
* fraction of range queries that complete successfully.

With graceful departures the DHT hands keys to successors, so
availability should stay at 100%; crashes lose the buckets stored on the
failed peers (the substrate stores single replicas, like the paper's
deployment), so availability degrades roughly with the fraction of
crashed peers — quantifying how much replication a deployment would need.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.chord import ChordDHT
from repro.dht.churn import ChurnConfig, ChurnDriver
from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import ExperimentResult, Series, trial_rng
from repro.sim.events import Simulator
from repro.workloads.datasets import make_keys
from repro.workloads.queries import span_ranges

__all__ = ["run"]

_SCALES = {
    "ci": {"n_peers": 32, "size": 1 << 10, "duration": 30.0, "probes": 200},
    "paper": {"n_peers": 128, "size": 1 << 13, "duration": 120.0, "probes": 1000},
}

_CRASH_FRACTIONS = [0.0, 0.25, 0.5, 1.0]
_THETA = 20


def _availability(
    index: LHTIndex, keys: np.ndarray, probes: int, rng: np.random.Generator
) -> tuple[float, float]:
    """(exact-match availability, range-query success rate) after churn."""
    sample = rng.choice(keys, size=min(probes, len(keys)), replace=False)
    hits = 0
    for key in sample:
        try:
            record, _ = index.exact_match(float(key))
        except ReproError:
            continue
        if record is not None:
            hits += 1
    exact_rate = hits / len(sample)

    queries = span_ranges(20, 0.05, rng)
    ok = 0
    for query in queries:
        try:
            index.range_query(query.lo, query.hi)
        except ReproError:
            continue
        ok += 1
    return exact_rate, ok / len(queries)


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Availability vs crash fraction under a fixed churn intensity."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    config = IndexConfig(theta_split=_THETA, max_depth=20)

    exact_rates: list[float] = []
    range_rates: list[float] = []
    crash_peers: list[float] = []
    for crash_fraction in _CRASH_FRACTIONS:
        rng = trial_rng(seed, f"churn:{crash_fraction}", 0)
        dht = ChordDHT(n_peers=params["n_peers"], seed=seed)
        index = LHTIndex(dht, config)
        keys = make_keys("uniform", params["size"], rng)
        for k in keys:
            index.insert(float(k))

        simulator = Simulator()
        driver = ChurnDriver(
            dht,
            simulator,
            rng,
            ChurnConfig(
                join_rate=0.5,
                leave_rate=0.5,
                crash_fraction=crash_fraction,
                stabilize_period=1.0,
                min_peers=8,
            ),
        )
        driver.start(until=params["duration"])
        simulator.run_until(params["duration"])
        dht.check_ring()  # ring integrity must survive every setting

        exact_rate, range_rate = _availability(
            index, keys, params["probes"], rng
        )
        exact_rates.append(exact_rate)
        range_rates.append(range_rate)
        crash_peers.append(driver.crashes)

    xs = list(_CRASH_FRACTIONS)
    return [
        ExperimentResult(
            experiment_id="E14",
            title="Index availability under churn (extension)",
            x_label="crash fraction of departures",
            y_label="success rate",
            params={"scale": scale, "seed": seed, "theta_split": _THETA, **params},
            series=[
                Series("exact-match availability", xs, exact_rates),
                Series("range-query success", xs, range_rates),
                Series("crashed peers", xs, crash_peers),
            ],
            notes=(
                "graceful-only churn (x=0) must stay at 1.0; crashes lose "
                "single-replica buckets"
            ),
        )
    ]
