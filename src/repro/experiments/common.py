"""Shared infrastructure for the experiment harness."""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.baselines.pht import PHTIndex
from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht import registry as substrate_registry
from repro.dht.base import DHT
from repro.errors import ConfigurationError
from repro.sim.rng import derive_seed
from repro.workloads.datasets import make_keys

__all__ = [
    "Series",
    "ExperimentResult",
    "SUBSTRATES",
    "make_dht",
    "build_index",
    "trial_rng",
    "count_build_time",
    "count_query_time",
    "reset_wall_clock",
    "wall_clock_totals",
]

#: Substrate factories selectable from the CLI — drawn from the
#: registry so every enrolled substrate is an experiment arm.
SUBSTRATES: dict[str, Callable[[int, int], DHT]] = substrate_registry.factories()


def make_dht(substrate: str, n_peers: int, seed: int) -> DHT:
    """Instantiate a substrate by name (delegates to the registry)."""
    return substrate_registry.make(substrate, n_peers, seed)


def trial_rng(seed: int, experiment: str, trial: int) -> np.random.Generator:
    """Independent generator per (experiment, trial) pair."""
    return np.random.default_rng(derive_seed(seed, f"{experiment}:{trial}"))


# ----------------------------------------------------------------------
# Wall-clock accounting (experiments only — the deterministic core is
# wall-clock-free by lint rule LHT001).  Every figure's numbers stay
# count-based; these totals ride along in ExperimentResult.timings so
# the bulk-build / parallel-runner speedups are visible in every run
# without ever entering a benchgate comparison.
# ----------------------------------------------------------------------

_WALL_TOTALS = {"build_s": 0.0, "query_s": 0.0}


def reset_wall_clock() -> None:
    """Zero the per-experiment build/query wall-clock accumulators."""
    for phase in _WALL_TOTALS:
        _WALL_TOTALS[phase] = 0.0


def wall_clock_totals() -> dict[str, float]:
    """A copy of the accumulated wall-clock totals, in seconds."""
    return dict(_WALL_TOTALS)


@contextmanager
def _count_wall(phase: str) -> Iterator[None]:
    started = time.perf_counter()
    try:
        yield
    finally:
        _WALL_TOTALS[phase] += time.perf_counter() - started


@contextmanager
def count_build_time() -> Iterator[None]:
    """Charge the enclosed block to the experiment's ``build_s`` total."""
    with _count_wall("build_s"):
        yield


@contextmanager
def count_query_time() -> Iterator[None]:
    """Charge the enclosed block to the experiment's ``query_s`` total."""
    with _count_wall("query_s"):
        yield


def build_index(
    scheme: str,
    dht: DHT,
    config: IndexConfig,
    keys: np.ndarray,
    fast: bool = True,
) -> LHTIndex | PHTIndex:
    """Bulk-build an LHT or PHT index from a key array.

    Defaults to the sorted fast path (one put per final leaf) because
    most experiments only need the built *structure*.  Experiments that
    measure construction costs from the maintenance ledger (Figs. 6-7,
    Eq. 3) must pass ``fast=False`` to replay the incremental algorithm.
    """
    if scheme == "lht":
        index: LHTIndex | PHTIndex = LHTIndex(dht, config)
    elif scheme == "pht":
        index = PHTIndex(dht, config)
    else:
        raise ConfigurationError(f"unknown scheme {scheme!r}")
    with count_build_time():
        index.bulk_load((float(k) for k in keys), fast=fast)
    return index


@dataclass(slots=True)
class Series:
    """One labelled curve of an experiment plot."""

    label: str
    x: list[float]
    y: list[float]
    y_err: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: x and y lengths differ"
            )
        if self.y_err and len(self.y_err) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: y_err length differs"
            )


@dataclass(slots=True)
class ExperimentResult:
    """The regenerated data behind one paper figure or analysis."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    params: dict
    series: list[Series]
    notes: str = ""
    #: Wall-clock seconds (``build_s``, ``query_s``, ``wall_s``), stamped
    #: by the runner from the accumulators above.  Informational only:
    #: host-dependent, never part of any count-based comparison, and
    #: stripped by :meth:`canonical_json` for byte-identity checks.
    timings: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_table(self) -> str:
        """Render as an aligned text table, one column per series."""
        xs = sorted({x for s in self.series for x in s.x})
        headers = [self.x_label] + [s.label for s in self.series]
        rows: list[list[str]] = []
        for x in xs:
            row = [_format_number(x)]
            for s in self.series:
                try:
                    idx = s.x.index(x)
                except ValueError:
                    row.append("-")
                    continue
                cell = _format_number(s.y[idx])
                if s.y_err:
                    cell += f" ±{_format_number(s.y_err[idx])}"
                row.append(cell)
            rows.append(row)
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
            for c in range(len(headers))
        ]
        lines = [
            f"{self.experiment_id}: {self.title}",
            "  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
            "  " + "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"  note: {self.notes}")
        if self.timings:
            cells = ", ".join(
                f"{name}={seconds:.2f}s"
                for name, seconds in sorted(self.timings.items())
            )
            lines.append(f"  wall: {cells}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A JSON-serializable dict of the result."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "params": self.params,
            "series": [
                {"label": s.label, "x": s.x, "y": s.y, "y_err": s.y_err}
                for s in self.series
            ],
            "notes": self.notes,
            "timings": dict(self.timings),
        }

    def canonical_json(self) -> dict:
        """The result dict without host-dependent wall-clock timings.

        This is the byte-comparable view: two runs of the same seed must
        agree on it exactly (the ``--jobs`` determinism test compares
        it), while ``timings`` legitimately varies run to run.
        """
        data = self.to_json()
        data.pop("timings", None)
        return data

    def save(self, directory: str | Path) -> Path:
        """Write the result JSON into ``directory``; returns the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id.lower()}.json"
        path.write_text(json.dumps(self.to_json(), indent=2))
        return path

    def series_by_label(self, label: str) -> Series:
        """Fetch one series by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise ConfigurationError(f"no series labelled {label!r}")


def _format_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return f"{value:.4g}"
