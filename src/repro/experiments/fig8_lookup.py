"""E5/E6 — lookup performance, LHT vs PHT (paper Fig. 8, §9.3).

With ``D = 20`` fixed a priori, both indexes are built at each data size
and probed with uniformly distributed lookup keys; the average number of
DHT-lookups per index lookup is reported.

Expected shape: both curves fluctuate with data size (the binary search
resolves in fewer probes when the tree depth happens to align with the
search pivots — the paper's "valley points"), with LHT below PHT by
roughly 20% (uniform) / 30% (gaussian), because LHT's search runs over
the ``≈ D/2`` distinct *name classes* rather than all ``D`` prefix
lengths.
"""

from __future__ import annotations

from repro.analysis.stats import aggregate, powers_of_two
from repro.core.config import IndexConfig
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    build_index,
    count_query_time,
    trial_rng,
)
from repro.workloads.datasets import make_keys
from repro.workloads.queries import lookup_keys

__all__ = ["run"]

_SCALES = {
    "ci": {"exps": (8, 13), "trials": 3, "n_lookups": 200},
    "paper": {"exps": (8, 17), "trials": 10, "n_lookups": 1000},
}

_THETA = 100
_MAX_DEPTH = 20  # the paper's a-priori D


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Run both Fig. 8 panels; returns [E5 (uniform), E6 (gaussian)]."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    lo, hi = params["exps"]
    sizes = powers_of_two(lo, hi)
    config = IndexConfig(theta_split=_THETA, max_depth=_MAX_DEPTH)

    results: list[ExperimentResult] = []
    for exp_id, distribution in (("E5", "uniform"), ("E6", "gaussian")):
        series: list[Series] = []
        for scheme in ("lht", "pht"):
            means: list[float] = []
            errs: list[float] = []
            for size in sizes:
                samples: list[float] = []
                for trial in range(params["trials"]):
                    rng = trial_rng(
                        seed, f"fig8:{scheme}:{distribution}:{size}", trial
                    )
                    keys = make_keys(distribution, size, rng)
                    dht = LocalDHT(n_peers=64, seed=trial)
                    index = build_index(scheme, dht, config, keys)
                    probes = lookup_keys(params["n_lookups"], rng)
                    total = 0
                    with count_query_time():
                        for probe in probes:
                            total += index.lookup(float(probe)).dht_lookups
                    samples.append(total / len(probes))
                agg = aggregate(samples)
                means.append(agg.mean)
                errs.append(agg.ci95_half_width)
            series.append(
                Series(
                    label=scheme,
                    x=[float(s) for s in sizes],
                    y=means,
                    y_err=errs,
                )
            )
        lht_mean = sum(series[0].y) / len(series[0].y)
        pht_mean = sum(series[1].y) / len(series[1].y)
        results.append(
            ExperimentResult(
                experiment_id=exp_id,
                title=(
                    f"Lookup cost vs data size, {distribution} data "
                    f"(Fig. 8{'a' if distribution == 'uniform' else 'b'})"
                ),
                x_label="data size",
                y_label="DHT-lookups per index lookup",
                params={
                    "scale": scale,
                    "seed": seed,
                    "theta_split": _THETA,
                    "max_depth": _MAX_DEPTH,
                    **params,
                },
                series=series,
                notes=(
                    f"mean saving ratio: "
                    f"{1 - lht_mean / pht_mean:.1%} (LHT vs PHT)"
                ),
            )
        )
    return results
