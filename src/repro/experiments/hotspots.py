"""E21 — query-traffic hot spots (extension).

Storage load in LHT is uniform (E15), but *query* traffic is not: the
lookup binary search always probes mid-length name classes first, min
queries always hit ``#``, and general range forwarding always probes
``f_n(LCA)``.  This experiment measures per-key and per-peer access
distributions under a realistic query mix and reports the traffic Gini
plus the hottest DHT keys — quantifying a practical deployment concern
the paper does not discuss (caching or replicating hot name classes).
"""

from __future__ import annotations

from repro.analysis.stats import gini_coefficient
from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.accesslog import AccessLoggingDHT
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    count_build_time,
    count_query_time,
    trial_rng,
)
from repro.workloads.datasets import make_keys
from repro.workloads.queries import lookup_keys, span_ranges

__all__ = ["run"]

_SCALES = {
    "ci": {"size": 1 << 12, "n_lookups": 500, "n_ranges": 100, "n_peers": 128},
    "paper": {"size": 1 << 15, "n_lookups": 5_000, "n_ranges": 1_000, "n_peers": 512},
}

_THETA = 100


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Access-load skew of query traffic over an LHT."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    rng = trial_rng(seed, "hotspots", 0)
    dht = AccessLoggingDHT(LocalDHT(params["n_peers"], seed))
    index = LHTIndex(dht, IndexConfig(theta_split=_THETA, max_depth=20))
    with count_build_time():
        index.bulk_load(
            (float(k) for k in make_keys("uniform", params["size"], rng)),
            fast=True,
        )
    dht.reset_log()  # measure query traffic only

    with count_query_time():
        for probe in lookup_keys(params["n_lookups"], rng):
            index.lookup(float(probe))
        for query in span_ranges(params["n_ranges"], 0.05, rng):
            index.range_query(query.lo, query.hi)
        for _ in range(50):
            index.min_query()
            index.max_query()

    peer_counts = list(dht.peer_accesses().values())
    # pad with silent peers so the Gini covers the whole overlay
    peer_counts += [0] * (dht.n_peers - len(peer_counts))
    key_counts = list(dht.key_accesses.values())
    hottest = dht.hottest_keys(5)
    total = sum(key_counts)

    return [
        ExperimentResult(
            experiment_id="E21",
            title="Query-traffic hot spots (extension)",
            x_label="metric index [(0, per-peer traffic Gini), "
            "(1, per-key traffic Gini), (2, hottest-key share)]",
            y_label="skew measure",
            params={"scale": scale, "seed": seed, "theta_split": _THETA, **params},
            series=[
                Series(
                    "lht",
                    [0.0, 1.0, 2.0],
                    [
                        gini_coefficient(peer_counts),
                        gini_coefficient(key_counts),
                        hottest[0][1] / total,
                    ],
                )
            ],
            notes=(
                "hottest keys: "
                + ", ".join(f"{k} ({c})" for k, c in hottest)
            ),
        )
    ]
