"""E12 — min/max query cost (paper §7, Theorem 3).

LHT answers min/max in one DHT-lookup regardless of index size, because
the naming function pins the leftmost leaf under ``#`` and the rightmost
under ``#0``.  PHT, lacking such a shortcut, descends the trie edge (one
lookup per level).  This experiment sweeps data size and reports both
schemes' measured lookup counts, plus correctness against the oracle.
"""

from __future__ import annotations

from repro.analysis.stats import aggregate, powers_of_two
from repro.core.config import IndexConfig
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    build_index,
    count_query_time,
    trial_rng,
)
from repro.workloads.datasets import make_keys

__all__ = ["run"]

_SCALES = {
    "ci": {"exps": (8, 13), "trials": 3},
    "paper": {"exps": (10, 17), "trials": 10},
}

_THETA = 100


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Measure min/max query cost for LHT vs PHT across data sizes."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    lo, hi = params["exps"]
    sizes = powers_of_two(lo, hi)
    config = IndexConfig(theta_split=_THETA, max_depth=24)

    curves: dict[str, list[float]] = {
        "lht-min": [],
        "lht-max": [],
        "pht-min": [],
        "pht-max": [],
    }
    for size in sizes:
        samples: dict[str, list[float]] = {k: [] for k in curves}
        for trial in range(params["trials"]):
            rng = trial_rng(seed, f"minmax:{size}", trial)
            keys = make_keys("uniform", size, rng)
            true_min, true_max = float(keys.min()), float(keys.max())

            lht = build_index("lht", LocalDHT(64, trial), config, keys)
            with count_query_time():
                mn = lht.min_query()
                mx = lht.max_query()
            if mn.record.key != true_min or mx.record.key != true_max:
                raise ReproError("LHT min/max answer mismatch")
            samples["lht-min"].append(mn.dht_lookups)
            samples["lht-max"].append(mx.dht_lookups)

            pht = build_index("pht", LocalDHT(64, trial), config, keys)
            with count_query_time():
                pmn, pmn_cost = pht.min_query()
                pmx, pmx_cost = pht.max_query()
            if pmn.key != true_min or pmx.key != true_max:
                raise ReproError("PHT min/max answer mismatch")
            samples["pht-min"].append(pmn_cost)
            samples["pht-max"].append(pmx_cost)
        for name in curves:
            curves[name].append(aggregate(samples[name]).mean)

    xs = [float(s) for s in sizes]
    return [
        ExperimentResult(
            experiment_id="E12",
            title="Min/max query cost vs data size (Theorem 3)",
            x_label="data size",
            y_label="DHT-lookups per query",
            params={"scale": scale, "seed": seed, "theta_split": _THETA, **params},
            series=[Series(name, xs, ys) for name, ys in curves.items()],
            notes="expect LHT constant at 1; PHT grows with trie depth",
        )
    ]
