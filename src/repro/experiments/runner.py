"""Experiment CLI: run any subset of the paper's figures and extensions.

Usage (installed as ``lht-experiments``)::

    lht-experiments --list
    lht-experiments fig6 fig7 --scale ci --out results/
    lht-experiments all --scale paper --seed 1 --jobs 4

Each experiment prints a text table mirroring the paper's plot and, with
``--out``, writes machine-readable JSON per experiment ID.

``--jobs N`` fans the experiment *cells* (one per experiment name) out
across ``N`` worker processes.  This is safe because every cell derives
all of its randomness from ``(root seed, experiment name, trial)`` via
``repro.sim.rng.derive_seed`` — process placement cannot leak into any
number — and the parent merges results in submission order, so the
output is byte-identical to ``--jobs 1`` apart from the wall-clock
``timings``/"finished in" annotations.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from typing import Callable

from repro.experiments import (
    ablation_lookup,
    availability,
    cached_lookup,
    churn_study,
    churn_workload,
    eq3_saving,
    fig6_alpha,
    fig7_maintenance,
    fig8_lookup,
    hotspots,
    latency_study,
    load_balance,
    minmax_cost,
    range_perf,
    replica_availability,
    routing_diversity,
    substrates,
)
from repro.experiments import common
from repro.experiments.common import ExperimentResult
from repro.errors import ConfigurationError

__all__ = ["main", "EXPERIMENTS", "run_experiments"]

#: name -> (description, runner)
EXPERIMENTS: dict[str, tuple[str, Callable[[str, int], list[ExperimentResult]]]] = {
    "fig6": ("E1/E2: average alpha (Fig. 6a-b)", fig6_alpha.run),
    "fig7": ("E3/E4: maintenance cost (Fig. 7a-b)", fig7_maintenance.run),
    "fig8": ("E5/E6: lookup performance (Fig. 8a-b)", fig8_lookup.run),
    "range": ("E7-E10: range query perf (Figs. 9-10)", range_perf.run),
    "eq3": ("E11: saving ratio vs gamma (Eq. 3)", eq3_saving.run),
    "minmax": ("E12: min/max query cost (Thm. 3)", minmax_cost.run),
    "substrates": ("E13: substrate independence", substrates.run),
    "churn": ("E14: availability under churn", churn_study.run),
    "balance": ("E15: storage load balance", load_balance.run),
    "ablation": ("E16: lookup ablation (collapse vs search)", ablation_lookup.run),
    "latency": ("E19: simulated wall latency", latency_study.run),
    "workload": ("E20: maintenance under mixed workload", churn_workload.run),
    "hotspots": ("E21: query-traffic hot spots", hotspots.run),
    "availability": ("E22: availability vs retry budget", availability.run),
    "cached": ("E23: leaf-cache benefit vs workload skew", cached_lookup.run),
    "routing-diversity": (
        "E25: hops per DHT-lookup across all registered substrates",
        routing_diversity.run,
    ),
    "replica-availability": (
        "E26: availability vs replication factor (placement layer)",
        replica_availability.run,
    ),
}


def _run_cell(
    cell: tuple[str, str, int]
) -> tuple[str, list[ExperimentResult], float]:
    """Run one experiment cell — the worker-process entry point.

    Each cell is hermetic: its randomness comes entirely from
    ``derive_seed(seed, "<experiment>:<trial>")`` inside the experiment
    module, so the same cell computes the same results in any process.
    Wall-clock totals accumulated in :mod:`repro.experiments.common`
    are stamped onto each result before it crosses back to the parent.
    """
    name, scale, seed = cell
    _, runner = EXPERIMENTS[name]
    common.reset_wall_clock()
    started = time.perf_counter()
    batch = runner(scale, seed)
    elapsed = time.perf_counter() - started
    wall = common.wall_clock_totals()
    for result in batch:
        result.timings.update(wall)
        result.timings["wall_s"] = elapsed
    return name, batch, elapsed


def _emit(
    name: str,
    batch: list[ExperimentResult],
    elapsed: float,
    out: str | None,
) -> None:
    for result in batch:
        print(result.to_table())
        print()
        if out is not None:
            path = result.save(out)
            print(f"  saved: {path}")
    print(f"  [{name} finished in {elapsed:.1f}s]\n", flush=True)


def run_experiments(
    names: list[str],
    scale: str = "ci",
    seed: int = 0,
    out: str | None = None,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run the named experiments and return all results.

    With ``jobs > 1`` the cells execute in a ``spawn`` process pool and
    the parent prints/saves them in submission order as each becomes
    available, so stdout and the saved JSON match a serial run exactly
    (modulo wall-clock timings).
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1: {jobs}")
    cells = [(name, scale, seed) for name in names]
    results: list[ExperimentResult] = []
    if jobs == 1:
        for name, _, _ in cells:
            description, _runner = EXPERIMENTS[name]
            print(f"== {name}: {description} (scale={scale})", flush=True)
            _, batch, elapsed = _run_cell((name, scale, seed))
            _emit(name, batch, elapsed, out)
            results.extend(batch)
        return results
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(jobs, len(cells))) as pool:
        for name, batch, elapsed in pool.imap(_run_cell, cells):
            description, _runner = EXPERIMENTS[name]
            print(f"== {name}: {description} (scale={scale})", flush=True)
            _emit(name, batch, elapsed, out)
            results.extend(batch)
    return results


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lht-experiments",
        description="Regenerate the LHT paper's figures and extensions.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "ci", "paper"),
        default="ci",
        help="parameter scale: 'ci' is fast, 'paper' uses paper-sized "
        "sweeps; 'smoke' is the minimal CI leg (experiments that define "
        "one — currently E26)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--out", default=None, help="directory for per-experiment JSON output"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run experiment cells in N parallel processes; results merge "
        "in submission order, byte-identical to --jobs 1",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:12s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    run_experiments(
        names, scale=args.scale, seed=args.seed, out=args.out, jobs=args.jobs
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
