"""E26 — availability vs replication factor across all substrates.

The companion to E22: where E22 buys availability with *retries* (more
attempts on the same routed path), this experiment buys it with
*replicas* (more copies on topology-derived peers, via the placement
layer).  A seeded exact-match workload runs over
``ReplicatedDHT(FaultyDHT(substrate))`` for every registered substrate,
sweeping reply drop rate × replication factor k ∈ {1, 2, 3}.

Per cell, probes target keys *known to be stored*, so any non-PRESENT
outcome is a failure:

* **availability** — fraction of probes answering PRESENT.  Analytic
  prediction: each routed get survives with probability ``1 - p^k``
  (primary drop *and* all ``k - 1`` replica probes dropped), so a
  lookup of ``g`` gets succeeds with ≈ ``(1 - p^k)^g`` — strictly
  increasing in ``k`` for every ``p > 0``, on every substrate, which
  the acceptance gate checks at p = 0.3.
* **put amplification** — routed puts per stored record during the
  build: the maintenance price of k copies (≈ k exactly, since every
  leaf put fans out once per replica holder).

The k = 1 column doubles as the placement no-op proof: the wrapper is a
pass-through, so its availability matches the unreplicated E22
budget-1 baseline at the same drop rate.
"""

from __future__ import annotations

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.core.results import MatchStatus
from repro.dht.faulty import FaultyDHT
from repro.dht.replicated import ReplicatedDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    count_build_time,
    count_query_time,
    make_dht,
    trial_rng,
)
from repro.sim.rng import derive_seed
from repro.workloads.datasets import make_keys

__all__ = ["run"]

_SCALES = {
    # One substrate, minimal shape: the CI smoke leg.
    "smoke": {
        "substrates": ["chord"],
        "n_peers": 12,
        "size": 1 << 7,
        "probes": 40,
        "drop_rates": [0.0, 0.3],
    },
    # All substrates: the registry decides the list at run time.
    "ci": {
        "substrates": None,
        "n_peers": 16,
        "size": 1 << 8,
        "probes": 400,
        "drop_rates": [0.0, 0.1, 0.3, 0.5],
    },
    "paper": {
        "substrates": None,
        "n_peers": 32,
        "size": 1 << 10,
        "probes": 400,
        "drop_rates": [0.0, 0.05, 0.1, 0.2, 0.3, 0.5],
    },
}

_KS = [1, 2, 3]
_THETA = 16


def _run_cell(
    substrate: str,
    drop_rate: float,
    k: int,
    params: dict,
    seed: int,
) -> tuple[float, float, int]:
    """(availability, puts per record at build, failovers recorded)."""
    rng = trial_rng(seed, f"replica-avail:{substrate}:{drop_rate}:{k}", 0)
    faulty = FaultyDHT(
        make_dht(substrate, params["n_peers"], derive_seed(seed, "sub")),
        seed=derive_seed(seed, f"faults:{substrate}:{drop_rate}:{k}"),
    )
    dht = ReplicatedDHT(faulty, n_replicas=k)
    index = LHTIndex(dht, IndexConfig(theta_split=_THETA))
    keys = make_keys("uniform", params["size"], rng)
    build_before = dht.metrics.snapshot()
    with count_build_time():
        index.bulk_load((float(key) for key in keys), fast=True)
    puts_per_record = (
        dht.metrics.since(build_before).puts / len(keys)
    )

    # Faults start only once the index is built: every probed key is
    # genuinely stored, so any non-PRESENT outcome is a failure.
    faulty.get_drop_rate = drop_rate
    sample = rng.choice(
        keys, size=min(params["probes"], len(keys)), replace=False
    )
    before = dht.metrics.snapshot()
    hits = 0
    with count_query_time():
        for key in sample:
            result = index.exact_match_checked(float(key))
            if result.status is MatchStatus.PRESENT:
                hits += 1
    spent = dht.metrics.since(before)
    return hits / len(sample), puts_per_record, spent.replica_failovers


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Availability and put amplification across substrate × p × k."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    if params["substrates"] is None:
        from repro.dht import registry

        substrates = registry.names()
    else:
        substrates = list(params["substrates"])

    drop_rates = list(params["drop_rates"])
    shared = {
        "scale": scale,
        "seed": seed,
        "theta_split": _THETA,
        "n_peers": params["n_peers"],
        "size": params["size"],
        "probes": params["probes"],
        "ks": _KS,
    }
    results: list[ExperimentResult] = []
    amplification: dict[str, list[float]] = {}
    failovers: dict[str, list[float]] = {}
    for substrate in substrates:
        availability: dict[int, list[float]] = {k: [] for k in _KS}
        amp_row: list[float] = []
        fo_row: list[float] = []
        for k in _KS:
            total_failovers = 0
            for drop_rate in drop_rates:
                rate, puts_per_record, rescued = _run_cell(
                    substrate, drop_rate, k, params, seed
                )
                availability[k].append(rate)
                total_failovers += rescued
            amp_row.append(puts_per_record)
            fo_row.append(float(total_failovers))
        amplification[substrate] = amp_row
        failovers[substrate] = fo_row
        results.append(
            ExperimentResult(
                experiment_id="E26",
                title=(
                    "Exact-match availability vs replication factor "
                    f"({substrate})"
                ),
                x_label="get drop rate",
                y_label="availability (PRESENT fraction)",
                params={**shared, "substrate": substrate},
                series=[
                    Series(f"k={k}", drop_rates, availability[k])
                    for k in _KS
                ],
                notes=(
                    "probes target keys known stored; non-PRESENT = "
                    "failure. Prediction: availability ~ (1 - p^k)^gets"
                ),
            )
        )
    results.append(
        ExperimentResult(
            experiment_id="E26b",
            title="Replica put amplification at build",
            x_label="replication factor k",
            y_label="routed puts per stored record",
            params=shared,
            series=[
                Series(substrate, [float(k) for k in _KS],
                       amplification[substrate])
                for substrate in substrates
            ],
            notes=(
                "every leaf put fans out to k placement targets; "
                "failover rescues per substrate (summed over drop "
                "rates): "
                + ", ".join(
                    f"{s}={[int(v) for v in failovers[s]]}"
                    for s in substrates
                )
            ),
        )
    )
    return results
