"""E3/E4 — cumulative maintenance cost, LHT vs PHT (paper Fig. 7, §9.2).

Progressively larger datasets are inserted into both schemes (θ=100) and
the cumulative *maintenance* traffic — the cost-model's two components —
is recorded at each size checkpoint:

* **E3 (Fig. 7a)** — moved records.  Expected shape: linear in data
  size, with LHT ≈ half of PHT (one split moves half an LHT bucket but a
  whole PHT bucket).
* **E4 (Fig. 7b)** — DHT-lookups.  Expected shape: LHT ≈ a quarter of
  PHT (1 lookup per LHT split vs 2 child puts + up to 2 link repairs).
"""

from __future__ import annotations

from repro.analysis.stats import aggregate, powers_of_two
from repro.core.config import IndexConfig
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    build_index,
    count_build_time,
    trial_rng,
)
from repro.workloads.datasets import make_keys

__all__ = ["run"]

_SCALES = {
    "ci": {"exps": (9, 13), "trials": 3},
    "paper": {"exps": (10, 17), "trials": 10},
}

_THETA = 100
_DISTRIBUTIONS = ("uniform", "gaussian")
_SCHEMES = ("lht", "pht")


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Run both Fig. 7 panels; returns [E3 (moved records), E4 (lookups)]."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    lo, hi = params["exps"]
    checkpoints = powers_of_two(lo, hi)
    config = IndexConfig(theta_split=_THETA, max_depth=24)

    moved_series: list[Series] = []
    lookup_series: list[Series] = []
    for scheme in _SCHEMES:
        for distribution in _DISTRIBUTIONS:
            moved_cp: list[list[float]] = [[] for _ in checkpoints]
            lookups_cp: list[list[float]] = [[] for _ in checkpoints]
            for trial in range(params["trials"]):
                rng = trial_rng(seed, f"fig7:{scheme}:{distribution}", trial)
                keys = make_keys(distribution, checkpoints[-1], rng)
                index = build_index(
                    scheme, LocalDHT(n_peers=64, seed=trial), config, keys[:0]
                )
                start = 0
                for ci, size in enumerate(checkpoints):
                    # Maintenance costs come from the ledger, so each
                    # increment replays the incremental algorithm.
                    with count_build_time():
                        index.bulk_load(float(k) for k in keys[start:size])
                    start = size
                    moved_cp[ci].append(
                        index.ledger.maintenance_records_moved
                    )
                    lookups_cp[ci].append(index.ledger.maintenance_lookups)
            label = f"{scheme}/{distribution}"
            xs = [float(c) for c in checkpoints]
            moved_series.append(
                Series(
                    label=label,
                    x=xs,
                    y=[aggregate(v).mean for v in moved_cp],
                    y_err=[aggregate(v).ci95_half_width for v in moved_cp],
                )
            )
            lookup_series.append(
                Series(
                    label=label,
                    x=xs,
                    y=[aggregate(v).mean for v in lookups_cp],
                    y_err=[aggregate(v).ci95_half_width for v in lookups_cp],
                )
            )

    common = {"scale": scale, "seed": seed, "theta_split": _THETA, **params}
    return [
        ExperimentResult(
            experiment_id="E3",
            title="Cumulative maintenance data movement (Fig. 7a)",
            x_label="data size",
            y_label="moved records",
            params=common,
            series=moved_series,
            notes="expect LHT ~ 0.5x PHT",
        ),
        ExperimentResult(
            experiment_id="E4",
            title="Cumulative maintenance DHT-lookups (Fig. 7b)",
            x_label="data size",
            y_label="maintenance DHT-lookups",
            params=common,
            series=lookup_series,
            notes="expect LHT ~ 0.25x PHT",
        ),
    ]
