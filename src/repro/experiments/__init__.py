"""Experiment harness: one module per paper figure/analysis.

Every module exposes ``run(scale="ci", seed=0) -> ExperimentResult``;
``scale="paper"`` uses the paper's dataset sizes and trial counts (slow),
``"ci"`` a reduced grid with identical structure.  The
:mod:`repro.experiments.runner` CLI drives them all and renders text
tables mirroring the paper's plots.

Experiment IDs (see DESIGN.md §4):

====  =====================  ==========================================
ID    Paper artefact         Module
====  =====================  ==========================================
E1-2  Fig. 6a-b              :mod:`repro.experiments.fig6_alpha`
E3-4  Fig. 7a-b              :mod:`repro.experiments.fig7_maintenance`
E5-6  Fig. 8a-b              :mod:`repro.experiments.fig8_lookup`
E7-8  Fig. 9a-b              :mod:`repro.experiments.fig9_range_bandwidth`
E9-10 Fig. 10a-b             :mod:`repro.experiments.fig10_range_latency`
E11   Eq. 3 (§8.2)           :mod:`repro.experiments.eq3_saving`
E12   Theorem 3 (§7)         :mod:`repro.experiments.minmax_cost`
E13   substrate independence :mod:`repro.experiments.substrates`
E14   churn resilience       :mod:`repro.experiments.churn_study`
E15   storage load balance   :mod:`repro.experiments.load_balance`
E23   leaf-cache skew sweep  :mod:`repro.experiments.cached_lookup`
====  =====================  ==========================================
"""

from repro.experiments.common import ExperimentResult, Series

__all__ = ["ExperimentResult", "Series"]
