"""E1/E2 — average split fraction ᾱ (paper Fig. 6, §9.2).

The paper inserts progressively larger datasets into LHT and reports the
average α — the remote bucket's share of ``θ_split`` storage slots at
each split — cumulated over the whole tree growth.  For uniform data the
measured curve should match the closed form ``ᾱ = 1/2 + 1/(2θ)`` (the
label slot's overhead); gaussian data deviates at small sizes and
converges with scale.

* **E1 (Fig. 6a)** — ᾱ vs. data size, for ``θ ∈ {40, 160}``;
* **E2 (Fig. 6b)** — ᾱ vs. ``θ_split`` at a fixed data size.
"""

from __future__ import annotations

from repro.analysis.stats import aggregate, powers_of_two
from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    count_build_time,
    trial_rng,
)
from repro.workloads.datasets import make_keys

__all__ = ["run", "run_fig6a", "run_fig6b", "expected_alpha"]

_SCALES = {
    "ci": {"exps": (8, 13), "trials": 3, "fixed_size_exp": 12},
    "paper": {"exps": (8, 17), "trials": 10, "fixed_size_exp": 16},
}

_DISTRIBUTIONS = ("uniform", "gaussian")


def expected_alpha(theta_split: int) -> float:
    """The paper's closed form ``ᾱ = 1/2 + 1/(2θ)`` (§9.2)."""
    return 0.5 + 1.0 / (2.0 * theta_split)


def _scale_params(scale: str) -> dict:
    try:
        return _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None


def _alpha_growth_curve(
    distribution: str,
    theta_split: int,
    checkpoints: list[int],
    trials: int,
    seed: int,
) -> tuple[list[float], list[float]]:
    """Mean cumulative ᾱ at each size checkpoint, averaged over trials."""
    per_checkpoint: list[list[float]] = [[] for _ in checkpoints]
    for trial in range(trials):
        rng = trial_rng(seed, f"fig6a:{distribution}:{theta_split}", trial)
        keys = make_keys(distribution, checkpoints[-1], rng)
        index = LHTIndex(
            LocalDHT(n_peers=64, seed=trial),
            IndexConfig(theta_split=theta_split, max_depth=24),
        )
        start = 0
        for ci, size in enumerate(checkpoints):
            # ᾱ comes from the split ledger, so the build must stay on
            # the incremental path (the fast path never splits).
            with count_build_time():
                index.bulk_load(float(k) for k in keys[start:size])
            start = size
            per_checkpoint[ci].append(index.ledger.average_alpha)
    means = [aggregate(vals).mean for vals in per_checkpoint]
    errs = [aggregate(vals).ci95_half_width for vals in per_checkpoint]
    return means, errs


def run_fig6a(scale: str = "ci", seed: int = 0) -> ExperimentResult:
    """E1: average ᾱ vs data size for θ ∈ {40, 160} (Fig. 6a)."""
    params = _scale_params(scale)
    lo, hi = params["exps"]
    checkpoints = powers_of_two(lo, hi)
    series: list[Series] = []
    for theta in (40, 160):
        for distribution in _DISTRIBUTIONS:
            means, errs = _alpha_growth_curve(
                distribution, theta, checkpoints, params["trials"], seed
            )
            series.append(
                Series(
                    label=f"{distribution}/θ={theta}",
                    x=[float(c) for c in checkpoints],
                    y=means,
                    y_err=errs,
                )
            )
        series.append(
            Series(
                label=f"expected/θ={theta}",
                x=[float(c) for c in checkpoints],
                y=[expected_alpha(theta)] * len(checkpoints),
            )
        )
    return ExperimentResult(
        experiment_id="E1",
        title="Average split fraction alpha vs data size (Fig. 6a)",
        x_label="data size",
        y_label="average alpha",
        params={"scale": scale, "seed": seed, **params},
        series=series,
        notes="expected curve is the paper's 1/2 + 1/(2*theta)",
    )


def run_fig6b(scale: str = "ci", seed: int = 0) -> ExperimentResult:
    """E2: average ᾱ vs θ_split at a fixed data size (Fig. 6b)."""
    params = _scale_params(scale)
    size = 1 << params["fixed_size_exp"]
    thetas = [20, 40, 60, 100, 160, 240, 320]
    series: list[Series] = []
    for distribution in _DISTRIBUTIONS:
        means: list[float] = []
        errs: list[float] = []
        for theta in thetas:
            samples = []
            for trial in range(params["trials"]):
                rng = trial_rng(seed, f"fig6b:{distribution}:{theta}", trial)
                keys = make_keys(distribution, size, rng)
                index = LHTIndex(
                    LocalDHT(n_peers=64, seed=trial),
                    IndexConfig(theta_split=theta, max_depth=24),
                )
                with count_build_time():
                    index.bulk_load(float(k) for k in keys)
                samples.append(index.ledger.average_alpha)
            agg = aggregate(samples)
            means.append(agg.mean)
            errs.append(agg.ci95_half_width)
        series.append(
            Series(
                label=distribution,
                x=[float(t) for t in thetas],
                y=means,
                y_err=errs,
            )
        )
    series.append(
        Series(
            label="expected",
            x=[float(t) for t in thetas],
            y=[expected_alpha(t) for t in thetas],
        )
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Average split fraction alpha vs theta_split (Fig. 6b)",
        x_label="theta_split",
        y_label="average alpha",
        params={"scale": scale, "seed": seed, "size": size},
        series=series,
        notes="expected curve is the paper's 1/2 + 1/(2*theta)",
    )


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Run both Fig. 6 panels."""
    return [run_fig6a(scale, seed), run_fig6b(scale, seed)]
