"""E22 — availability vs retry budget under a lossy substrate (extension).

The paper's algorithms read failed DHT-gets structurally (Alg. 2), so a
network that drops replies silently converts *present* keys into apparent
misses.  This experiment quantifies the recovery the resilience layer
buys: a seeded exact-match workload runs against a ``ResilientDHT`` over
a ``FaultyDHT`` over a local substrate, sweeping reply drop rate × retry
attempt budget.

Reported per cell:

* **success rate** — fraction of probes for keys *known to be stored*
  that return PRESENT (a false ABSENT or UNREACHABLE is a failure);
* **lookup-cost inflation** — routed gets per probe relative to the
  fault-free budget-1 baseline: what the extra availability costs.

The analytic prediction is simple and checkable: a probe's lookup makes
≈``ceil(log2(leaves))`` gets, each surviving with probability
``1 - p^k`` for drop rate ``p`` and ``k`` attempts — so at p=0.2 a
single-attempt workload loses a double-digit fraction of probes while
k=5 loses ≈``1 - (1 - 0.2^5)^gets`` ≈ 0.1%.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.core.results import MatchStatus
from repro.dht.faulty import FaultyDHT
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    count_build_time,
    count_query_time,
    trial_rng,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.wrapper import ResilientDHT
from repro.sim.rng import derive_seed
from repro.workloads.datasets import make_keys

__all__ = ["run"]

_SCALES = {
    "ci": {"n_peers": 16, "size": 1 << 9, "probes": 150},
    "paper": {"n_peers": 64, "size": 1 << 12, "probes": 1000},
}

_DROP_RATES = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5]
_BUDGETS = [1, 2, 3, 5]
_THETA = 16


def _run_cell(
    drop_rate: float,
    budget: int,
    params: dict,
    seed: int,
) -> tuple[float, float]:
    """One (drop rate, retry budget) cell → (success rate, gets/probe)."""
    rng = trial_rng(seed, f"avail:{drop_rate}:{budget}", 0)
    faulty = FaultyDHT(
        LocalDHT(n_peers=params["n_peers"], seed=derive_seed(seed, "sub")),
        seed=derive_seed(seed, f"faults:{drop_rate}:{budget}"),
    )
    dht = ResilientDHT(
        faulty,
        policy=RetryPolicy(max_attempts=budget),
        seed=derive_seed(seed, f"retries:{drop_rate}:{budget}"),
    )
    index = LHTIndex(dht, IndexConfig(theta_split=_THETA))
    keys = make_keys("uniform", params["size"], rng)
    with count_build_time():
        index.bulk_load((float(k) for k in keys), fast=True)

    # Faults start only once the index is built: every probed key is
    # genuinely stored, so any non-PRESENT outcome is a failure.
    faulty.get_drop_rate = drop_rate
    sample = rng.choice(keys, size=min(params["probes"], len(keys)), replace=False)
    before = dht.metrics.snapshot()
    hits = 0
    with count_query_time():
        for key in sample:
            result = index.exact_match_checked(float(key))
            if result.status is MatchStatus.PRESENT:
                hits += 1
    spent = dht.metrics.snapshot() - before
    return hits / len(sample), spent.gets / len(sample)


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Success rate and cost inflation across drop rate × retry budget."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None

    success: dict[int, list[float]] = {b: [] for b in _BUDGETS}
    cost: dict[int, list[float]] = {b: [] for b in _BUDGETS}
    for budget in _BUDGETS:
        for drop_rate in _DROP_RATES:
            rate, gets = _run_cell(drop_rate, budget, params, seed)
            success[budget].append(rate)
            cost[budget].append(gets)

    # Inflation is relative to the fault-free single-attempt baseline —
    # the first cell of budget 1 (drop rate 0.0).
    baseline = cost[1][0]
    xs = list(_DROP_RATES)
    shared = {"scale": scale, "seed": seed, "theta_split": _THETA, **params}
    return [
        ExperimentResult(
            experiment_id="E22",
            title="Exact-match availability vs retry budget (extension)",
            x_label="get drop rate",
            y_label="success rate",
            params={**shared, "budgets": _BUDGETS},
            series=[
                Series(f"attempts={b}", xs, success[b]) for b in _BUDGETS
            ],
            notes=(
                "probes target keys known stored; non-PRESENT = failure. "
                "Prediction: per-probe success ~ (1 - p^k)^gets"
            ),
        ),
        ExperimentResult(
            experiment_id="E22b",
            title="Lookup-cost inflation vs retry budget (extension)",
            x_label="get drop rate",
            y_label="routed gets per probe / fault-free baseline",
            params={**shared, "budgets": _BUDGETS, "baseline_gets": baseline},
            series=[
                Series(f"attempts={b}", xs, [g / baseline for g in cost[b]])
                for b in _BUDGETS
            ],
            notes="every retry attempt is charged at the substrate",
        ),
    ]
