"""E25 — routing diversity: LHT costs from single-hop to log-hop overlays.

The "any DHT" claim (paper §3, footnote 5) means the index pays the same
number of DHT-lookups on every substrate while each lookup's physical
cost is the overlay's routing cost.  The substrate registry makes this
sweep total: every registered overlay — now spanning both routing
extremes, from D1HT-style single-hop (exactly 1 hop converged) through
de Bruijn Koorde (``O(log n / log log n)``) to Chord/Kademlia
(``O(log n)``) and CAN (``O(sqrt N)``) — runs the same build / point
lookup / range workload, and each figure reports mean routed hops per
DHT-lookup in that phase.

Three results, one per phase: E25 (point lookups), E25b (range
queries), E25c (bulk build).  Index-level DHT-lookup counts are
asserted identical across all substrates per phase, so the figures
isolate pure routing cost; substrate rows therefore order by overlay
diameter (onehop flat at 1.0, koorde between onehop and chord).
"""

from __future__ import annotations

from repro.core.config import IndexConfig
from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import (
    ExperimentResult,
    SUBSTRATES,
    Series,
    build_index,
    count_query_time,
    make_dht,
    trial_rng,
)
from repro.workloads.datasets import make_keys
from repro.workloads.queries import lookup_keys, span_ranges

__all__ = ["run"]

_SCALES = {
    "ci": {
        "n_peers": [16, 32],
        "size": 1 << 9,
        "n_lookups": 40,
        "n_ranges": 6,
        "span": 0.05,
    },
    "paper": {
        "n_peers": [16, 64, 256],
        "size": 1 << 11,
        "n_lookups": 120,
        "n_ranges": 12,
        "span": 0.05,
    },
}

_THETA = 20
_PHASES = ("build", "lookup", "range")


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Routed hops per DHT-lookup, per phase, across every substrate."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    config = IndexConfig(theta_split=_THETA, max_depth=20)

    hop_series: dict[str, list[Series]] = {phase: [] for phase in _PHASES}
    reference_cost: dict[tuple[str, int], int] = {}
    for substrate in sorted(SUBSTRATES):
        phase_hops: dict[str, list[float]] = {phase: [] for phase in _PHASES}
        xs: list[float] = []
        for n_peers in params["n_peers"]:
            # Identical workload across substrates (the invariance
            # check depends on it): the stream name omits the substrate.
            rng = trial_rng(seed, f"routing_diversity:{n_peers}", 0)
            dht = make_dht(substrate, n_peers, seed)
            keys = make_keys("uniform", params["size"], rng)

            before = dht.metrics.snapshot()
            index = build_index("lht", dht, config, keys)
            delta = dht.metrics.since(before)
            _bank(substrate, n_peers, "build", delta, phase_hops, reference_cost)

            before = dht.metrics.snapshot()
            with count_query_time():
                for probe in lookup_keys(params["n_lookups"], rng):
                    index.lookup(float(probe))
            delta = dht.metrics.since(before)
            _bank(substrate, n_peers, "lookup", delta, phase_hops, reference_cost)

            before = dht.metrics.snapshot()
            with count_query_time():
                for query in span_ranges(params["n_ranges"], params["span"], rng):
                    index.range_query(query.lo, query.hi)
            delta = dht.metrics.since(before)
            _bank(substrate, n_peers, "range", delta, phase_hops, reference_cost)

            xs.append(float(n_peers))
        for phase in _PHASES:
            hop_series[phase].append(Series(substrate, list(xs), phase_hops[phase]))

    shared = {"scale": scale, "seed": seed, "theta_split": _THETA, **params}
    notes = (
        "index-level DHT-lookup counts verified identical across all "
        f"{len(SUBSTRATES)} registered substrates in every phase; hop "
        "rows order by overlay diameter (onehop == 1.0 when converged)"
    )
    return [
        ExperimentResult(
            experiment_id="E25",
            title="Routing diversity: hops per DHT-lookup (point lookups)",
            x_label="number of peers",
            y_label="mean hops per DHT-lookup",
            params=dict(shared),
            series=hop_series["lookup"],
            notes=notes,
        ),
        ExperimentResult(
            experiment_id="E25b",
            title="Routing diversity: hops per DHT-lookup (range queries)",
            x_label="number of peers",
            y_label="mean hops per DHT-lookup",
            params=dict(shared),
            series=hop_series["range"],
            notes=notes,
        ),
        ExperimentResult(
            experiment_id="E25c",
            title="Routing diversity: hops per DHT-lookup (bulk build)",
            x_label="number of peers",
            y_label="mean hops per DHT-lookup",
            params=dict(shared),
            series=hop_series["build"],
            notes=notes,
        ),
    ]


def _bank(
    substrate: str,
    n_peers: int,
    phase: str,
    delta,
    phase_hops: dict[str, list[float]],
    reference_cost: dict[tuple[str, int], int],
) -> None:
    """Record one phase's hops-per-lookup and enforce cost invariance."""
    if delta.dht_lookups <= 0:
        raise ReproError(
            f"{phase} phase issued no DHT-lookups on {substrate} at N={n_peers}"
        )
    expected = reference_cost.setdefault((phase, n_peers), delta.dht_lookups)
    if delta.dht_lookups != expected:
        raise ReproError(
            f"index-level {phase} cost differs on {substrate} at "
            f"N={n_peers}: {delta.dht_lookups} != {expected}"
        )
    phase_hops[phase].append(delta.hops / delta.dht_lookups)
