"""E23 — leaf-cache benefit under skewed exact-match workloads (extension).

Alg. 2 charges ``≈ log2(D/2)`` routed gets on *every* exact match (≈ 3.3
at the paper's D = 20), independent of how often a key repeats.  Real
query streams are skewed; the :mod:`repro.cache` layer exploits that by
remembering leaf labels and validating them with one get.  This
experiment sweeps workload skew (Zipf-over-rank probe distribution) and
reports the amortized routed-get cost per exact match for three arms:

* **cache off** — the paper's baseline; flat ≈ ``log2(D/2)``;
* **cache on (small)** — capacity far below the leaf count, so the hit
  rate is carried by skew alone (the honest "does skew help?" arm);
* **cache on (ample)** — capacity above the leaf count: the asymptote,
  ≈ 1 get per probe once warm, skew-independent.

A companion result (E23b) reports the small cache's hit/miss/stale split
from the new ``cache_*`` metrics counters — staleness stays at zero here
because the workload is read-only after the build; the mutation cases
are covered by the equivalence machine and fault matrix in the test
suite, not by this figure.

Every probe targets a stored key and is asserted PRESENT: the cache is
required to preserve answers exactly, so this experiment measures *cost
only* on top of a correctness check, not instead of one.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    count_build_time,
    count_query_time,
    trial_rng,
)
from repro.sim.rng import derive_seed
from repro.workloads.datasets import make_keys
from repro.workloads.queries import zipf_rank_choice

__all__ = ["run"]

_SCALES = {
    "ci": {"n_peers": 16, "size": 1 << 12, "probes": 400, "small_capacity": 8},
    "paper": {
        "n_peers": 64,
        "size": 1 << 13,
        "probes": 5000,
        "small_capacity": 24,
    },
}

#: Zipf-over-rank exponents; 0.0 is the uniform (skew-free) endpoint.
_SKEWS = [0.0, 0.5, 0.8, 1.0, 1.2, 1.5]
_THETA = 100
_DEPTH = 20
_AMPLE_CAPACITY = 4096


def _zipf_probes(
    keys: np.ndarray, skew: float, n_probes: int, rng: np.random.Generator
) -> np.ndarray:
    """Zipf-over-rank probe stream (shared machinery — see
    :func:`repro.workloads.queries.zipf_rank_choice`)."""
    return zipf_rank_choice(keys, skew, n_probes, rng)


def _arm(
    capacity: int | None,
    skew: float,
    params: dict,
    seed: int,
) -> tuple[float, dict[str, float]]:
    """One (cache config, skew) cell → (gets/probe, cache counter rates)."""
    rng = trial_rng(seed, f"cached:{capacity}:{skew}", 0)
    dht = LocalDHT(
        n_peers=params["n_peers"],
        seed=derive_seed(seed, f"sub:{capacity}:{skew}"),
    )
    config = IndexConfig(
        theta_split=_THETA,
        max_depth=_DEPTH,
        cache_enabled=capacity is not None,
        cache_capacity=capacity if capacity is not None else 1024,
    )
    index = LHTIndex(dht, config)
    keys = make_keys("uniform", params["size"], rng)
    with count_build_time():
        index.bulk_load((float(k) for k in keys), fast=True)
    if index.cache is not None:
        # Measure steady-state reads, not build-time residue.
        index.cache.clear()

    probes = _zipf_probes(keys, skew, params["probes"], rng)
    before = dht.metrics.snapshot()
    with count_query_time():
        for key in probes:
            record, _ = index.exact_match(float(key))
            if record is None:
                raise ReproError(
                    f"stored key {key!r} reported absent (cache bug)"
                )
    spent = dht.metrics.snapshot() - before
    n = len(probes)
    rates = {
        "hit": spent.cache_hits / n,
        "miss": spent.cache_misses / n,
        "stale": spent.cache_stale / n,
    }
    return spent.gets / n, rates


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Amortized exact-match cost vs workload skew, cache off/small/ample."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None

    arms: dict[str, int | None] = {
        "cache off": None,
        f"cache on (capacity {params['small_capacity']})": params[
            "small_capacity"
        ],
        f"cache on (capacity {_AMPLE_CAPACITY})": _AMPLE_CAPACITY,
    }
    cost: dict[str, list[float]] = {label: [] for label in arms}
    small_label = f"cache on (capacity {params['small_capacity']})"
    small_rates: dict[str, list[float]] = {"hit": [], "miss": [], "stale": []}
    for label, capacity in arms.items():
        for skew in _SKEWS:
            gets, rates = _arm(capacity, skew, params, seed)
            cost[label].append(gets)
            if label == small_label:
                for name in small_rates:
                    small_rates[name].append(rates[name])

    xs = list(_SKEWS)
    shared = {
        "scale": scale,
        "seed": seed,
        "theta_split": _THETA,
        "max_depth": _DEPTH,
        **params,
    }
    return [
        ExperimentResult(
            experiment_id="E23",
            title="Exact-match cost vs workload skew with leaf caching (extension)",
            x_label="zipf exponent",
            y_label="routed DHT-gets per exact match",
            params={**shared, "ample_capacity": _AMPLE_CAPACITY},
            series=[Series(label, xs, ys) for label, ys in cost.items()],
            notes=(
                "probes target stored keys and assert PRESENT; uncached "
                "baseline ~ log2(D/2); ample-capacity arm ~ 1 get once warm"
            ),
        ),
        ExperimentResult(
            experiment_id="E23b",
            title="Small-cache hit/miss/stale rates vs skew (extension)",
            x_label="zipf exponent",
            y_label="fraction of probes",
            params={**shared, "capacity": params["small_capacity"]},
            series=[
                Series(name, xs, ys) for name, ys in small_rates.items()
            ],
            notes="read-only after build, so stale stays 0 by construction",
        ),
    ]
