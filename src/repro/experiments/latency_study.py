"""E19 — translating parallel steps into simulated wall latency.

The paper measures latency in *parallel steps of DHT-lookups* precisely
because wall time depends on the deployment (footnote 5).  This
extension closes that gap for a concrete deployment model: each
DHT-lookup costs (overlay hops) x (per-hop latency drawn from the
lognormal wide-area model in :mod:`repro.sim.network`), and a query's
wall latency is the sum over its critical path — ``parallel_steps``
sequential lookups.

Outputs the latency distribution (median / p95) per range-query
algorithm, showing the step-count ordering of Fig. 10 carries over to
seconds under a realistic RTT model.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import IndexConfig
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    build_index,
    trial_rng,
)
from repro.sim.network import LatencyModel
from repro.workloads.datasets import make_keys
from repro.workloads.queries import span_ranges

__all__ = ["run"]

_SCALES = {
    "ci": {"size": 1 << 12, "n_queries": 60, "n_peers": 256},
    "paper": {"size": 1 << 15, "n_queries": 200, "n_peers": 1024},
}

_THETA = 100
_SPAN = 0.05


def _query_wall_latency(
    steps: int,
    hops_per_lookup: int,
    model: LatencyModel,
    rng: np.random.Generator,
) -> float:
    """Critical-path wall latency: ``steps`` sequential DHT-lookups, each
    ``hops_per_lookup`` sequential message hops."""
    return sum(
        model.sample(rng) for _ in range(steps * hops_per_lookup)
    )


def run(scale: str = "ci", seed: int = 0) -> list[ExperimentResult]:
    """Simulated wall-latency distributions for the three algorithms."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise ConfigurationError(f"unknown scale {scale!r}") from None
    config = IndexConfig(theta_split=_THETA, max_depth=20)
    model = LatencyModel(median=0.05, sigma=0.4)
    hops = max(1, math.ceil(math.log2(params["n_peers"])) // 2)

    rng = trial_rng(seed, "latency-study", 0)
    keys = make_keys("uniform", params["size"], rng)
    lht = build_index("lht", LocalDHT(64, 0), config, keys)
    pht = build_index("pht", LocalDHT(64, 0), config, keys)
    runners = {
        "lht": lht.range_query,
        "pht-seq": pht.range_query_sequential,
        "pht-par": pht.range_query_parallel,
    }

    queries = span_ranges(params["n_queries"], _SPAN, rng)
    medians: dict[str, float] = {}
    p95s: dict[str, float] = {}
    for name, runner in runners.items():
        latencies = []
        for query in queries:
            steps = runner(query.lo, query.hi).parallel_steps
            latencies.append(_query_wall_latency(steps, hops, model, rng))
        medians[name] = float(np.median(latencies))
        p95s[name] = float(np.percentile(latencies, 95))

    labels = list(runners)
    xs = [float(i) for i in range(len(labels))]
    return [
        ExperimentResult(
            experiment_id="E19",
            title="Simulated wall latency of range queries (extension)",
            x_label=f"algorithm index {list(enumerate(labels))}",
            y_label="seconds (simulated lognormal WAN)",
            params={
                "scale": scale,
                "seed": seed,
                "theta_split": _THETA,
                "span": _SPAN,
                "hops_per_lookup": hops,
                **params,
            },
            series=[
                Series("median", xs, [medians[l] for l in labels]),
                Series("p95", xs, [p95s[l] for l in labels]),
            ],
            notes="expect the Fig. 10 ordering to persist in seconds: "
            "lht < pht-par << pht-seq",
        )
    ]
