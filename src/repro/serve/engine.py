"""Deterministic open-loop serving engine over the simulated clock.

The asyncio and threaded front-ends (:mod:`repro.serve.frontend`) give
real concurrency but schedule at the mercy of the host; their numbers
are not gateable.  :class:`ServeEngine` runs the *same* batching core
(:func:`repro.serve.service.execute_batch`) under a discrete-event model
where everything — arrival instants, batch service times, queueing delay
— is priced in simulated seconds:

* requests arrive at the instants the seeded workload generator drew;
* one batch occupies the service for ``rounds * step_seconds`` — the
  cost model already used everywhere else: a parallel routed round is
  the latency unit;
* a request's latency is completion minus arrival, so p99 picks up the
  queueing delay behind slow batches, exactly what an open-loop system
  exposes.

The result is a pure function of ``(index state, arrivals, config)``:
the serving benchgate (``BENCH_serve.json``) banks its throughput, p99,
and routed-op counts, and the coalescing saving is a gated number
instead of a plot.

Admission control models a bounded system: at most
``max_in_flight + max_queue`` requests may be waiting when a new one
arrives; past that the arrival is rejected (``Status.REJECTED``,
:meth:`~repro.dht.metrics.MetricsRecorder.record_rejection`) without
routing anything — the deterministic mirror of the front-ends' typed
:class:`~repro.errors.OverloadError`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.index import LHTIndex
from repro.errors import ConfigurationError
from repro.serve.service import (
    Response,
    ServeConfig,
    Status,
    execute_batch,
)
from repro.serve.workload import Arrival
from repro.sim.clock import Clock

__all__ = ["ServeEngine", "ServeResult"]


@dataclass(slots=True)
class ServeResult:
    """Everything one engine run produced.

    Attributes:
        responses: One per arrival, in arrival order (rejections
            included, with ``Status.REJECTED`` and zero latency).
        executed_order: Arrival indices in the order the service
            actually executed them — replaying the requests serially in
            this order must reproduce identical answers and index state
            (``tests/test_serve.py`` pins it).
        batches: Batches executed.
        rounds: Total parallel routed rounds across all batches.
        routed_ops: Routed DHT operations charged while serving.
        coalesced_saved: Routed gets avoided by cross-request dedup.
        rejected: Arrivals refused by admission control.
        sim_seconds: Simulated time from first arrival to last
            completion.
        percentiles: p50/p90/p99 of completed-request latencies.
    """

    responses: list[Response]
    executed_order: list[int] = field(default_factory=list)
    batches: int = 0
    rounds: int = 0
    routed_ops: int = 0
    coalesced_saved: int = 0
    rejected: int = 0
    sim_seconds: float = 0.0
    percentiles: dict[str, float] = field(default_factory=dict)


class ServeEngine:
    """Discrete-event service: admit → batch → execute → advance.

    The engine alternates two phases.  While the service is idle it
    advances the clock to the next arrival and admits everything that
    has arrived.  It then forms one batch from the head of the waiting
    queue — a maximal run of point lookups up to ``max_in_flight``, or a
    single mutation (writes are barriers; see
    :func:`~repro.serve.service.execute_batch`) — executes it, advances
    the clock by the batch's service time, and admits the arrivals that
    landed meanwhile.  Head-of-line order is never reordered, which is
    what makes the executed order a serialization.
    """

    def __init__(
        self,
        index: LHTIndex,
        config: ServeConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.index = index
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else Clock()

    # ------------------------------------------------------------------

    def _admit(
        self,
        arrival: Arrival,
        pending: deque[Arrival],
        responses: list[Response | None],
        result: ServeResult,
    ) -> None:
        capacity = self.config.max_in_flight + self.config.max_queue
        if len(pending) >= capacity:
            responses[arrival.index] = Response(
                Status.REJECTED,
                error="admission control: in-flight window and queue full",
            )
            result.rejected += 1
            self.index.dht.metrics.record_rejection()
            return
        pending.append(arrival)
        self.index.dht.metrics.record_queue_depth(len(pending))

    @staticmethod
    def _next_batch(pending: deque[Arrival], max_in_flight: int) -> list[Arrival]:
        batch = [pending.popleft()]
        if batch[0].request.is_read:
            while (
                pending
                and pending[0].request.is_read
                and len(batch) < max_in_flight
            ):
                batch.append(pending.popleft())
        return batch

    # ------------------------------------------------------------------

    def run(self, arrivals: Sequence[Arrival]) -> ServeResult:
        """Serve an arrival sequence to completion."""
        for earlier, later in zip(arrivals, list(arrivals)[1:]):
            if later.time < earlier.time:
                raise ConfigurationError(
                    "arrivals must be sorted by time "
                    f"({later.time} < {earlier.time})"
                )
        metrics = self.index.dht.metrics
        responses: list[Response | None] = [None] * len(arrivals)
        result = ServeResult(responses=[])
        pending: deque[Arrival] = deque()
        upcoming = deque(arrivals)
        started = self.clock.now

        while upcoming or pending:
            if not pending:
                # Idle: jump to the next arrival instant.
                self.clock.advance_to(max(self.clock.now, upcoming[0].time))
            while upcoming and upcoming[0].time <= self.clock.now:
                self._admit(upcoming.popleft(), pending, responses, result)
            if not pending:
                continue

            batch = self._next_batch(pending, self.config.max_in_flight)
            executed = execute_batch(
                self.index, [a.request for a in batch], self.config
            )
            self.clock.advance_to(
                self.clock.now + executed.rounds * self.config.step_seconds
            )
            for arrival, response in zip(batch, executed.responses):
                response.latency = self.clock.now - arrival.time
                metrics.record_request(response.latency)
                responses[arrival.index] = response
                result.executed_order.append(arrival.index)
            result.batches += 1
            result.rounds += executed.rounds
            result.routed_ops += executed.routed_ops
            result.coalesced_saved += executed.coalesced_saved

        missing = [i for i, r in enumerate(responses) if r is None]
        if missing:  # defensive: every arrival must resolve exactly once
            raise ConfigurationError(
                f"arrivals never resolved: {missing[:5]}..."
            )
        result.responses = [r for r in responses if r is not None]
        result.sim_seconds = self.clock.now - started
        result.percentiles = metrics.latency_percentiles()
        return result
