"""Seeded open-loop workload generator for the serving layer.

Open-loop means arrivals do not wait for completions: request ``i``
arrives at a Poisson instant regardless of how backed up the service is,
which is what exposes queueing delay — the difference between p50 and
p99 that closed-loop (one-at-a-time) driving structurally cannot show.

Key skew reuses the E23 machinery
(:func:`repro.workloads.queries.zipf_rank_choice`): point lookups and
removes target stored keys with Zipf-over-rank popularity, so concurrent
sessions collide on hot keys — exactly the collisions the coalescer
turns into saved routed gets.  Inserts draw fresh uniform keys; range
queries pick a Zipf-hot lower bound and a fixed span.

Everything is a pure function of ``(keys, config, seed)``: the arrival
sequence is deterministic and the serving benchgate banks its counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.service import Request, RequestKind
from repro.sim.rng import derive_seed
from repro.workloads.queries import zipf_rank_choice

__all__ = ["Arrival", "WorkloadConfig", "generate_workload"]


@dataclass(frozen=True, slots=True)
class Arrival:
    """One request arriving at the service.

    Attributes:
        time: Simulated arrival instant (Poisson process).
        session: Originating client session id (round-robin over
            ``n_sessions``; front-ends use it to fan sessions out).
        index: Position in the generated sequence — responses are
            reported in this order.
        request: The request itself.
    """

    time: float
    session: int
    index: int
    request: Request


def _default_mix() -> dict[str, float]:
    return {"lookup": 0.76, "insert": 0.14, "remove": 0.06, "range": 0.04}


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Shape of one open-loop workload.

    Attributes:
        n_requests: Total requests to generate.
        rate: Mean arrival rate (requests per simulated second).
        skew: Zipf-over-rank exponent for stored-key popularity
            (0 = uniform).
        mix: Operation mix, weights over lookup/insert/remove/range
            (normalized; missing kinds mean weight 0).
        range_span: Span of generated range queries.
        n_sessions: Client sessions arrivals are attributed to.
    """

    n_requests: int = 512
    rate: float = 200.0
    skew: float = 1.1
    mix: dict[str, float] = field(default_factory=_default_mix)
    range_span: float = 0.05
    n_sessions: int = 8

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ConfigurationError(
                f"n_requests must be >= 0: {self.n_requests}"
            )
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be > 0: {self.rate}")
        if self.n_sessions < 1:
            raise ConfigurationError(
                f"n_sessions must be >= 1: {self.n_sessions}"
            )
        if not 0.0 < self.range_span <= 1.0:
            raise ConfigurationError(
                f"range_span must be in (0, 1]: {self.range_span}"
            )
        weights = [self.mix.get(k.value, 0.0) for k in RequestKind]
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError(f"invalid operation mix: {self.mix}")
        unknown = set(self.mix) - {k.value for k in RequestKind}
        if unknown:
            raise ConfigurationError(f"unknown mix kinds: {sorted(unknown)}")


def generate_workload(
    keys: Sequence[float],
    config: WorkloadConfig,
    seed: int = 0,
) -> list[Arrival]:
    """Generate a seeded open-loop arrival sequence over stored ``keys``.

    Independent derived streams per concern (arrivals / kinds / hot keys
    / fresh keys), so changing one knob never perturbs the others'
    draws — the same stability contract as the experiment harness.
    """
    n = config.n_requests
    if n == 0:
        return []
    arrival_rng = np.random.default_rng(derive_seed(seed, "serve:arrivals"))
    kind_rng = np.random.default_rng(derive_seed(seed, "serve:kinds"))
    hot_rng = np.random.default_rng(derive_seed(seed, "serve:hotkeys"))
    fresh_rng = np.random.default_rng(derive_seed(seed, "serve:freshkeys"))

    times = np.cumsum(arrival_rng.exponential(1.0 / config.rate, size=n))
    kinds = list(RequestKind)
    weights = np.asarray([config.mix.get(k.value, 0.0) for k in kinds])
    weights = weights / weights.sum()
    drawn = kind_rng.choice(len(kinds), size=n, p=weights)
    # One shared Zipf rank assignment for every stored-key draw: hot
    # keys are hot across lookups, removes, and range lower bounds.
    hot_keys = zipf_rank_choice(np.asarray(keys), config.skew, n, hot_rng)

    arrivals: list[Arrival] = []
    for i in range(n):
        kind = kinds[int(drawn[i])]
        if kind is RequestKind.INSERT:
            request = Request(kind, float(fresh_rng.random()), value=i)
        elif kind is RequestKind.RANGE:
            lo = min(float(hot_keys[i]), 1.0 - config.range_span)
            request = Request(kind, lo, hi=lo + config.range_span)
        else:  # lookup / remove target stored (possibly hot) keys
            request = Request(kind, float(hot_keys[i]))
        arrivals.append(
            Arrival(
                time=float(times[i]),
                session=i % config.n_sessions,
                index=i,
                request=request,
            )
        )
    return arrivals
