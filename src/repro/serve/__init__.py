"""The serving layer: concurrent front-ends over the LHT index.

Turns :class:`~repro.core.index.LHTIndex` into a service: many client
sessions submitting lookups, inserts, removes, and range queries
concurrently, with bounded admission (typed
:class:`~repro.errors.OverloadError` rejections), coalescing of
concurrent point lookups onto batched ``multi_get`` rounds, and
request-level metrics (latency percentiles, queue depth, rejection
counts) wired into the shared
:class:`~repro.dht.metrics.MetricsRecorder`.

Three entry points share one batching core
(:func:`~repro.serve.service.execute_batch`):

* :class:`~repro.serve.engine.ServeEngine` — deterministic open-loop
  discrete-event run; the one the serving benchgate measures;
* :class:`~repro.serve.frontend.AsyncFrontend` — asyncio sessions;
* :class:`~repro.serve.frontend.ThreadedFrontend` — thread sessions.

See ``docs/serving.md`` for the architecture and guarantees.
"""

from repro.serve.engine import ServeEngine, ServeResult
from repro.serve.frontend import AsyncFrontend, ThreadedFrontend
from repro.serve.service import (
    BatchResult,
    Request,
    RequestKind,
    Response,
    ServeConfig,
    Status,
    execute_batch,
)
from repro.serve.workload import Arrival, WorkloadConfig, generate_workload

__all__ = [
    "Arrival",
    "AsyncFrontend",
    "BatchResult",
    "Request",
    "RequestKind",
    "Response",
    "ServeConfig",
    "ServeEngine",
    "ServeResult",
    "Status",
    "ThreadedFrontend",
    "WorkloadConfig",
    "execute_batch",
    "generate_workload",
]
