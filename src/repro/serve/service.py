"""Request model, admission policy, and the coalescing batch executor.

The serving layer turns :class:`~repro.core.index.LHTIndex` from a
library driven by one synchronous client into a *service*: many client
sessions submit point lookups, inserts, removes, and range queries
concurrently, and one execution core drives the index safely.  This
module holds everything the three front-ends share:

* :class:`Request` / :class:`Response` — the service's wire-shaped
  request/reply pair (answers carry enough to compare byte-for-byte
  against direct index calls);
* :class:`ServeConfig` — admission-control bounds (in-flight window +
  waiting queue), the coalescing switch, and the simulated-latency
  model;
* :func:`execute_batch` — the heart of the layer: a maximal run of
  concurrent point lookups is executed as *lock-stepped* Alg. 2 probe
  plans (:func:`repro.core.lookup.lookup_plan`), each round's probe
  names deduplicated into one :meth:`~repro.dht.base.DHT.multi_get`.
  Because concurrent sessions share hot keys (and different keys share
  shallow name classes), the batched rounds issue strictly fewer routed
  gets than per-request sequential search — the saving the
  ``BENCH_serve.json`` gate banks — while answers stay byte-identical:
  both paths run the exact same search logic.

Mutations are never coalesced: a write acts as a barrier between read
runs, so the service's execution order is a *serialization* — replaying
the same requests serially in executed order reproduces the identical
index state and answers (``tests/test_serve.py`` pins this).

Deterministic-core rules apply (the ``serve`` package is hermetic by
lint rule LHT001/LHT007): no wall clock, no global randomness — time is
the simulated :class:`~repro.sim.clock.Clock` the front-ends advance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.bucket import Record
from repro.core.index import LHTIndex
from repro.core.lookup import lookup_plan
from repro.core.results import LookupResult
from repro.errors import ConfigurationError, DHTError, LookupError_

__all__ = [
    "BatchResult",
    "Request",
    "RequestKind",
    "Response",
    "ServeConfig",
    "Status",
    "execute_batch",
]


class RequestKind(enum.Enum):
    """Operations the service accepts."""

    LOOKUP = "lookup"
    INSERT = "insert"
    REMOVE = "remove"
    RANGE = "range"


class Status(enum.Enum):
    """Terminal states of a submitted request."""

    OK = "ok"
    ERROR = "error"  # typed DHT/lookup error surfaced as data
    REJECTED = "rejected"  # admission control; nothing was routed


@dataclass(frozen=True, slots=True)
class Request:
    """One client request.

    ``key`` is the point key (lookup/insert/remove) or the range lower
    bound; ``hi`` is the range upper bound; ``value`` rides along with
    inserts.
    """

    kind: RequestKind
    key: float
    value: Any = None
    hi: float | None = None

    def __post_init__(self) -> None:
        if self.kind is RequestKind.RANGE and self.hi is None:
            raise ConfigurationError("range request needs an upper bound")

    @property
    def is_read(self) -> bool:
        """Whether the request never mutates the index (coalescable)."""
        return self.kind is RequestKind.LOOKUP


@dataclass(slots=True)
class Response:
    """The service's answer to one request.

    ``answer`` is comparable against the direct index call: the found
    :class:`~repro.core.bucket.Record` (or ``None``) for lookups, the
    ``deleted`` flag for removes, the inserted leaf's bits for inserts,
    and the record tuple for ranges.  ``latency`` is simulated seconds
    from arrival to completion; ``dht_lookups`` the routed operations
    this request consumed (coalesced probes charge the whole batch, not
    one request — see :class:`BatchResult`).
    """

    status: Status
    answer: Any = None
    error: str | None = None
    latency: float = 0.0
    dht_lookups: int = 0


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Admission, coalescing, and latency-model parameters.

    Attributes:
        max_in_flight: Upper bound on requests executed concurrently
            (the size of one coalesced batch).
        max_queue: Upper bound on requests waiting for a slot; an
            arrival past it is rejected with
            :class:`~repro.errors.OverloadError`.
        coalesce: Batch concurrent point lookups onto ``multi_get``
            (off = every request runs its own sequential search; counts
            then match the direct arm exactly).
        step_seconds: Simulated duration of one parallel routed round —
            the latency unit everything else is priced in.
    """

    max_in_flight: int = 8
    max_queue: int = 64
    coalesce: bool = True
    step_seconds: float = 0.01

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1: {self.max_in_flight}"
            )
        if self.max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0: {self.max_queue}"
            )
        if self.step_seconds <= 0:
            raise ConfigurationError(
                f"step_seconds must be > 0: {self.step_seconds}"
            )


@dataclass(slots=True)
class BatchResult:
    """What one executed batch produced.

    Attributes:
        responses: One per request, in batch order (latency unset — the
            front-end stamps it, because queueing delay is its to know).
        rounds: Parallel routed rounds the batch took (its simulated
            service time is ``rounds * step_seconds``).
        routed_ops: Routed DHT operations charged while executing.
        coalesced_saved: Probe gets avoided by dedup across the batch.
    """

    responses: list[Response]
    rounds: int
    routed_ops: int
    coalesced_saved: int


def _finish_lookup(request: Request, result: LookupResult) -> Response:
    if result.bucket is None:
        # Alg. 2 failed to converge: inconsistent or unreachable index.
        return Response(
            Status.ERROR,
            error=f"lookup of {request.key} failed to converge",
            dht_lookups=result.dht_lookups,
        )
    record: Record | None = result.bucket.find(request.key)
    return Response(Status.OK, answer=record, dht_lookups=result.dht_lookups)


def _execute_reads(
    index: LHTIndex, requests: list[Request], coalesce: bool
) -> BatchResult:
    """Drive one probe plan per lookup, lock-stepped round by round.

    Each round collects every active plan's next probe name, issues the
    *unique* names as one ``multi_get``, and feeds the shared replies
    back — so two sessions probing the same name class pay one routed
    get between them.  With ``coalesce=False`` the same plans run but
    every probe is issued individually (the uncoalesced arm of the
    serving benchmark).
    """
    dht = index.dht
    before = dht.metrics.snapshot()
    plans = []
    responses: list[Response | None] = [None] * len(requests)
    for slot, request in enumerate(requests):
        plan = lookup_plan(index.config, request.key)
        try:
            name = next(plan)
        except StopIteration as stop:  # zero-probe degenerate plan
            responses[slot] = _finish_lookup(request, stop.value)
            continue
        plans.append((slot, plan, str(name)))

    rounds = 0
    saved = 0
    while plans:
        rounds += 1
        wanted = [name for _, _, name in plans]
        unique = list(dict.fromkeys(wanted))
        saved += len(wanted) - len(unique)
        if coalesce:
            try:
                values = dht.multi_get(unique)
            except DHTError as exc:
                # The round failed as a unit; every in-flight lookup in
                # this batch reports the typed error as data (LHT010).
                for slot, _plan, _name in plans:
                    responses[slot] = Response(Status.ERROR, error=str(exc))
                break
            by_name = dict(zip(unique, values))
        else:
            by_name = {}
        survivors = []
        for slot, plan, name in plans:
            try:
                if coalesce:
                    value = by_name[name]
                else:
                    value = dht.get(name)
                next_name = plan.send(value)
            except StopIteration as stop:
                responses[slot] = _finish_lookup(requests[slot], stop.value)
            except DHTError as exc:
                # Surfaced as data, never silently absorbed (LHT010).
                responses[slot] = Response(Status.ERROR, error=str(exc))
            else:
                survivors.append((slot, plan, str(next_name)))
        plans = survivors

    spent = dht.metrics.snapshot() - before
    dht.metrics.record_batch(saved if coalesce else 0)
    return BatchResult(
        responses=[r for r in responses if r is not None],
        rounds=max(rounds, 1),
        routed_ops=spent.dht_lookups,
        coalesced_saved=saved if coalesce else 0,
    )


def _execute_write(index: LHTIndex, request: Request) -> BatchResult:
    """Execute one mutation (or range query) serially via the index."""
    dht = index.dht
    before = dht.metrics.snapshot()
    try:
        if request.kind is RequestKind.INSERT:
            result = index.insert(request.key, request.value)
            response = Response(Status.OK, answer=result.leaf.bits)
        elif request.kind is RequestKind.REMOVE:
            deleted = index.delete(request.key).deleted
            response = Response(Status.OK, answer=deleted)
        elif request.kind is RequestKind.RANGE:
            hi = request.hi if request.hi is not None else request.key
            result = index.range_query(request.key, hi)
            response = Response(Status.OK, answer=tuple(result.records))
        else:  # pragma: no cover - dispatch guarded by execute_batch
            raise ConfigurationError(f"unexpected kind {request.kind}")
    except (DHTError, LookupError_) as exc:
        response = Response(Status.ERROR, error=str(exc))
    spent = dht.metrics.snapshot() - before
    response.dht_lookups = spent.dht_lookups
    dht.metrics.record_batch(0)
    # A mutation's service time: its routed traffic is sequential from
    # the client's perspective (lookup probes then the put), so bill one
    # round per routed operation, floor one.
    return BatchResult(
        responses=[response],
        rounds=max(spent.dht_lookups, 1),
        routed_ops=spent.dht_lookups,
        coalesced_saved=0,
    )


def execute_batch(
    index: LHTIndex, requests: list[Request], config: ServeConfig
) -> BatchResult:
    """Execute one admitted batch: either a run of reads or one write.

    The front-ends guarantee the shape (all reads, or exactly one
    non-read); this function enforces it, because violating it would
    let a mutation race a coalesced round.
    """
    if not requests:
        raise ConfigurationError("cannot execute an empty batch")
    if len(requests) > 1 and not all(r.is_read for r in requests):
        raise ConfigurationError(
            "a batch is either all reads or a single write"
        )
    if requests[0].is_read:
        return _execute_reads(index, requests, config.coalesce)
    return _execute_write(index, requests[0])
