"""Concurrent front-ends: many client sessions, one execution core.

Two adapters expose the serving layer to real concurrency primitives —
an asyncio event loop and a thread pool — while funnelling every request
through the same single-dispatcher discipline:

* clients *submit* concurrently; admission control either enqueues the
  request or raises :class:`~repro.errors.OverloadError` immediately
  (bounded in-flight window + waiting queue, nothing routed on
  rejection);
* exactly one dispatcher (an asyncio task / a daemon thread) drains the
  queue in batches — a maximal run of point lookups coalesced onto
  ``multi_get``, or one mutation as a barrier — so the
  :class:`~repro.core.index.LHTIndex` is only ever driven from one
  logical thread of control.  That single-dispatcher rule *is* the
  thread-safety story: the index and substrates need no locks because
  concurrency stops at the queue.

Time stays simulated (lint rule LHT001 applies to this package): each
batch advances the shared :class:`~repro.sim.clock.Clock` by
``rounds * step_seconds`` and latencies are clock deltas, so both
front-ends agree with :class:`~repro.serve.engine.ServeEngine` on the
cost model even though their interleavings are scheduler-dependent.
The executed order is recorded per front-end; whatever order the
scheduler produced, serial replay in that order must reproduce the
same answers (``tests/test_serve.py``).
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.index import LHTIndex
from repro.errors import ConfigurationError, OverloadError
from repro.serve.service import (
    Request,
    Response,
    ServeConfig,
    execute_batch,
)
from repro.sim.clock import Clock

__all__ = ["AsyncFrontend", "ThreadedFrontend"]


@dataclass(slots=True)
class _Pending:
    """One enqueued request and the rendezvous its submitter waits on."""

    request: Request
    arrival: float
    index: int
    waiter: Any  # asyncio.Future | threading.Event
    response: Response | None = None


class _FrontendCore:
    """State the two front-ends share: queue, admission, batch dispatch.

    Subclasses provide the synchronization (event loop vs locks); the
    core provides the policy, so admission and batching cannot drift
    between the async and threaded implementations.
    """

    def __init__(
        self,
        index: LHTIndex,
        config: ServeConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.index = index
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else Clock()
        self.executed_order: list[int] = []
        self._queue: deque[_Pending] = deque()
        self._in_flight = 0
        self._submitted = 0
        self._closed = False

    def _admit(self, request: Request, waiter: Any) -> _Pending:
        """Enqueue or reject; callers hold the front-end's mutual
        exclusion (the event loop / the lock)."""
        if self._closed:
            raise ConfigurationError("front-end is closed")
        capacity = self.config.max_in_flight + self.config.max_queue
        if self._in_flight + len(self._queue) >= capacity:
            self.index.dht.metrics.record_rejection()
            raise OverloadError(
                f"serving window full ({capacity} in flight or queued); "
                "back off and retry"
            )
        pending = _Pending(
            request=request,
            arrival=self.clock.now,
            index=self._submitted,
            waiter=waiter,
        )
        self._submitted += 1
        self._queue.append(pending)
        self.index.dht.metrics.record_queue_depth(len(self._queue))
        return pending

    def _take_batch(self) -> list[_Pending]:
        """Pop the next batch (callers hold the mutual exclusion)."""
        batch = [self._queue.popleft()]
        if batch[0].request.is_read:
            while (
                self._queue
                and self._queue[0].request.is_read
                and len(batch) < self.config.max_in_flight
            ):
                batch.append(self._queue.popleft())
        self._in_flight = len(batch)
        return batch

    def _execute(self, batch: list[_Pending]) -> None:
        """Run one batch and stamp responses (dispatcher only)."""
        result = execute_batch(
            self.index, [p.request for p in batch], self.config
        )
        self.clock.advance_to(
            self.clock.now + result.rounds * self.config.step_seconds
        )
        for pending, response in zip(batch, result.responses):
            response.latency = self.clock.now - pending.arrival
            self.index.dht.metrics.record_request(response.latency)
            pending.response = response
            self.executed_order.append(pending.index)
        self._in_flight = 0


class AsyncFrontend(_FrontendCore):
    """Asyncio front-end: sessions are coroutines, one drainer task.

    Usage::

        async with AsyncFrontend(index) as frontend:
            record = await frontend.submit(Request(RequestKind.LOOKUP, key))

    ``submit`` raises :class:`~repro.errors.OverloadError` synchronously
    when the window is full.  The drainer executes batches inline (the
    batching core is synchronous and fast at simulation scale) and
    yields to the loop between batches so submitters interleave.
    """

    def __init__(
        self,
        index: LHTIndex,
        config: ServeConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        super().__init__(index, config, clock)
        self._wakeup: asyncio.Event | None = None
        self._drainer: asyncio.Task[None] | None = None

    async def __aenter__(self) -> "AsyncFrontend":
        self._wakeup = asyncio.Event()
        self._drainer = asyncio.get_running_loop().create_task(self._drain())
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain outstanding requests, then stop the dispatcher."""
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._drainer is not None:
            await self._drainer
            self._drainer = None

    async def submit(self, request: Request) -> Response:
        """Submit one request; resolves when the service answers it."""
        if self._wakeup is None:
            raise ConfigurationError(
                "AsyncFrontend must be entered (async with) before submit"
            )
        future: asyncio.Future[Response] = (
            asyncio.get_running_loop().create_future()
        )
        self._admit(request, future)  # may raise OverloadError
        self._wakeup.set()
        return await future

    async def _drain(self) -> None:
        if self._wakeup is None:  # pragma: no cover - guarded by __aenter__
            raise ConfigurationError("drainer started before __aenter__")
        while True:
            if not self._queue:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            batch = self._take_batch()
            self._execute(batch)
            for pending in batch:
                if not pending.waiter.cancelled():
                    pending.waiter.set_result(pending.response)
            # Yield so submitters waiting on the loop get to run between
            # batches — this is where concurrent lookups pile into the
            # queue and the next batch coalesces them.
            await asyncio.sleep(0)


class ThreadedFrontend(_FrontendCore):
    """Thread-pool front-end: sessions are threads, one dispatcher.

    Usage::

        with ThreadedFrontend(index) as frontend:
            record = frontend.submit(Request(RequestKind.LOOKUP, key))

    ``submit`` blocks the calling thread until the service answers (or
    raises :class:`~repro.errors.OverloadError` immediately when the
    window is full).  All shared state is guarded by one lock; the
    dispatcher releases it while executing a batch, so submitters can
    enqueue — and admission can reject — concurrently with execution.
    """

    def __init__(
        self,
        index: LHTIndex,
        config: ServeConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        super().__init__(index, config, clock)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._dispatcher: threading.Thread | None = None

    def __enter__(self) -> "ThreadedFrontend":
        self._dispatcher = threading.Thread(
            target=self._drain, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drain outstanding requests, then stop the dispatcher."""
        with self._work:
            self._closed = True
            self._work.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None

    def submit(self, request: Request) -> Response:
        """Submit one request and block until the service answers."""
        if self._dispatcher is None:
            raise ConfigurationError(
                "ThreadedFrontend must be entered (with) before submit"
            )
        done = threading.Event()
        with self._work:
            pending = self._admit(request, done)  # may raise OverloadError
            self._work.notify_all()
        done.wait()
        if pending.response is None:  # pragma: no cover - defensive
            raise ConfigurationError("request completed without a response")
        return pending.response

    def _drain(self) -> None:
        while True:
            with self._work:
                while not self._queue and not self._closed:
                    self._work.wait()
                if not self._queue and self._closed:
                    return
                batch = self._take_batch()
            # Lock released: execution proceeds while submitters enqueue.
            self._execute(batch)
            for pending in batch:
                pending.waiter.set()
