"""Records and leaf buckets (paper §3.1, §3.3, Fig. 3a).

A *record* is the data unit: a distinct numeric data key ``δ ∈ [0, 1)``
plus an opaque payload.  A *leaf bucket* is the unit LHT distributes over
the DHT: the leaf's label (which doubles as the peer's summarized local
view of the whole partition tree) plus the record store.

Capacity accounting follows the paper exactly: a bucket of threshold
``θ_split`` has ``θ_split`` storage slots, one of which is occupied by the
leaf label itself (§9.2, the "extra storage of leaf label").  A bucket is
therefore *full* once it holds ``θ_split - 1`` records, and the measured
split fraction ``α`` counts slots, reproducing the paper's
``ᾱ = 1/2 + 1/(2θ)`` for uniform data.
"""

from __future__ import annotations

import bisect
import operator
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.interval import Range
from repro.core.label import Label
from repro.errors import KeyOutOfRangeError

__all__ = ["Record", "LeafBucket"]

#: Sort/bisect key for record stores.  Ordering by the raw float key is
#: identical to the dataclass ``order=True`` comparison (which compares
#: ``(key,)`` tuples) but skips the per-comparison tuple construction —
#: the dominant cost of sorted bulk loads at 2^20 keys.
RECORD_KEY = operator.attrgetter("key")


@dataclass(frozen=True, slots=True, order=True)
class Record:
    """A data record: a key in ``[0, 1)`` and an opaque payload.

    Records order by key so bucket stores can stay sorted; the payload is
    excluded from ordering and equality-by-order comparisons.
    """

    key: float
    value: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.key < 1.0:
            raise KeyOutOfRangeError(f"record key {self.key} outside [0, 1)")


class LeafBucket:
    """A leaf bucket: leaf label + sorted record store (paper Fig. 3a).

    The bucket is the atomic unit mapped onto the DHT.  Its label is the
    peer's entire local view of the partition tree ("local tree
    summarization", §3.3) — no other structural state is kept, which is
    what makes LHT maintenance-free beyond splits and merges.
    """

    __slots__ = ("_label", "_records")

    def __init__(self, label: Label, records: list[Record] | None = None) -> None:
        self._label = label
        self._records: list[Record] = (
            sorted(records, key=RECORD_KEY) if records else []
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def label(self) -> Label:
        """The leaf label ``λ``."""
        return self._label

    @label.setter
    def label(self, new_label: Label) -> None:
        """Relabel the bucket (used during splits/merges, Alg. 1)."""
        self._label = new_label

    @property
    def records(self) -> tuple[Record, ...]:
        """The records, sorted by key (read-only view)."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    @property
    def slot_count(self) -> int:
        """Occupied storage slots: the records plus one slot for the label.

        This is the paper's bucket "size" used in the α measurement
        (§9.2): each newly produced bucket spends one record slot on its
        leaf label.
        """
        return len(self._records) + 1

    def is_full(self, theta_split: int) -> bool:
        """Whether the bucket has no free slot under threshold ``θ_split``."""
        return self.slot_count >= theta_split

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------

    def add(self, record: Record) -> None:
        """Insert a record, keeping the store sorted by key.

        The record's key must fall in the leaf's interval; the index layer
        guarantees this by construction, and violating it indicates a
        routing bug, so it raises.
        """
        if not self._label.contains(record.key):
            raise KeyOutOfRangeError(
                f"key {record.key} outside leaf {self._label} interval "
                f"{self._label.interval}"
            )
        bisect.insort(self._records, record, key=RECORD_KEY)

    def remove(self, key: float) -> Record | None:
        """Remove and return one record with the given key, or ``None``."""
        idx = bisect.bisect_left(self._records, key, key=RECORD_KEY)
        if idx < len(self._records) and self._records[idx].key == key:
            return self._records.pop(idx)
        return None

    def find(self, key: float) -> Record | None:
        """Return one record with the given key, or ``None``."""
        idx = bisect.bisect_left(self._records, key, key=RECORD_KEY)
        if idx < len(self._records) and self._records[idx].key == key:
            return self._records[idx]
        return None

    def contains_key(self, key: float) -> bool:
        """Whether the leaf's *interval* covers the key (paper's
        "bucket contains δ" test in Alg. 2 — a geometric test, not a
        membership test)."""
        return self._label.contains(key)

    def records_in(self, rng: Range) -> list[Record]:
        """All records whose keys fall in the half-open query range.

        The store is sorted by key, so the range is one contiguous run:
        two bisections against the exact Fraction endpoints (float-vs-
        Fraction comparisons are exact) bound it without any per-record
        containment test.
        """
        lo = bisect.bisect_left(self._records, rng.lo, key=RECORD_KEY)
        hi = bisect.bisect_left(self._records, rng.hi, lo=lo, key=RECORD_KEY)
        return self._records[lo:hi]

    def min_record(self) -> Record | None:
        """The record with the smallest key, or ``None`` if empty."""
        return self._records[0] if self._records else None

    def max_record(self) -> Record | None:
        """The record with the largest key, or ``None`` if empty."""
        return self._records[-1] if self._records else None

    def take_records_in(self, rng: Range) -> list[Record]:
        """Remove and return all records in the range (used by splits)."""
        kept: list[Record] = []
        taken: list[Record] = []
        for record in self._records:
            (taken if rng.contains(record.key) else kept).append(record)
        self._records = kept
        return taken

    def extend(self, records: list[Record]) -> None:
        """Bulk-add records already known to lie in the leaf's interval."""
        for record in records:
            self.add(record)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LeafBucket({self._label}, n={len(self._records)})"
