"""Configuration for LHT indexes (and shared by the PHT baseline)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["IndexConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True, slots=True)
class IndexConfig:
    """Tunable parameters of an over-DHT tree index.

    Attributes:
        theta_split: The split threshold ``θ_split`` (paper §3.2): the number
            of storage slots per leaf bucket.  One slot is occupied by the
            leaf label, so a bucket splits when it already holds
            ``θ_split - 1`` records and another insert arrives.  The paper's
            experiments default to 100.
        max_depth: The a-priori maximum tree depth ``D`` (paper §5); lookup
            paths ``μ(δ, D)`` have ``D`` bits after the ``#``.  The paper's
            experiments use 20.
        merge_enabled: Whether deletions trigger the dual merge operation
            (paper §3.2's merge rule).  Disabled for pure-insertion
            experiments, matching the paper's workloads.
        merge_threshold: Merge two sibling leaves when their combined slot
            count falls below this value.  Defaults to ``θ_split // 2`` (set
            at construction when left as 0) to provide hysteresis against
            split/merge thrashing.
        sanitize: Run the runtime sanitizer
            (:class:`repro.devtools.sanitizer.IndexSanitizer`) after every
            mutating index operation.  Also switched on globally by the
            ``LHT_SANITIZE=1`` environment variable.
        cache_enabled: Front lookups with a client-side
            :class:`repro.cache.LeafCache` (see ``docs/performance.md``):
            a cache hit answers an exact-match with one *validated*
            DHT-get instead of the Alg. 2 binary search.  Off by default —
            the paper's cost figures are measured uncached.
        cache_capacity: Maximum leaf labels the cache retains (LRU
            eviction).  Each entry is one short bit string, so memory is
            negligible; the bound exists to model a constrained client.
    """

    theta_split: int = 100
    max_depth: int = 20
    merge_enabled: bool = False
    merge_threshold: int = 0
    sanitize: bool = False
    cache_enabled: bool = False
    cache_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.theta_split < 2:
            raise ConfigurationError(
                f"theta_split must be >= 2 (one slot is the label): {self.theta_split}"
            )
        if self.max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1: {self.max_depth}")
        if self.merge_threshold == 0:
            object.__setattr__(self, "merge_threshold", max(2, self.theta_split // 2))
        if not 2 <= self.merge_threshold <= self.theta_split:
            raise ConfigurationError(
                f"merge_threshold {self.merge_threshold} must lie in "
                f"[2, theta_split={self.theta_split}]"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError(
                f"cache_capacity must be >= 1: {self.cache_capacity}"
            )

    @property
    def record_capacity(self) -> int:
        """Records a bucket can hold before it is full (``θ_split - 1``)."""
        return self.theta_split - 1


#: The paper's default experimental configuration (θ=100, D=20).
DEFAULT_CONFIG = IndexConfig()
