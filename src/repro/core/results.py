"""Result and event types returned by LHT (and PHT) operations.

Every operation reports the paper's cost measures alongside its payload:

* ``dht_lookups`` — routed DHT operations consumed (bandwidth unit, §8.1);
* ``parallel_steps`` — longest chain of *sequential* DHT-lookups (the
  latency unit of §9.4: "paralleled steps of DHT lookups");
* ``records_moved`` — records shipped between peers by maintenance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.bucket import LeafBucket, Record
from repro.core.interval import Range
from repro.core.label import Label

__all__ = [
    "LookupResult",
    "MatchStatus",
    "ExactMatchResult",
    "InsertResult",
    "DeleteResult",
    "RangeQueryResult",
    "MinMaxResult",
    "SplitEvent",
    "MergeEvent",
]


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Outcome of an LHT-lookup (Alg. 2).

    Attributes:
        bucket: The leaf bucket covering the looked-up key (``None`` only
            on an inconsistent index).
        name: The DHT key the bucket is stored under, i.e. ``f_n(λ)`` —
            what Alg. 2 returns.
        dht_lookups: Number of DHT-gets the binary search consumed.
        probed: The DHT keys probed, in order (diagnostic).
    """

    bucket: LeafBucket | None
    name: Label | None
    dht_lookups: int
    probed: tuple[Label, ...] = ()

    @property
    def found(self) -> bool:
        """Whether the lookup converged on a bucket."""
        return self.bucket is not None

    @property
    def unreachable(self) -> bool:
        """Whether the lookup failed to converge.

        On a quiescent, fault-free index this is impossible (Alg. 2
        always terminates at the covering leaf), so non-convergence is
        *evidence of unreachability* — dropped gets bent the search, or
        the index is transiently inconsistent under churn.  It is never
        evidence of absence: a key's presence is only decidable from a
        converged bucket.
        """
        return self.bucket is None


class MatchStatus(enum.Enum):
    """Trichotomy of an exact-match outcome under possible faults.

    The distinction matters because Alg. 2 reads failed DHT-gets
    structurally: a lossy substrate can make a *present* key look absent
    unless non-convergence is reported separately from a genuine miss.
    """

    #: The lookup converged and the record was in its bucket.
    PRESENT = "present"
    #: The lookup converged on the covering leaf and the record is not
    #: there — *proven* absent (the covering bucket is the only place the
    #: key could legally be, by the partition invariant).
    ABSENT = "absent"
    #: The lookup did not converge; presence is undecidable.
    UNREACHABLE = "unreachable"


@dataclass(frozen=True, slots=True)
class ExactMatchResult:
    """Outcome of a fault-aware exact-match query.

    Unlike :meth:`~repro.core.index.LHTIndex.exact_match`, which raises
    on non-convergence, this result reports unreachability as data so
    degraded callers can distinguish "not stored" from "could not tell".
    """

    status: MatchStatus
    record: Record | None
    dht_lookups: int

    @property
    def found(self) -> bool:
        """Whether a record was returned (``status`` is PRESENT)."""
        return self.status is MatchStatus.PRESENT

    @property
    def decided(self) -> bool:
        """Whether presence was decided either way (not UNREACHABLE)."""
        return self.status is not MatchStatus.UNREACHABLE


@dataclass(frozen=True, slots=True)
class SplitEvent:
    """One leaf split (Alg. 1).

    ``alpha`` is the paper's split fraction: the remote bucket's *slot*
    count (records + 1 label slot) divided by ``θ_split``, measured on the
    split partition before the pending insert is placed (§9.2).
    """

    parent: Label
    local: Label
    remote: Label
    alpha: float
    records_moved: int
    dht_lookups: int


@dataclass(frozen=True, slots=True)
class MergeEvent:
    """One leaf merge (the dual of a split, §3.2 merge rule)."""

    survivor: Label
    absorbed: Label
    records_moved: int
    dht_lookups: int


@dataclass(frozen=True, slots=True)
class InsertResult:
    """Outcome of one insertion (§5, "Data Insertion")."""

    leaf: Label
    dht_lookups: int
    split: SplitEvent | None = None


@dataclass(frozen=True, slots=True)
class DeleteResult:
    """Outcome of one deletion."""

    deleted: bool
    dht_lookups: int
    merges: tuple[MergeEvent, ...] = ()


@dataclass(frozen=True, slots=True)
class RangeQueryResult:
    """Outcome of a range query (Algs. 3-4).

    Attributes:
        records: All matching records, sorted by key.
        dht_lookups: Total DHT operations (the §9.4 bandwidth measure).
        failed_lookups: How many of those were failed gets (the paper
            proves at most 1 per recursive sweep + 1 in general forwarding).
        parallel_steps: Length of the longest sequential DHT-lookup chain
            (the §9.4 latency measure).
        buckets_visited: Distinct leaf buckets that contributed records.
        complete: Whether every overlapping leaf was reached.  ``False``
            only in degraded mode, where unreachable subtrees are
            reported instead of raised; a ``True`` flag promises
            ``records`` is the full answer.
        unreachable: Leaf intervals (as ranges, clipped to the query)
            whose records could not be fetched.  Empty iff ``complete``.
    """

    records: tuple[Record, ...]
    dht_lookups: int
    failed_lookups: int
    parallel_steps: int
    buckets_visited: int
    #: Diagnostic: number of collection attempts.  For LHT this equals
    #: ``buckets_visited`` exactly when the range decomposition is
    #: disjoint (each leaf handed exactly one subrange) — a stronger
    #: property than deduplicated results, asserted by the test suite.
    collect_calls: int = 0
    complete: bool = True
    unreachable: tuple[Range, ...] = ()
    #: Number of batched ``multi_get`` rounds the executor issued — every
    #: get due at the same sequential step ships in one round, so this is
    #: the count of *round trips* a parallel client would pay.  At most
    #: ``parallel_steps`` + the degenerate case's sequential stretch; 0
    #: for an empty range.
    batch_rounds: int = 0

    @property
    def keys(self) -> list[float]:
        """Just the matching keys, sorted."""
        return [r.key for r in self.records]


@dataclass(frozen=True, slots=True)
class MinMaxResult:
    """Outcome of a min or max query (Theorem 3).

    ``complete=False`` (degraded mode only) means the inward walk from
    the extreme leaf was cut off by unreachable buckets: ``record`` may
    be ``None`` even though the index holds records, and ``unreachable``
    bounds where the true extremum could hide.
    """

    record: Record | None
    dht_lookups: int
    complete: bool = True
    unreachable: tuple[Range, ...] = ()


@dataclass(slots=True)
class CostLedger:
    """Mutable running totals of *maintenance* cost for an index.

    The paper's Fig. 7 counts only structure-adjustment traffic (splits
    and merges), not the insertion lookups themselves; this ledger keeps
    those separate from the substrate-level
    :class:`~repro.dht.metrics.MetricsRecorder` totals.
    """

    maintenance_lookups: int = 0
    maintenance_records_moved: int = 0
    splits: list[SplitEvent] = field(default_factory=list)
    merges: list[MergeEvent] = field(default_factory=list)

    @property
    def split_count(self) -> int:
        return len(self.splits)

    @property
    def average_alpha(self) -> float:
        """Mean split fraction ᾱ over all splits so far (§9.2)."""
        if not self.splits:
            return float("nan")
        return sum(e.alpha for e in self.splits) / len(self.splits)

    def record_split(self, event: SplitEvent) -> None:
        self.splits.append(event)
        self.maintenance_lookups += event.dht_lookups
        self.maintenance_records_moved += event.records_moved

    def record_merge(self, event: MergeEvent) -> None:
        self.merges.append(event)
        self.maintenance_lookups += event.dht_lookups
        self.maintenance_records_moved += event.records_moved
