"""Dyadic intervals over the unit data space ``[0, 1)``.

Every node of the LHT space-partition tree covers a *dyadic* interval: one of
the form ``[v / 2**k, (v + 1) / 2**k)``.  Representing intervals with the
integer pair ``(v, k)`` keeps all tree geometry exact — no floating-point
rounding can ever make two sibling intervals overlap or leave a gap — while
float views remain available for workload generation and reporting.

The module also provides :class:`Range`, the half-open query range ``[lo, hi)``
used by range queries, which is *not* restricted to dyadic endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import LabelError

__all__ = ["DyadicInterval", "Range", "UNIT_INTERVAL"]


@dataclass(frozen=True, slots=True)
class DyadicInterval:
    """The half-open dyadic interval ``[numerator / 2**level, (numerator+1) / 2**level)``.

    Attributes:
        numerator: Position of the interval within its level, in
            ``range(2**level)``.
        level: Number of binary subdivisions of ``[0, 1)``; level 0 is the
            whole unit interval.
    """

    numerator: int
    level: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise LabelError(f"negative interval level: {self.level}")
        if not 0 <= self.numerator < (1 << self.level):
            raise LabelError(
                f"numerator {self.numerator} out of range for level {self.level}"
            )

    @property
    def low(self) -> Fraction:
        """Exact inclusive lower endpoint."""
        return Fraction(self.numerator, 1 << self.level)

    @property
    def high(self) -> Fraction:
        """Exact exclusive upper endpoint."""
        return Fraction(self.numerator + 1, 1 << self.level)

    @property
    def low_float(self) -> float:
        """Lower endpoint as a float (exact for level <= 52)."""
        return self.numerator / (1 << self.level)

    @property
    def high_float(self) -> float:
        """Upper endpoint as a float (exact for level <= 52)."""
        return (self.numerator + 1) / (1 << self.level)

    @property
    def width(self) -> Fraction:
        """Exact interval width ``2**-level``."""
        return Fraction(1, 1 << self.level)

    def contains(self, key: float) -> bool:
        """Return whether ``key`` (a data key in [0, 1)) lies in this interval.

        Scaling by ``2**level`` only shifts a binary float's exponent
        (and is exact on Fractions), so the integer comparison below
        equals the Fraction-endpoint comparison without constructing
        any Fractions — this is the innermost test of every lookup.
        """
        scaled = key * (1 << self.level)
        return self.numerator <= scaled < self.numerator + 1

    def left_half(self) -> "DyadicInterval":
        """The lower/left dyadic child interval."""
        return DyadicInterval(self.numerator * 2, self.level + 1)

    def right_half(self) -> "DyadicInterval":
        """The upper/right dyadic child interval."""
        return DyadicInterval(self.numerator * 2 + 1, self.level + 1)

    @property
    def midpoint(self) -> Fraction:
        """Exact midpoint — the median split point of this interval."""
        return Fraction(self.numerator * 2 + 1, 1 << (self.level + 1))

    def encloses(self, other: "DyadicInterval") -> bool:
        """Return whether ``other`` is fully contained in this interval."""
        if other.level < self.level:
            return False
        shift = other.level - self.level
        return (other.numerator >> shift) == self.numerator

    def overlaps(self, rng: "Range") -> bool:
        """Return whether this interval intersects the query range ``rng``."""
        return self.low < rng.hi and rng.lo < self.high

    def covered_by(self, rng: "Range") -> bool:
        """Return whether this interval is fully inside the query range."""
        return rng.lo <= self.low and self.high <= rng.hi

    def to_range(self) -> "Range":
        """View this interval as a query :class:`Range`."""
        return Range(self.low, self.high)

    def __str__(self) -> str:  # pragma: no cover - repr helper
        return f"[{self.low_float:.6g}, {self.high_float:.6g})"


#: The whole data space ``[0, 1)``.
UNIT_INTERVAL = DyadicInterval(0, 0)


@dataclass(frozen=True, slots=True)
class Range:
    """A half-open query range ``[lo, hi)`` over the data space.

    Endpoints are stored as exact :class:`~fractions.Fraction` values so range
    decomposition during query forwarding never suffers rounding drift; the
    constructor accepts floats and converts them.
    """

    lo: Fraction
    hi: Fraction

    def __init__(self, lo: float | Fraction, hi: float | Fraction) -> None:
        object.__setattr__(self, "lo", Fraction(lo))
        object.__setattr__(self, "hi", Fraction(hi))
        if not 0 <= self.lo <= self.hi <= 1:
            raise LabelError(f"invalid query range [{float(self.lo)}, {float(self.hi)})")

    @property
    def span(self) -> Fraction:
        """Exact range width ``hi - lo``."""
        return self.hi - self.lo

    @property
    def is_empty(self) -> bool:
        """Whether the half-open range contains no keys."""
        return self.lo >= self.hi

    def contains(self, key: float) -> bool:
        """Return whether a data key falls inside ``[lo, hi)``."""
        key = Fraction(key)
        return self.lo <= key < self.hi

    def intersect(self, interval: DyadicInterval) -> "Range":
        """Clip this range to a dyadic interval."""
        return Range(max(self.lo, interval.low), min(self.hi, interval.high))

    def __str__(self) -> str:  # pragma: no cover - repr helper
        return f"[{float(self.lo):.6g}, {float(self.hi):.6g})"
