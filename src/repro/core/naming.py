"""The LHT naming function and its companions (paper Definitions 1-3).

These four pure functions over :class:`~repro.core.label.Label` are the
technical core of LHT:

* :func:`naming` — ``f_n`` (Def. 1): maps every leaf label bijectively to an
  internal-node label by truncating the trailing run of the final bit.  The
  result is the *DHT key* under which the leaf bucket is stored.
* :func:`next_naming` — ``f_nn`` (Def. 2): given a probed prefix ``x`` of the
  lookup path ``μ``, skips forward past all longer prefixes that share
  ``f_n(x)`` as their name (they need not be probed twice).
* :func:`right_neighbor` / :func:`left_neighbor` — ``f_rn`` / ``f_ln``
  (Def. 3): the nearest right/left *branch node*, used to sweep a range
  query across adjacent neighboring subtrees.

Also provided are the inverses of ``f_n`` (which leaf is stored under a
given internal-node name — Theorem 1's constructive content) and the LCA
computation used by the general range-forwarding algorithm (Alg. 4).
"""

from __future__ import annotations

from repro.core.label import Label, VIRTUAL_ROOT
from repro.errors import LabelError

__all__ = [
    "naming",
    "next_naming",
    "right_neighbor",
    "left_neighbor",
    "leaf_named_by",
    "rightmost_leaf_key",
    "leftmost_leaf_key",
    "lca_label",
]


def naming(label: Label) -> Label:
    """The naming function ``f_n`` (paper Definition 1).

    Truncates the trailing run of the label's final bit::

        f_n(#01100) = #011     f_n(#01011) = #010
        f_n(#01111) = #0       f_n(#0000)  = #      f_n(#0) = #

    For a leaf label the result is the label of a distinct internal node
    (Theorem 1 proves ``f_n`` is a bijection from leaves to internal nodes,
    the virtual root included), and it is the DHT key the leaf bucket is
    stored under.

    Raises:
        LabelError: if applied to the virtual root, which has no bits to
            truncate (the virtual root is never a leaf).
    """
    bits = label.bits
    if not bits:
        raise LabelError("f_n is undefined on the virtual root")
    last = bits[-1]
    return Label(bits.rstrip(last))


def next_naming(x: Label, mu: Label) -> Label:
    """The next-naming function ``f_nn(x, μ)`` (paper Definition 2).

    ``x`` must be a proper prefix of the lookup path ``μ``.  Returns the
    shortest prefix of ``μ`` that extends ``x`` and ends with a bit
    *different* from ``x``'s final bit.  All prefixes strictly between
    ``x`` and the result share the DHT name ``f_n(x)`` and therefore never
    need a second probe during the lookup binary search.

    Example::

        f_nn(#0011, #0011100) = #001110

    Raises:
        LabelError: if ``x`` is not a proper prefix of ``μ``, or if every
            remaining bit of ``μ`` equals ``x``'s final bit (no next name
            exists along this path).
    """
    if not x.is_proper_prefix_of(mu):
        raise LabelError(f"{x} is not a proper prefix of {mu}")
    last = x.last_bit if x.bits else "0"
    rest = mu.bits[len(x.bits):]
    for offset, bit in enumerate(rest):
        if bit != last:
            return Label(mu.bits[: len(x.bits) + offset + 1])
    raise LabelError(f"no next name: {mu} continues {x} with identical bits")


def right_neighbor(x: Label) -> Label:
    """The right-neighbor function ``f_rn`` (paper Definition 3).

    Returns the label of the nearest branch node to the right of ``x`` —
    the root of the adjacent subtree covering the interval immediately
    right of ``x``'s.  Nodes of the form ``#01*`` touch the right edge of
    the data space and are mapped to themselves.

    Implementation: strip the trailing run of ``1`` bits, then flip the
    exposed final ``0`` to ``1``::

        f_rn(#000) = #001      f_rn(#001) = #01      f_rn(#0111) = #0111
    """
    if x.on_rightmost_spine:
        return x
    trimmed = x.bits.rstrip("1")
    # ``trimmed`` ends with a 0 that is not the virtual-root edge, because
    # x is not on the rightmost spine.
    return Label(trimmed[:-1] + "1")


def left_neighbor(x: Label) -> Label:
    """The left-neighbor function ``f_ln`` (paper Definition 3).

    Mirror image of :func:`right_neighbor`: strip trailing ``0`` bits and
    flip the exposed final ``1`` to ``0``.  Nodes of the form ``#00*``
    touch the left edge of the data space and are mapped to themselves.
    """
    if x.on_leftmost_spine:
        return x
    trimmed = x.bits.rstrip("0")
    return Label(trimmed[:-1] + "0")


def leaf_named_by(omega: Label, leaf_depths: dict[Label, int] | None = None) -> str:
    """Describe which leaf the internal node ``omega`` names (Theorem 1).

    This is documentation-as-code for the bijection proof: the unique leaf
    stored under DHT key ``omega`` is

    * the *rightmost* leaf of ``omega``'s subtree (``omega`` + ``1…1``)
      when ``omega`` ends with ``0``;
    * the *leftmost* leaf of ``omega``'s subtree (``omega`` + ``0…0``)
      when ``omega`` ends with ``1`` or is the virtual root.

    The exact leaf depth depends on the live tree, so this returns the
    direction as a string (``"rightmost"`` or ``"leftmost"``); the query
    algorithms only ever need the direction.
    """
    del leaf_depths  # direction is independent of the live tree shape
    if omega.is_virtual_root or omega.last_bit == "1":
        return "leftmost"
    return "rightmost"


def rightmost_leaf_key(subtree: Label) -> Label:
    """DHT key of the rightmost leaf in the subtree rooted at ``subtree``.

    The rightmost leaf has label ``subtree`` + ``1…1``; stripping the
    trailing ``1`` run shows its name is ``f_n`` of the subtree label when
    the label ends with ``1``, and the subtree label itself when it ends
    with ``0``.  (If the subtree root is itself a leaf, the same key is
    correct — its bucket is stored under ``f_n`` of its own label, which
    this computes.)
    """
    if subtree.is_virtual_root:
        return naming(Label("0"))  # rightmost leaf of the whole tree -> #0's name
    if subtree.last_bit == "1":
        return naming(subtree)
    return subtree


def leftmost_leaf_key(subtree: Label) -> Label:
    """DHT key of the leftmost leaf in the subtree rooted at ``subtree``.

    Mirror of :func:`rightmost_leaf_key`: the leftmost leaf is ``subtree``
    + ``0…0``, named ``f_n(subtree)`` when the label ends with ``0`` (or is
    the virtual root), and ``subtree`` itself when it ends with ``1``.
    """
    if subtree.is_virtual_root or subtree.last_bit == "0":
        return naming(subtree) if not subtree.is_virtual_root else VIRTUAL_ROOT
    return subtree


def lca_label(lo_path: Label, hi_path: Label) -> Label:
    """Lowest common ancestor of two lookup paths (Alg. 4, line 1).

    Given the binary paths of a range's two bounds, returns the deepest
    label that is a prefix of both — the root of the smallest subtree whose
    interval contains the whole range.
    """
    a, b = lo_path.bits, hi_path.bits
    common = 0
    for x, y in zip(a, b):
        if x != y:
            break
        common += 1
    return Label(a[:common])
