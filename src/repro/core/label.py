"""Tree-node labels for the LHT space-partition tree (paper §3.2).

The space-partition tree is a binary tree with a *virtual root* labelled
``#`` above the regular root.  Every edge carries a bit — ``0`` towards a
left child, ``1`` towards a right child — and, as a special case, the edge
from the virtual root to the regular root carries ``0``.  A node's label is
``#`` followed by the bits on the path from the virtual root down to it, so
the regular root is ``#0`` and e.g. ``#0110`` is the right-left... path shown
in Fig. 2 of the paper.

A :class:`Label` is an immutable value object.  The paper's *length* of a
label (used by the lookup binary search, Alg. 2) counts the ``#`` character
plus the bits; it is exposed as :attr:`Label.length`.

Notation mapping to the paper:

==============================  =======================================
Paper                           This module
==============================  =======================================
``#`` (virtual root)            ``VIRTUAL_ROOT`` / ``Label("")``
``#0`` (regular root)           ``ROOT``
label ``λ`` / ``ω``             ``Label``
``λ``'s length                  ``Label.length``
interval covered by a node      ``Label.interval``
==============================  =======================================
"""

from __future__ import annotations

from typing import Iterator

from repro.core.interval import UNIT_INTERVAL, DyadicInterval
from repro.errors import LabelError

__all__ = ["Label", "VIRTUAL_ROOT", "ROOT"]

_VALID_BITS = frozenset("01")


class Label:
    """An immutable space-partition-tree node label.

    Args:
        bits: The bit string on the path from the virtual root, *excluding*
            the leading ``#`` character.  The empty string denotes the
            virtual root itself; any non-empty bit string must start with
            ``0`` (the virtual-root-to-root edge).

    Labels compare equal by bit string, hash accordingly, and order
    lexicographically by bit string (which, for labels of equal depth, is
    also the left-to-right order of the nodes in the tree).
    """

    __slots__ = ("_bits", "_interval")

    def __init__(self, bits: str) -> None:
        # str.strip("01") is empty iff every character is a valid bit —
        # one C-level scan instead of a set() build per constructed
        # label (lookups construct one label per probed length).
        if bits and (bits[0] != "0" or bits.strip("01")):
            raise LabelError(f"invalid label bits: {bits!r}")
        self._bits = bits
        self._interval: DyadicInterval | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Label":
        """Parse the paper's textual form, e.g. ``"#0110"`` or ``"#"``."""
        if not text.startswith("#"):
            raise LabelError(f"label text must start with '#': {text!r}")
        return cls(text[1:])

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def bits(self) -> str:
        """The bit string after the ``#`` (empty for the virtual root)."""
        return self._bits

    @property
    def is_virtual_root(self) -> bool:
        """Whether this is the virtual root ``#``."""
        return not self._bits

    @property
    def is_root(self) -> bool:
        """Whether this is the regular root ``#0``."""
        return self._bits == "0"

    @property
    def depth(self) -> int:
        """Number of bits, i.e. tree depth below the virtual root.

        The virtual root has depth 0 and the regular root depth 1.
        """
        return len(self._bits)

    @property
    def length(self) -> int:
        """The paper's label *length*: the ``#`` plus the bits.

        This is the quantity the lookup binary search (Alg. 2) iterates
        over; ``length == depth + 1``.
        """
        return len(self._bits) + 1

    @property
    def last_bit(self) -> str:
        """The final bit of the label.

        Raises:
            LabelError: for the virtual root, which has no bits.
        """
        if not self._bits:
            raise LabelError("virtual root has no last bit")
        return self._bits[-1]

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------

    def child(self, bit: str) -> "Label":
        """The child label obtained by appending one bit.

        The virtual root's only child is the regular root; asking for its
        right child (bit ``"1"``) raises.
        """
        if bit not in _VALID_BITS:
            raise LabelError(f"invalid bit: {bit!r}")
        if self.is_virtual_root and bit != "0":
            raise LabelError("the virtual root has no right child")
        return Label(self._bits + bit)

    @property
    def left_child(self) -> "Label":
        """The left child (``bit 0``)."""
        return self.child("0")

    @property
    def right_child(self) -> "Label":
        """The right child (``bit 1``)."""
        return self.child("1")

    @property
    def parent(self) -> "Label":
        """The parent label (the virtual root has none)."""
        if not self._bits:
            raise LabelError("virtual root has no parent")
        return Label(self._bits[:-1])

    @property
    def sibling(self) -> "Label":
        """The sibling label (same parent, flipped last bit).

        The regular root ``#0`` has no sibling because the virtual root has
        a single child.
        """
        if len(self._bits) < 2:
            raise LabelError(f"label {self} has no sibling")
        flipped = "1" if self._bits[-1] == "0" else "0"
        return Label(self._bits[:-1] + flipped)

    def is_prefix_of(self, other: "Label") -> bool:
        """Whether this label is an ancestor-or-self of ``other``."""
        return other._bits.startswith(self._bits)

    def is_proper_prefix_of(self, other: "Label") -> bool:
        """Whether this label is a strict ancestor of ``other``."""
        return len(self._bits) < len(other._bits) and other._bits.startswith(self._bits)

    def prefix(self, length: int) -> "Label":
        """The prefix of the given paper-style *length* (``#`` counted).

        ``label.prefix(label.length)`` is the label itself and
        ``label.prefix(1)`` is the virtual root.
        """
        if not 1 <= length <= self.length:
            raise LabelError(f"prefix length {length} out of range for {self}")
        return Label(self._bits[: length - 1])

    def ancestors(self) -> Iterator["Label"]:
        """Yield all proper ancestors, nearest (parent) first."""
        for end in range(len(self._bits) - 1, -1, -1):
            yield Label(self._bits[:end])

    def extend(self, bits: str) -> "Label":
        """Append several bits at once."""
        if bits.strip("01"):
            raise LabelError(f"invalid bits: {bits!r}")
        if self.is_virtual_root and bits and bits[0] != "0":
            raise LabelError("the virtual root has no right child")
        return Label(self._bits + bits)

    # ------------------------------------------------------------------
    # Spine predicates (used by the neighbor functions, Def. 3)
    # ------------------------------------------------------------------

    @property
    def on_leftmost_spine(self) -> bool:
        """Whether the label has the form ``#00*`` (or is ``#``).

        These nodes touch the left edge of the data space; they have no left
        neighbor.
        """
        return all(b == "0" for b in self._bits)

    @property
    def on_rightmost_spine(self) -> bool:
        """Whether the label has the form ``#01*`` (or is ``#``).

        These nodes touch the right edge of the data space; they have no
        right neighbor.
        """
        return all(b == "1" for b in self._bits[1:])

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def interval(self) -> DyadicInterval:
        """The dyadic interval this node covers.

        The virtual root and the regular root both cover ``[0, 1)``; below
        the root each bit halves the interval (``0`` keeps the left half).

        Cached in a slot (not ``cached_property``, which would force a
        per-instance ``__dict__`` back onto this hot value object).
        """
        cached = self._interval
        if cached is None:
            space_bits = self._bits[1:]  # leading 0 is the virtual-root edge
            if not space_bits:
                cached = UNIT_INTERVAL
            else:
                cached = DyadicInterval(int(space_bits, 2), len(space_bits))
            self._interval = cached
        return cached

    def contains(self, key: float) -> bool:
        """Whether the data key lies in this node's interval."""
        return self.interval.contains(key)

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Label) and self._bits == other._bits

    def __lt__(self, other: "Label") -> bool:
        return self._bits < other._bits

    def __le__(self, other: "Label") -> bool:
        return self._bits <= other._bits

    def __hash__(self) -> int:
        return hash(("Label", self._bits))

    def __str__(self) -> str:
        return "#" + self._bits

    def __repr__(self) -> str:
        return f"Label({str(self)!r})"


#: The virtual root ``#`` (paper §3.2, the "double-root" property).
VIRTUAL_ROOT = Label("")

#: The regular root ``#0``, covering the whole data space.
ROOT = Label("0")
