"""ASCII rendering of the space-partition tree (debugging aid).

Renders the live distributed tree from the DHT's oracle view, annotating
each leaf with its record count, storage key (``f_n``), and interval —
the quickest way to see Theorem 1 and the local-tree structure at work::

    #  (virtual root)
    └─ #0
       ├─ #00 ········· leaf  n=37   key=#    [0, 0.5)
       └─ #01
          ├─ #010 ····· leaf  n=12   key=#01  [0.5, 0.75)
          └─ #011 ····· leaf  n=25   key=#0   [0.75, 1)
"""

from __future__ import annotations

from repro.core.label import Label, ROOT, VIRTUAL_ROOT
from repro.core.naming import naming
from repro.core.stats import IndexInspector
from repro.dht.base import DHT

__all__ = ["render_tree", "render_leaf_strip"]


def render_tree(dht: DHT, max_depth: int | None = None) -> str:
    """Render the whole partition tree as indented ASCII."""
    buckets = IndexInspector(dht).buckets()
    leaves = {bucket.label: bucket for bucket in buckets.values()}
    lines = ["#  (virtual root)"]

    def visit(label: Label, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        child_prefix = prefix + ("   " if is_last else "│  ")
        if label in leaves:
            bucket = leaves[label]
            interval = label.interval
            pad = "·" * max(1, 12 - len(str(label)))
            lines.append(
                f"{prefix}{connector}{label} {pad} leaf  "
                f"n={len(bucket):<5d} key={naming(label)!s:<8s} "
                f"[{interval.low_float:g}, {interval.high_float:g})"
            )
            return
        lines.append(f"{prefix}{connector}{label}")
        if max_depth is not None and label.depth >= max_depth:
            lines.append(f"{child_prefix}└─ …")
            return
        visit(label.left_child, child_prefix, is_last=False)
        visit(label.right_child, child_prefix, is_last=True)

    visit(ROOT, "", is_last=True)
    return "\n".join(lines)


def render_leaf_strip(dht: DHT, width: int = 72) -> str:
    """Render leaf occupancy as a one-line strip over [0, 1).

    Each column shows the record count (as a digit-ish glyph) of the leaf
    covering that slice of the key space — a quick view of how the median
    partition adapted to the data distribution.
    """
    buckets = IndexInspector(dht).buckets()
    leaves = sorted(
        (bucket for bucket in buckets.values()),
        key=lambda b: b.label.interval.low,
    )
    if not leaves:
        return "(empty)"
    peak = max(len(b) for b in leaves) or 1
    glyphs = " .:-=+*#%@"
    columns = []
    for col in range(width):
        point = (col + 0.5) / width
        leaf = next(
            (b for b in leaves if b.label.contains(point)), leaves[-1]
        )
        level = int(len(leaf) / peak * (len(glyphs) - 1))
        columns.append(glyphs[level])
    scale = f"0{' ' * (width - 2)}1"
    return "".join(columns) + "\n" + scale


# Re-export VIRTUAL_ROOT so callers can render a caption without an
# extra import; it is part of this module's documented surface.
_ = VIRTUAL_ROOT
