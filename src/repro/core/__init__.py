"""LHT core: labels, naming functions, buckets, and the distributed index.

This package is the paper's primary contribution (§3-§7); see
:class:`repro.core.index.LHTIndex` for the assembled system.
"""

from repro.core.bucket import LeafBucket, Record
from repro.core.config import DEFAULT_CONFIG, IndexConfig
from repro.core.index import LHTIndex
from repro.core.interval import DyadicInterval, Range, UNIT_INTERVAL
from repro.core.keys import gamma_lengths, key_bits, label_for_key, mu_path
from repro.core.label import Label, ROOT, VIRTUAL_ROOT
from repro.core.lookup import lht_lookup, lht_lookup_linear
from repro.core.minmax import max_query, min_query
from repro.core.naming import (
    lca_label,
    left_neighbor,
    leftmost_leaf_key,
    naming,
    next_naming,
    right_neighbor,
    rightmost_leaf_key,
)
from repro.core.range_query import RangeQueryExecutor, compute_lca
from repro.core.scan import KnnResult, knn_query, scan_buckets, scan_records
from repro.core.serialize import (
    bucket_from_dict,
    bucket_to_dict,
    dumps,
    loads,
    record_from_dict,
    record_to_dict,
)
from repro.core.results import (
    CostLedger,
    DeleteResult,
    ExactMatchResult,
    InsertResult,
    LookupResult,
    MatchStatus,
    MergeEvent,
    MinMaxResult,
    RangeQueryResult,
    SplitEvent,
)
from repro.core.stats import IndexInspector, IndexStats
from repro.core.tree import ReferenceTree

__all__ = [
    "LeafBucket",
    "Record",
    "DEFAULT_CONFIG",
    "IndexConfig",
    "LHTIndex",
    "DyadicInterval",
    "Range",
    "UNIT_INTERVAL",
    "gamma_lengths",
    "key_bits",
    "label_for_key",
    "mu_path",
    "Label",
    "ROOT",
    "VIRTUAL_ROOT",
    "lht_lookup",
    "lht_lookup_linear",
    "max_query",
    "min_query",
    "lca_label",
    "left_neighbor",
    "leftmost_leaf_key",
    "naming",
    "next_naming",
    "right_neighbor",
    "rightmost_leaf_key",
    "RangeQueryExecutor",
    "compute_lca",
    "KnnResult",
    "knn_query",
    "scan_buckets",
    "scan_records",
    "bucket_from_dict",
    "bucket_to_dict",
    "dumps",
    "loads",
    "record_from_dict",
    "record_to_dict",
    "CostLedger",
    "DeleteResult",
    "ExactMatchResult",
    "InsertResult",
    "LookupResult",
    "MatchStatus",
    "MergeEvent",
    "MinMaxResult",
    "RangeQueryResult",
    "SplitEvent",
    "IndexInspector",
    "IndexStats",
    "ReferenceTree",
]
