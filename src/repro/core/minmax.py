"""Min/max queries (paper §7, Theorem 3).

The naming function places the leftmost leaf (label ``#00*``) under DHT
key ``#`` and the rightmost leaf (``#01*``) under ``#0``, so the global
minimum and maximum keys are each one DHT-lookup away — regardless of the
tree's size or shape.

Two practical extensions beyond the paper's statement:

* a single-leaf tree has its only leaf ``#0`` stored under ``#``, so a max
  query's lookup of ``#0`` fails and is repaired with one lookup of ``#``;
* when deletions leave the extreme bucket empty, the query walks inward
  across neighboring trees (one lookup each) until it finds a record.

**Degraded mode** (``degraded=True``): a lossy substrate can drop the
bootstrap get or cut off the inward walk.  Instead of raising, the query
then returns ``complete=False`` with an ``unreachable`` interval bounding
where the true extremum could hide — everything from the blocked point
outward to the extreme edge the walk started from.
"""

from __future__ import annotations

from repro.core.bucket import LeafBucket
from repro.core.config import IndexConfig
from repro.core.interval import Range
from repro.core.label import Label, ROOT, VIRTUAL_ROOT
from repro.core.naming import left_neighbor, naming, right_neighbor
from repro.core.results import MinMaxResult
from repro.dht.base import DHT
from repro.errors import DHTError, LookupError_

__all__ = ["min_query", "max_query"]


def min_query(
    dht: DHT, config: IndexConfig, degraded: bool = False
) -> MinMaxResult:
    """Return the record with the smallest key (1 DHT-lookup, Theorem 3)."""
    bucket = _get(dht, VIRTUAL_ROOT, degraded)
    lookups = 1
    if bucket is None:
        if degraded:
            return _blocked(dht, Range(0.0, 1.0), lookups)
        raise LookupError_("no leaf stored under '#': index not bootstrapped")
    return _scan(dht, config, bucket, lookups, want_min=True, degraded=degraded)


def max_query(
    dht: DHT, config: IndexConfig, degraded: bool = False
) -> MinMaxResult:
    """Return the record with the largest key (1 DHT-lookup, Theorem 3)."""
    bucket = _get(dht, ROOT, degraded)
    lookups = 1
    if bucket is None:
        # Single-leaf tree: the only leaf #0 lives under f_n(#0) = '#'.
        bucket = _get(dht, VIRTUAL_ROOT, degraded)
        lookups += 1
        if bucket is None:
            if degraded:
                return _blocked(dht, Range(0.0, 1.0), lookups)
            raise LookupError_("no leaf stored under '#': index not bootstrapped")
    return _scan(dht, config, bucket, lookups, want_min=False, degraded=degraded)


def _get(dht: DHT, label: Label, degraded: bool) -> LeafBucket | None:
    """One DHT get, absorbing typed substrate errors in degraded mode."""
    try:
        return dht.get(str(label))
    except DHTError:
        if not degraded:
            raise
        return None


def _blocked(dht: DHT, unreachable: Range, lookups: int) -> MinMaxResult:
    """Build the degraded 'walk cut off' result and count it in metrics."""
    dht.metrics.record_degraded()
    return MinMaxResult(
        None, lookups, complete=False, unreachable=(unreachable,)
    )


def _scan(
    dht: DHT,
    config: IndexConfig,
    bucket: LeafBucket,
    lookups: int,
    want_min: bool,
    degraded: bool = False,
) -> MinMaxResult:
    """Walk inward from an extreme bucket until a record is found."""
    for _ in range(2 ** config.max_depth):  # hard bound: one step per leaf
        record = bucket.min_record() if want_min else bucket.max_record()
        if record is not None:
            return MinMaxResult(record, lookups)
        label = bucket.label
        at_edge = (
            label.on_rightmost_spine if want_min else label.on_leftmost_spine
        )
        if at_edge:
            return MinMaxResult(None, lookups)  # the index is entirely empty
        beta = right_neighbor(label) if want_min else left_neighbor(label)
        # The near-edge leaf of the neighboring tree is stored under β
        # itself; if β is a leaf, repair via f_n(β) (cf. Alg. 3).
        nxt = _get(dht, beta, degraded)
        lookups += 1
        if nxt is None:
            nxt = _get(dht, naming(beta), degraded)
            lookups += 1
            if nxt is None:
                if degraded:
                    # The walk is cut off at β: the true extremum lies
                    # somewhere from β's near edge out to the extreme
                    # edge already scanned empty.
                    inv = beta.interval
                    unreachable = (
                        Range(inv.low, 1.0) if want_min else Range(0.0, inv.high)
                    )
                    return _blocked(dht, unreachable, lookups)
                raise LookupError_(f"cannot reach neighboring tree {beta}")
        bucket = nxt
    raise LookupError_("min/max scan did not terminate")
