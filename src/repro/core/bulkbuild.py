"""Sorted bulk-build planning: the client-side fast path (§5, Theorem 2).

Incremental ``bulk_load`` pushes records one at a time through the split
path, so building an index re-moves about half a bucket on every split
— exactly the maintenance cost the paper prices in Theorem 2.  For an
*initial load* none of that traffic is necessary: the client can sort
the input once, replay the split schedule entirely in memory, and ship
each final bucket with a single routed put.

One subtlety keeps this honest.  The final partition is *almost* a
function of the key set alone, but not quite: a node created by a split
inherits ``c₀`` records, and it splits on the first arrival once it
holds ``max(c₀ + 1, θ) `` slots — so in the corner where all ``θ`` slots
of a parent land in one child (``c₀ = θ``) and no later key ever arrives
there, insertion *order* decides whether that child has split yet.  The
fast path therefore canonicalizes: it sorts the input and replays the
incremental algorithm's exact placement rules in sorted order.  The
contract, enforced by ``tests/test_bulkbuild.py``, is

    ``fast(items)  ≡  incremental(sorted(items))``   (byte-identical state)

and query answers are identical to *any* insertion order, because every
order yields a valid partition holding the same record multiset.

The planner is shared by :class:`repro.core.index.LHTIndex` and the PHT
baseline: both schemes split a full leaf at the midpoint of its dyadic
interval and never cascade (at most one split per insertion, children
may be left overfull), so the replay recurrence is identical — only the
commit step (which DHT keys receive the final buckets) differs.

Deterministic-core rules apply (``repro.devtools.lint`` LHT001/LHT002):
this module touches no wall clock and no randomness.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping

from repro.core.bucket import RECORD_KEY, LeafBucket, Record
from repro.core.config import IndexConfig
from repro.core.keys import key_bits
from repro.core.label import Label
from repro.core.naming import naming
from repro.errors import LookupError_

__all__ = ["BulkPlan", "leaf_put_items", "normalize_items", "plan_bulk_load"]


def normalize_items(
    items: Iterable[float | tuple[float, Any]],
) -> list[Record]:
    """Materialize bulk-load input as records sorted ascending by key.

    The sort is stable, so records with equal keys keep their input
    order — the same relative order ``bisect.insort`` preserves when the
    incremental path appends an equal key after its duplicates.
    """
    records = [
        Record(*item) if isinstance(item, tuple) else Record(item)
        for item in items
    ]
    # Record orders by key alone (payload excluded); sorting on the raw
    # float key is the same stable order without a ``(key,)`` tuple
    # built per comparison — the hottest line of a 2^20-key build.
    records.sort(key=RECORD_KEY)
    return records


@dataclass(slots=True)
class BulkPlan:
    """The final partition a sorted replay produces.

    Attributes:
        leaves: Final leaf partition — bits string to its sorted records.
        changed: Leaves that differ from the pre-load state (new labels,
            or pre-existing leaves that absorbed records); each needs
            exactly one put.  Untouched pre-existing leaves are absent.
        split_bits: Leaves consumed by replay splits, in split order —
            the nodes that just became internal.
        inserted: Number of records placed.
    """

    leaves: dict[str, list[Record]]
    changed: set[str]
    split_bits: tuple[str, ...]
    inserted: int


def plan_bulk_load(
    existing: Mapping[str, list[Record]],
    records: list[Record],
    config: IndexConfig,
) -> BulkPlan:
    """Replay sorted insertion client-side and return the final partition.

    Args:
        existing: Current leaf partition (bits -> record list).  The
            lists are consumed as working state — pass copies, never the
            live bucket stores.
        records: New records, pre-sorted by :func:`normalize_items`.
        config: Supplies ``θ_split`` and the depth cap ``D``.

    The placement rules mirror ``LHTIndex._place`` exactly: a record
    walks to its covering leaf; if the leaf is full (``records + 1 ≥ θ``)
    and above the depth cap it splits once at its interval midpoint, the
    record then lands in the covering child; children are never re-split
    for the same record.
    """
    theta = config.theta_split
    max_depth = config.max_depth
    leaves: dict[str, list[Record]] = {
        bits: list(recs) for bits, recs in existing.items()
    }
    changed: set[str] = set()
    split_bits: list[str] = []
    # Sorted keys revisit the same leaf ~θ/2 times in a row, so the
    # covering-leaf walk (a per-record bit-string build pre-PR) only
    # needs to run when a record exits the current leaf's interval.
    # The interval is tracked as the integer pair (cur_num, cur_level):
    # ``cur_num <= key * 2**cur_level < cur_num + 1`` is the exact
    # containment test (scaling a float by a power of two only shifts
    # its exponent), identical to ``path.startswith(bits)``.
    current: str | None = None
    cur_num = cur_level = 0

    for record in records:
        key = record.key
        if current is None or not cur_num <= key * (1 << cur_level) < cur_num + 1:
            path = "0" + key_bits(key, max_depth - 1)
            current = next(
                (
                    path[:end]
                    for end in range(1, len(path) + 1)
                    if path[:end] in leaves
                ),
                None,
            )
            if current is None:
                raise LookupError_(f"no known leaf covers {key}")
            cur_level = len(current) - 1
            cur_num = int(current, 2)
            changed.add(current)
        bits = current
        store = leaves[bits]
        if len(store) + 1 >= theta and len(bits) < max_depth:
            # Midpoint split (Alg. 1): the right child's lower endpoint
            # is the cut; the store is sorted, so one bisection splits it.
            # A dyadic boundary with level <= 52 has numerator < 2**52,
            # so the float quotient is exact and the bisection compares
            # float-to-float; deeper trees fall back to exact Fractions.
            child_level = cur_level + 1
            child_num = 2 * cur_num + 1
            boundary: float | Fraction = (
                child_num / (1 << child_level)
                if child_level <= 52
                else Fraction(child_num, 1 << child_level)
            )
            cut = bisect.bisect_left(store, boundary, key=RECORD_KEY)
            del leaves[bits]
            left, right = bits + "0", bits + "1"
            leaves[left] = store[:cut]
            leaves[right] = store[cut:]
            changed.discard(bits)
            changed.update((left, right))
            split_bits.append(bits)
            if key >= boundary:
                bits, cur_num = right, child_num
            else:
                bits, cur_num = left, 2 * cur_num
            cur_level = child_level
            current = bits
            store = leaves[bits]
        # Ascending replay appends in the common case; pre-existing
        # records with larger keys force a true insertion.
        if not store or store[-1].key <= key:
            store.append(record)
        else:
            bisect.insort(store, record, key=RECORD_KEY)

    return BulkPlan(
        leaves=leaves,
        changed=changed,
        split_bits=tuple(split_bits),
        inserted=len(records),
    )


def leaf_put_items(plan: BulkPlan) -> list[tuple[str, LeafBucket]]:
    """The routed write batch that commits a plan: one ``(DHT key,
    bucket)`` item per changed final leaf, in sorted-bits order.

    The batch feeds :meth:`~repro.dht.base.DHT.multi_put` — one parallel
    round, one charged put per leaf.  Every retired leaf name ``f_n(ω)``
    re-names a leaf created by the replay (Theorem 1's chains are
    suffix-closed), so these puts overwrite all stale keys: no removes
    are needed.
    """
    return [
        (str(naming(Label(bits))), LeafBucket(Label(bits), plan.leaves[bits]))
        for bits in sorted(plan.changed)
    ]
