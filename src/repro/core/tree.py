"""Centralized reference space-partition tree (paper §3.2, Fig. 2).

This is *not* part of the distributed system: it is a single-process oracle
that applies the paper's structural rules directly (median space partition,
split threshold, optional merge rule).  The test suite replays every
workload against both this oracle and the distributed index and asserts
that the distributed leaf buckets match the oracle exactly — which checks
the naming function, the split protocol and the lookup algorithms all at
once.

It also serves as executable documentation of the four structural
properties in §3.2: double-root, fullness, record storage, and the
median space-partition strategy.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.config import IndexConfig
from repro.core.keys import label_for_key
from repro.core.label import Label, ROOT, VIRTUAL_ROOT
from repro.core.naming import naming
from repro.errors import DepthExceededError, ReproError

__all__ = ["ReferenceTree"]


class ReferenceTree:
    """Oracle implementation of the LHT space-partition tree.

    Maintains the set of leaf labels and the multiset of record keys per
    leaf.  Splits follow the paper: a leaf's interval is always cut at its
    median regardless of the data, and an insertion causes at most one
    split (§5, "to avoid the cascading split").
    """

    def __init__(self, config: IndexConfig | None = None) -> None:
        self.config = config or IndexConfig()
        self._leaves: dict[Label, list[float]] = {ROOT: []}
        self.split_count = 0
        self.merge_count = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def leaf_labels(self) -> list[Label]:
        """All leaf labels in left-to-right (in-order) tree order."""
        return sorted(self._leaves, key=lambda lab: (lab.interval.low, lab.depth))

    @property
    def size(self) -> int:
        """Total number of records stored."""
        return sum(len(keys) for keys in self._leaves.values())

    @property
    def depth(self) -> int:
        """Depth (in bits) of the deepest leaf."""
        return max(label.depth for label in self._leaves)

    def leaf_for(self, key: float) -> Label:
        """The unique leaf whose interval contains ``key``."""
        label = ROOT
        while label not in self._leaves:
            if label.depth > self.config.max_depth + 1:
                raise ReproError(f"inconsistent tree: no leaf on path of {key}")
            label = label_for_key(key, label.depth + 1)
        return label

    def keys_in_leaf(self, label: Label) -> list[float]:
        """Sorted record keys stored in a leaf."""
        return sorted(self._leaves[label])

    def keys_in_range(self, lo: float, hi: float) -> list[float]:
        """All stored keys in ``[lo, hi)`` (brute-force oracle answer)."""
        return sorted(
            k for keys in self._leaves.values() for k in keys if lo <= k < hi
        )

    def all_keys(self) -> list[float]:
        """Every stored key, sorted."""
        return self.keys_in_range(0.0, 1.0)

    def internal_labels(self) -> set[Label]:
        """All internal-node labels, the virtual root included.

        Derived from the leaf set: every proper prefix of a leaf label is an
        internal node.
        """
        internals: set[Label] = {VIRTUAL_ROOT}
        for leaf in self._leaves:
            internals.update(leaf.ancestors())
        return internals

    def __contains__(self, key: float) -> bool:
        return key in self._leaves[self.leaf_for(key)]

    def __iter__(self) -> Iterator[Label]:
        return iter(self.leaf_labels)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key: float) -> Label:
        """Insert a record key, splitting at most once; returns its leaf."""
        label = self.leaf_for(key)
        if len(self._leaves[label]) + 1 >= self.config.theta_split:
            label = self._split(label, key)
        self._leaves[label].append(key)
        return label

    def delete(self, key: float) -> bool:
        """Delete one record with the key; merge siblings if enabled."""
        label = self.leaf_for(key)
        keys = self._leaves[label]
        if key not in keys:
            return False
        keys.remove(key)
        if self.config.merge_enabled:
            self._maybe_merge(label)
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _split(self, label: Label, pending_key: float) -> Label:
        """Split a full leaf at its interval median; return the pending
        key's new leaf."""
        if label.depth + 1 > self.config.max_depth:
            raise DepthExceededError(
                f"split of {label} would exceed max depth {self.config.max_depth}"
            )
        keys = self._leaves.pop(label)
        mid = label.interval.midpoint
        left, right = label.left_child, label.right_child
        self._leaves[left] = [k for k in keys if k < mid]
        self._leaves[right] = [k for k in keys if k >= mid]
        self.split_count += 1
        return left if pending_key < mid else right

    def _maybe_merge(self, label: Label) -> None:
        """Merge a leaf with its sibling when both are leaves and small."""
        while label.depth >= 2:
            sibling = label.sibling
            if sibling not in self._leaves:
                return
            combined = len(self._leaves[label]) + len(self._leaves[sibling])
            # +1: the merged bucket spends one slot on its label.
            if combined + 1 >= self.config.merge_threshold:
                return
            parent = label.parent
            merged = self._leaves.pop(label) + self._leaves.pop(sibling)
            self._leaves[parent] = merged
            self.merge_count += 1
            label = parent

    # ------------------------------------------------------------------
    # Invariants (paper §3.2 structural properties + Theorem 1)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every structural property of the paper; raise on violation.

        Checks:
        1. *Fullness*: every internal node (except the virtual root) has
           exactly two children present in the tree.
        2. *Partition*: leaf intervals tile ``[0, 1)`` exactly.
        3. *Double-root counting*: #leaves == #internal nodes (virtual root
           included).
        4. *Theorem 1*: the naming function is a bijection from leaf labels
           to internal-node labels.
        5. *Record storage*: every key lies in its leaf's interval.
        """
        leaves = set(self._leaves)
        internals = self.internal_labels()

        for node in internals - {VIRTUAL_ROOT}:
            for child in (node.left_child, node.right_child):
                if child not in leaves and child not in internals:
                    raise ReproError(f"fullness violated: {node} misses child {child}")

        ordered = self.leaf_labels
        cursor = ordered[0].interval.low
        if cursor != 0:
            raise ReproError("leftmost leaf does not start at 0")
        for leaf in ordered:
            if leaf.interval.low != cursor:
                raise ReproError(f"gap/overlap before leaf {leaf}")
            cursor = leaf.interval.high
        if cursor != 1:
            raise ReproError("rightmost leaf does not end at 1")

        if len(leaves) != len(internals):
            raise ReproError(
                f"double-root count violated: {len(leaves)} leaves vs "
                f"{len(internals)} internal nodes"
            )

        names = {naming(leaf) for leaf in leaves}
        if names != internals:
            raise ReproError("Theorem 1 violated: f_n(leaves) != internal nodes")

        for leaf, keys in self._leaves.items():
            for key in keys:
                if not leaf.contains(key):
                    raise ReproError(f"key {key} outside its leaf {leaf}")
