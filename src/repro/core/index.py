"""The LHT index: the paper's contribution, assembled (§3-§7).

:class:`LHTIndex` is a client of any generic DHT (:class:`repro.dht.base.DHT`).
It stores leaf buckets under the DHT keys produced by the naming function
``f_n`` and implements:

* ``insert`` / ``delete`` — LHT-lookup + a DHT-put towards the bucket name
  (§5), with leaf splitting (Alg. 1) and its dual merging (§3.2);
* ``lookup`` / ``exact_match`` — Alg. 2;
* ``range_query`` — Algs. 3-4 (§6);
* ``min_query`` / ``max_query`` — Theorem 3 (§7);
* ``bulk_load`` — a loader that keeps a client-side mirror of the leaf
  label set so index *construction* skips per-record routed lookups.
  Maintenance costs (split puts, moved records) are charged identically
  to ``insert``; only the insertion's own lookup traffic is elided.  The
  maintenance experiments (Figs. 6-7) measure exactly the maintenance
  ledger, so bulk loading reproduces the paper's numbers at a fraction of
  the wall-clock.

Cost accounting: substrate-level totals live in ``index.dht.metrics``;
maintenance-only totals (the paper's Fig. 7 measure) live in
``index.ledger``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing-only import (lazy at runtime)
    from repro.core.scan import KnnResult

from repro.cache import LeafCache, cached_lookup
from repro.core.bucket import LeafBucket, Record
from repro.core.bulkbuild import leaf_put_items, normalize_items, plan_bulk_load
from repro.core.config import IndexConfig
from repro.core.interval import Range
from repro.core.keys import key_bits
from repro.core.label import Label, ROOT
from repro.core.lookup import lht_lookup, lookup_plan
from repro.core.minmax import max_query, min_query
from repro.core.naming import naming
from repro.core.range_query import RangeQueryExecutor
from repro.core.results import (
    CostLedger,
    DeleteResult,
    ExactMatchResult,
    InsertResult,
    LookupResult,
    MatchStatus,
    MergeEvent,
    MinMaxResult,
    RangeQueryResult,
    SplitEvent,
)
from repro.dht.base import DHT
from repro.dht.replicated import replica_layer
from repro.errors import DHTError, LookupError_

__all__ = ["LHTIndex"]


class LHTIndex:
    """A Low-maintenance Hash Tree over a generic DHT.

    Args:
        dht: Any substrate implementing the put/get interface.
        config: Split threshold ``θ_split`` and maximum depth ``D``.

    Example::

        from repro import LHTIndex, LocalDHT

        index = LHTIndex(LocalDHT(n_peers=64))
        index.insert(0.42, "answer")
        index.range_query(0.4, 0.5).records
    """

    def __init__(self, dht: DHT, config: IndexConfig | None = None) -> None:
        self.dht = dht
        self.config = config or IndexConfig()
        self.ledger = CostLedger()
        self._range_executor = RangeQueryExecutor(dht, self.config)
        # Client-side mirror of the leaf-label set, keyed by bit string.
        # Kept exact because this index instance performs every split and
        # merge itself; used only by the bulk_load fast path.
        self._leaf_bits: set[str] = {ROOT.bits}
        # Optional leaf-label cache fronting every lookup (and therefore
        # exact_match/insert/delete, which all start with one).  Sits
        # *above* whatever substrate stack `dht` is — including a
        # ResilientDHT — so breaker-open errors reach it typed and never
        # mutate it (see repro.cache.lookup).
        self.cache: LeafCache | None = (
            LeafCache(self.config.cache_capacity)
            if self.config.cache_enabled
            else None
        )
        self.record_count = 0
        # Bootstrap: the root leaf lives under f_n(#0) = '#'.
        self.dht.put(str(naming(ROOT)), LeafBucket(ROOT))
        # Opt-in runtime sanitizer (LHT_SANITIZE=1 or config.sanitize):
        # re-validates Theorems 1-2 and the §3.2 structural properties
        # after every mutating operation.
        self._sanitizer = None
        # Imported lazily: repro.devtools imports repro.core for its
        # determinism harness, so a module-level import would cycle.
        from repro.devtools.sanitizer import IndexSanitizer, sanitizer_enabled

        if self.config.sanitize or sanitizer_enabled():
            self._sanitizer = IndexSanitizer(dht, self.config)

    # ------------------------------------------------------------------
    # Lookup and exact match (§5)
    # ------------------------------------------------------------------

    def lookup(self, key: float) -> LookupResult:
        """Locate the leaf bucket covering ``key`` (Alg. 2).

        With ``cache_enabled``, a cached covering label short-circuits
        the binary search to one validated DHT-get (see
        :func:`repro.cache.cached_lookup`); results are identical either
        way, only the cost differs.
        """
        if self.cache is not None:
            return cached_lookup(self.dht, self.config, self.cache, key)
        return lht_lookup(self.dht, self.config, key)

    def exact_match(self, key: float) -> tuple[Record | None, int]:
        """Return (record with exactly this key or None, DHT-lookups used)."""
        result = self.lookup(key)
        if result.bucket is None:
            raise LookupError_(f"lookup of {key} failed to converge")
        return result.bucket.find(key), result.dht_lookups

    def exact_match_checked(self, key: float) -> ExactMatchResult:
        """Fault-aware exact match: PRESENT / proven-ABSENT / UNREACHABLE.

        Unlike :meth:`exact_match`, non-convergence (dropped gets bending
        Alg. 2's search, routing errors, an open circuit breaker) is
        reported as :attr:`~repro.core.results.MatchStatus.UNREACHABLE`
        rather than raised or conflated with absence.  ABSENT is only
        claimed from a converged covering bucket — the one place the key
        could legally live, by the partition invariant.
        """
        try:
            result = self.lookup(key)
        except DHTError:
            rescued = self._replica_fallback(key, prior_lookups=0)
            if rescued is not None:
                return rescued
            self.dht.metrics.record_degraded()
            return ExactMatchResult(MatchStatus.UNREACHABLE, None, 0)
        if result.bucket is None:
            rescued = self._replica_fallback(
                key, prior_lookups=result.dht_lookups
            )
            if rescued is not None:
                return rescued
            self.dht.metrics.record_degraded()
            return ExactMatchResult(
                MatchStatus.UNREACHABLE, None, result.dht_lookups
            )
        record = result.bucket.find(key)
        status = MatchStatus.PRESENT if record is not None else MatchStatus.ABSENT
        return ExactMatchResult(status, record, result.dht_lookups)

    def _replica_fallback(
        self, key: float, prior_lookups: int
    ) -> ExactMatchResult | None:
        """Re-drive Alg. 2 through replica probes before giving up.

        When the routed lookup could not converge, a replication layer
        in the DHT stack (if any) still holds backup copies of every
        bucket on topology-derived peers.  This re-runs the same binary
        search with each DHT-get replaced by
        :meth:`~repro.dht.replicated.ReplicatedDHT.failover_get` —
        direct probes of all replica holders.  A convergent re-run is a
        rescued read (one ``replica_failovers`` tick, a definite
        PRESENT/ABSENT answer); a non-convergent one returns ``None``
        and the caller declares UNREACHABLE as before.  Stacks without
        replicas skip all of this, so the k=1 path is untouched.
        """
        replicas = replica_layer(self.dht)
        if replicas is None:
            return None
        plan = lookup_plan(self.config, key)
        try:
            name = next(plan)
            while True:
                name = plan.send(replicas.failover_get(str(name)))
        except StopIteration as stop:
            result: LookupResult = stop.value
        except DHTError:
            return None
        if result.bucket is None:
            return None
        self.dht.metrics.record_replica_failover()
        record = result.bucket.find(key)
        status = MatchStatus.PRESENT if record is not None else MatchStatus.ABSENT
        return ExactMatchResult(
            status, record, prior_lookups + result.dht_lookups
        )

    def __contains__(self, key: float) -> bool:
        record, _ = self.exact_match(key)
        return record is not None

    # ------------------------------------------------------------------
    # Insertion (§5) and deletion
    # ------------------------------------------------------------------

    def insert(self, key: float, value: Any = None) -> InsertResult:
        """Insert a record: LHT-lookup of ``δ``, then a DHT-put towards
        the bucket name ``κ`` (§5); at most one split per insertion."""
        result = self.lookup(key)
        if result.bucket is None or result.name is None:
            raise LookupError_(f"lookup of {key} failed to converge")
        lookups = result.dht_lookups
        # The record travels to the bucket's peer: one routed DHT-put.
        self.dht.put(str(result.name), result.bucket)
        lookups += 1
        leaf, split = self._place(result.bucket, Record(key, value))
        return InsertResult(leaf=leaf, dht_lookups=lookups, split=split)

    def delete(self, key: float) -> DeleteResult:
        """Delete the record with exactly this key, if present."""
        result = self.lookup(key)
        if result.bucket is None or result.name is None:
            raise LookupError_(f"lookup of {key} failed to converge")
        lookups = result.dht_lookups
        self.dht.put(str(result.name), result.bucket)  # routed delete message
        lookups += 1
        removed = result.bucket.remove(key)
        if removed is None:
            return DeleteResult(deleted=False, dht_lookups=lookups)
        self.dht.local_write(str(result.name), result.bucket)
        self.record_count -= 1
        merges: tuple[MergeEvent, ...] = ()
        if self.config.merge_enabled:
            merges = tuple(self._maybe_merge(result.bucket))
        sanitizer = getattr(self, "_sanitizer", None)
        if sanitizer is not None:
            for merge in merges:
                sanitizer.check_merge(merge)
            sanitizer.after_mutation("delete")
        return DeleteResult(deleted=True, dht_lookups=lookups, merges=merges)

    def bulk_load(
        self,
        items: Iterable[float | tuple[float, Any]],
        fast: bool = False,
    ) -> int:
        """Insert many records via the client-side leaf mirror.

        Accepts bare keys or ``(key, value)`` pairs; returns the number
        inserted.  See the class docs for the cost-accounting contract.

        With ``fast=True`` the input is sorted once and the final leaf
        partition is computed client-side (:mod:`repro.core.bulkbuild`):
        each new or modified final leaf ships with exactly one routed
        put, no intermediate splits or record moves ever touch the
        overlay, and the resulting DHT state is byte-identical to
        incrementally loading the *sorted* input.  The maintenance
        ledger and move counters stay at zero by design — use the
        default incremental path where Theorem-2 costs are the thing
        being measured (Figs. 6-7, Eq. 3).
        """
        if fast:
            return self._bulk_load_fast(items)
        count = 0
        for item in items:
            key, value = item if isinstance(item, tuple) else (item, None)
            bucket = self._local_find_bucket(key)
            self._place(bucket, Record(key, value))
            count += 1
        return count

    def _bulk_load_fast(
        self, items: Iterable[float | tuple[float, Any]]
    ) -> int:
        """Sorted client-side bulk build: one put per changed final leaf."""
        records = normalize_items(items)
        if not records:
            return 0
        existing: dict[str, list[Record]] = {}
        for bits in self._leaf_bits:
            label = Label(bits)
            bucket = self.dht.peek(str(naming(label)))
            if not isinstance(bucket, LeafBucket) or bucket.label != label:
                raise LookupError_(
                    f"leaf mirror out of sync at {label}: did another "
                    f"client mutate this index?"
                )
            existing[bits] = list(bucket.records)
        plan = plan_bulk_load(existing, records, self.config)
        # One batched routed round commits the whole plan: each changed
        # final leaf is charged one put (identical counts to sequential
        # puts), and the batch crosses the overlay as a single parallel
        # step (see DHT.multi_put).
        self.dht.multi_put(leaf_put_items(plan))
        self._leaf_bits = set(plan.leaves)
        self.record_count += plan.inserted
        if self.cache is not None:
            # Cached labels self-validate, so stale entries would only
            # cost detours — but a bulk rebuild invalidates en masse.
            self.cache.clear()
        sanitizer = getattr(self, "_sanitizer", None)
        if sanitizer is not None:
            sanitizer.after_mutation("bulk_load")
        return plan.inserted

    # ------------------------------------------------------------------
    # Queries (§6, §7)
    # ------------------------------------------------------------------

    def range_query(
        self, lo: float, hi: float, degraded: bool = False
    ) -> RangeQueryResult:
        """All records with keys in ``[lo, hi)`` (Algs. 3-4).

        With ``degraded=True``, unreachable subtrees yield an incomplete
        result (``complete=False`` + their intervals) instead of an
        exception — never silently partial data.
        """
        return self._range_executor.run(Range(lo, hi), degraded=degraded)

    def min_query(self, degraded: bool = False) -> MinMaxResult:
        """The record with the smallest key (Theorem 3)."""
        return min_query(self.dht, self.config, degraded=degraded)

    def max_query(self, degraded: bool = False) -> MinMaxResult:
        """The record with the largest key (Theorem 3)."""
        return max_query(self.dht, self.config, degraded=degraded)

    def scan(self) -> "Iterator[Record]":
        """Iterate every record in ascending key order (one DHT-lookup
        per leaf; see :mod:`repro.core.scan`)."""
        from repro.core.scan import scan_records

        return scan_records(self.dht, self.config)

    def knn_query(self, key: float, k: int) -> "KnnResult":
        """The ``k`` records with keys nearest to ``key``
        (:func:`repro.core.scan.knn_query`)."""
        from repro.core.scan import knn_query

        return knn_query(self.dht, self.config, key, k)

    # ------------------------------------------------------------------
    # Maintenance: split (Alg. 1) and merge (its dual)
    # ------------------------------------------------------------------

    def _place(
        self, bucket: LeafBucket, record: Record
    ) -> tuple[Label, SplitEvent | None]:
        """Place a record that has arrived at its bucket, splitting once
        if the bucket is full (§5: at most one split per insertion).

        Persistence follows Alg. 1: the remote child travels with one
        routed DHT-put (the pending record rides along when it belongs
        there); the local bucket is written back to the holding peer's
        disk (`local_write`, no overlay traffic).
        """
        event = None
        if bucket.is_full(self.config.theta_split) and (
            bucket.label.depth < self.config.max_depth
        ):
            event, remote_bucket = self._split(bucket)
            target = (
                remote_bucket
                if remote_bucket.label.contains(record.key)
                else bucket
            )
            target.add(record)
            # Alg. 1 line 11: one routed put ships the remote bucket.
            self.dht.put(str(event.parent), remote_bucket)
            # Alg. 1 line 10: the local child is a local disk write.
            self.dht.local_write(str(naming(bucket.label)), bucket)
        else:
            target = bucket
            target.add(record)
            self.dht.local_write(str(naming(bucket.label)), bucket)
        self.record_count += 1
        sanitizer = getattr(self, "_sanitizer", None)
        if sanitizer is not None:
            if event is not None:
                sanitizer.check_split(event)
            sanitizer.after_mutation("insert")
        return target.label, event

    def _split(self, bucket: LeafBucket) -> tuple[SplitEvent, LeafBucket]:
        """Split a full leaf (Alg. 1) — pure state change.

        By Theorem 2 one child keeps the parent's DHT name — it stays on
        the same peer, relabelled in place — and only the other child
        moves.  The caller performs the routed put of the remote bucket
        (so the pending record can ride along) and the local write-back.
        """
        parent = bucket.label
        if parent.last_bit == "1":
            remote_label, local_label = parent.left_child, parent.right_child
        else:
            remote_label, local_label = parent.right_child, parent.left_child

        moved = bucket.take_records_in(remote_label.interval.to_range())
        # α is measured on the split partition, before the pending insert
        # is placed (§9.2): remote records + the remote bucket's label slot.
        alpha = (len(moved) + 1) / self.config.theta_split
        bucket.label = local_label
        remote_bucket = LeafBucket(remote_label, moved)
        self.dht.metrics.record_moved_records(len(moved))

        event = SplitEvent(
            parent=parent,
            local=local_label,
            remote=remote_label,
            alpha=alpha,
            records_moved=len(moved),
            dht_lookups=1,
        )
        self.ledger.record_split(event)
        self._leaf_bits.discard(parent.bits)
        self._leaf_bits.add(local_label.bits)
        self._leaf_bits.add(remote_label.bits)
        if self.cache is not None:
            self.cache.on_split(event)
        return event, remote_bucket

    def _maybe_merge(self, bucket: LeafBucket) -> list[MergeEvent]:
        """Merge with the sibling while both are small leaves (§3.2).

        The merge is the split's dual (§8.2): the child named ``f_n(λ)``
        absorbs the child named ``λ`` (one routed get to fetch the
        sibling, one routed remove to retire its key), and the survivor is
        relabelled to the parent *in place* — its DHT key is unchanged.
        """
        events: list[MergeEvent] = []
        while bucket.label.depth >= 2:
            parent = bucket.label.parent
            sibling_label = bucket.label.sibling
            # Which child keeps the parent's storage key?  The one whose
            # own name equals f_n(parent) (Theorem 2's "local leaf").
            local_is_us = naming(bucket.label) == naming(parent)
            remote_key = parent if local_is_us else naming(parent)
            peer = self.dht.get(str(remote_key))
            lookups = 1
            if not isinstance(peer, LeafBucket) or peer.label != sibling_label:
                break  # the sibling subtree is not a single leaf
            combined = len(bucket) + len(peer) + 1
            if combined >= self.config.merge_threshold:
                break

            if local_is_us:
                survivor, absorbed, absorbed_key = bucket, peer, parent
            else:
                survivor, absorbed, absorbed_key = peer, bucket, parent
            moved = len(absorbed)
            survivor.label = parent
            survivor.extend(list(absorbed.records))
            # The survivor's storage key is unchanged (f_n of the local
            # child equals f_n of the parent): a local disk write.
            self.dht.local_write(str(naming(parent)), survivor)
            self.dht.remove(str(absorbed_key))
            lookups += 1
            self.dht.metrics.record_moved_records(moved)

            event = MergeEvent(
                survivor=parent,
                absorbed=absorbed.label,
                records_moved=moved,
                dht_lookups=lookups,
            )
            self.ledger.record_merge(event)
            events.append(event)
            self._leaf_bits.discard(parent.left_child.bits)
            self._leaf_bits.discard(parent.right_child.bits)
            self._leaf_bits.add(parent.bits)
            if self.cache is not None:
                self.cache.on_merge(event)
            bucket = survivor
        return events

    # ------------------------------------------------------------------
    # Client-side fast path
    # ------------------------------------------------------------------

    def _local_find_bucket(self, key: float) -> LeafBucket:
        """Find the covering bucket via the client-side leaf mirror
        (no routed lookups; used by :meth:`bulk_load`)."""
        path = "0" + key_bits(key, self.config.max_depth - 1)
        for end in range(1, len(path) + 1):
            bits = path[:end]
            if bits in self._leaf_bits:
                label = Label(bits)
                bucket = self.dht.peek(str(naming(label)))
                if isinstance(bucket, LeafBucket) and bucket.label == label:
                    return bucket
                raise LookupError_(
                    f"leaf mirror out of sync at {label}: did another "
                    f"client mutate this index?"
                )
        raise LookupError_(f"no known leaf covers {key}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.record_count

    @property
    def leaf_count(self) -> int:
        """Number of leaf buckets (client-mirror view)."""
        return len(self._leaf_bits)

    @property
    def depth(self) -> int:
        """Depth in bits of the deepest leaf (client-mirror view)."""
        return max(len(bits) for bits in self._leaf_bits)

    def leaf_labels(self) -> list[Label]:
        """All leaf labels in left-to-right order (client-mirror view)."""
        return sorted(
            (Label(bits) for bits in self._leaf_bits),
            key=lambda lab: (lab.interval.low, lab.depth),
        )
