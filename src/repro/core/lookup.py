"""LHT-lookup: binary search over named prefix classes (paper Alg. 2, §5).

Given a data key ``δ``, the target leaf label is some prefix of the path
``μ(δ, D)``.  A naive search would probe every candidate length; LHT
observes that all prefixes between ``f_n(x)`` and ``x`` share the DHT name
``f_n(x)``, so one probe rules out the whole class.  The candidate set
collapses from ``D`` labels to ``≈ D/2`` distinct names and the binary
search needs only ``log(D/2)`` DHT-gets — the paper's headline lookup
saving over PHT's ``log D``.

Probe outcomes steer the search:

* **failed get** — ``f_n(x)`` is not an internal node, so the leaf lies at
  or above it: shrink the upper bound to ``f_n(x)``'s length (not
  ``mid - 1``: the lengths in between share the probed name).
* **bucket covers δ** — found.
* **bucket does not cover δ** — the leaf lies strictly below; skip ahead
  to ``f_nn(x, μ)`` (Def. 2), the next prefix with a *new* name.
"""

from __future__ import annotations

from typing import Any, Generator, cast

from repro.core.bucket import LeafBucket
from repro.core.config import IndexConfig
from repro.core.keys import mu_path
from repro.core.label import Label
from repro.core.naming import naming, next_naming
from repro.core.results import LookupResult
from repro.dht.base import DHT
from repro.errors import LabelError

__all__ = ["lht_lookup", "lht_lookup_linear", "lookup_plan"]


def lookup_plan(
    config: IndexConfig, key: float
) -> Generator[Label, Any, LookupResult]:
    """Alg. 2 as a *probe plan*: the search logic with the I/O peeled off.

    A generator that yields the next name to probe (``f_n`` of a
    candidate prefix) and receives the fetched value via ``send``; it
    returns the final :class:`LookupResult` through ``StopIteration``.
    :func:`lht_lookup` drives one plan with sequential ``dht.get`` calls;
    the serving layer's coalescer (:mod:`repro.serve`) drives *many*
    plans in lock-step, merging each round's probes into one
    :meth:`~repro.dht.base.DHT.multi_get` — both paths execute this
    exact search, so their answers cannot diverge.
    """
    mu = mu_path(key, config.max_depth)
    shorter = 2
    longer = config.max_depth + 1
    lookups = 0
    probed: list[Label] = []

    while shorter <= longer:
        mid = (shorter + longer) // 2
        x = mu.prefix(mid)
        name = naming(x)
        bucket = yield name
        lookups += 1
        probed.append(name)
        if bucket is None:
            # f_n(x) is not internal: the leaf is at or above it.  All
            # lengths in (f_n(x).length, mid] share this name — skip them.
            longer = name.length
        elif isinstance(bucket, LeafBucket) and bucket.contains_key(key):
            return LookupResult(bucket, name, lookups, tuple(probed))
        else:
            # The probed name is internal; the leaf lies strictly below.
            # Skip to the next prefix of μ with a different name.
            try:
                shorter = next_naming(x, mu).length
            except LabelError:
                # μ continues with identical bits past x — only possible if
                # the index is inconsistent (see module docs); give up.
                break

    return LookupResult(None, None, lookups, tuple(probed))


def lht_lookup(dht: DHT, config: IndexConfig, key: float) -> LookupResult:
    """Locate the leaf bucket whose interval covers ``key`` (Alg. 2).

    Returns a :class:`LookupResult` whose ``name`` is ``f_n(λ(δ))`` — the
    DHT key of the covering bucket — and whose ``dht_lookups`` counts the
    binary-search probes.  A ``None`` bucket indicates an inconsistent
    index (unreachable in a quiescent system; possible transiently under
    churn).
    """
    plan = lookup_plan(config, key)
    try:
        name = next(plan)
        while True:
            name = plan.send(dht.get(str(name)))
    except StopIteration as stop:
        return cast(LookupResult, stop.value)


def lht_lookup_linear(dht: DHT, config: IndexConfig, key: float) -> LookupResult:
    """Top-down linear lookup — the ablation baseline for Alg. 2.

    Starts at the root's name class and descends one *name class* per
    probe (``x ← f_nn(x, μ)``), so it needs as many DHT-gets as there are
    name classes above the target leaf — ``O(D/2)`` worst case versus the
    binary search's ``O(log(D/2))``.  Every probe hits an existing
    internal node, so no get can fail on a consistent index.

    The ablation bench (``benchmarks/bench_ablation_lookup.py``) compares
    the two, quantifying how much of LHT's lookup saving comes from the
    binary search versus the name-class collapse itself.
    """
    mu = mu_path(key, config.max_depth)
    x = mu.prefix(2)  # the regular root #0
    lookups = 0
    probed: list[Label] = []
    while True:
        name = naming(x)
        bucket = dht.get(str(name))
        lookups += 1
        probed.append(name)
        if isinstance(bucket, LeafBucket) and bucket.contains_key(key):
            return LookupResult(bucket, name, lookups, tuple(probed))
        if bucket is None:
            # Inconsistent index (unreachable in a quiescent system).
            return LookupResult(None, None, lookups, tuple(probed))
        try:
            x = next_naming(x, mu)
        except LabelError:
            return LookupResult(None, None, lookups, tuple(probed))
