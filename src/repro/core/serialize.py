"""Wire-format serialization for index values (deployment realism).

The simulated substrates store Python objects directly, but a deployed
over-DHT index ships its buckets as bytes.  These functions define that
wire format — plain JSON-compatible dicts — and are exercised by the
test suite with roundtrip properties, so the in-memory structures never
drift away from something actually serializable.

Payload values must themselves be JSON-compatible for :func:`dumps`; the
dict-level functions accept arbitrary Python payloads.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.bucket import LeafBucket, Record
from repro.core.label import Label
from repro.errors import ReproError

__all__ = [
    "record_to_dict",
    "record_from_dict",
    "bucket_to_dict",
    "bucket_from_dict",
    "dumps",
    "loads",
]

_FORMAT_VERSION = 1


def record_to_dict(record: Record) -> dict[str, Any]:
    """Encode one record."""
    return {"key": record.key, "value": record.value}


def record_from_dict(data: dict[str, Any]) -> Record:
    """Decode one record (validates the key range)."""
    try:
        return Record(float(data["key"]), data.get("value"))
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed record payload: {data!r}") from exc


def bucket_to_dict(bucket: LeafBucket) -> dict[str, Any]:
    """Encode a leaf bucket: the label plus the record store."""
    return {
        "format": _FORMAT_VERSION,
        "label": str(bucket.label),
        "records": [record_to_dict(r) for r in bucket],
    }


def bucket_from_dict(data: dict[str, Any]) -> LeafBucket:
    """Decode a leaf bucket; rejects unknown format versions."""
    try:
        version = data["format"]
        if version != _FORMAT_VERSION:
            raise ReproError(f"unsupported bucket format version {version}")
        label = Label.parse(data["label"])
        records = [record_from_dict(r) for r in data["records"]]
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed bucket payload: {data!r}") from exc
    return LeafBucket(label, records)


def dumps(bucket: LeafBucket) -> bytes:
    """Serialize a bucket to canonical JSON bytes."""
    return json.dumps(
        bucket_to_dict(bucket), sort_keys=True, separators=(",", ":")
    ).encode()


def loads(payload: bytes) -> LeafBucket:
    """Deserialize a bucket from JSON bytes."""
    try:
        data = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ReproError("bucket payload is not valid JSON") from exc
    return bucket_from_dict(data)
