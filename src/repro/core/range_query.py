"""Range queries over LHT (paper §6, Algorithms 3 and 4).

A range query ``[l, u)`` is answered by sweeping the leaves that overlap
the range, using only the *local tree* each leaf can infer from its own
label (§3.3) — no maintained leaf links, unlike PHT.

**Simple case** (Alg. 3): the current bucket contains one bound of its
subrange.  The bucket locally enumerates its neighboring subtrees via the
right/left-neighbor functions ``f_rn``/``f_ln``; each subtree fully inside
the range is handed (one DHT-lookup of ``f_n(β)``, which cannot fail) to
its extreme leaf, which recursively sweeps back *into* the subtree; the
final, partially overlapped subtree ``β_k`` is handed to its near-edge
leaf via a DHT-lookup of ``β_k`` itself — the single lookup per sweep that
can fail (when ``β_k`` happens to be a leaf), repaired by one extra lookup
of ``f_n(β_k)``.

**General case** (Alg. 4): the initiator computes the range's lowest
common ancestor ``LCA`` locally and probes ``f_n(LCA)``:

* failed get — the whole range lies in a single leaf: degenerate to an
  LHT-lookup of ``l``;
* returned bucket overlaps the range — it must contain a bound (it is the
  extreme leaf of a subtree enclosing the range): simple case;
* no overlap — fork to the leaves named ``LCA0`` and ``LCA1``, which
  contain the range's split point from either side; each side is a simple
  case.  (If one of those children is itself a leaf, the pseudocode's
  lookup fails; we repair with one ``f_n(child)`` lookup, which the
  paper's cost bound absorbs in its "+3".)

**Batched parallel rounds.**  The paper's latency claim (§9.4) rests on
all forwards issued by one bucket going out *in parallel*; this executor
makes that literal.  Expansion is frontier-driven: every DHT-get due at
sequential step ``s`` is collected into one frontier and issued as a
single :meth:`~repro.dht.base.DHT.multi_get` round; the buckets that
come back enqueue their own forwards for step ``s + 1`` (repairs for
``s + 2`` — a repair is sequential after the probe it repairs).  The
total lookup count is exactly what the sequential formulation charges —
at most ``B + 3`` for ``B`` result buckets (§6.3) — while latency is
reported honestly as ``parallel_steps``, the longest chain of dependent
lookups, with ``batch_rounds`` counting the multi-get rounds actually
issued.  (The degenerate single-leaf case is the one inherently
sequential stretch: Alg. 2's binary search.)

**Degraded mode** (``run(rng, degraded=True)``): under a faulty
substrate the required gets above can fail even after repair.  The
default behaviour is to raise (never to return silently partial data);
in degraded mode the executor instead *records* each unreachable
subtree's interval and keeps sweeping, returning a result with
``complete=False`` and the unreachable ranges listed — the caller knows
exactly which slices of the answer are missing.  Substrate-raised
:class:`~repro.errors.DHTError` (routing failures, open circuit
breakers) is absorbed per frontier key in degraded mode only
(``multi_get(..., absorb_errors=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.bucket import LeafBucket, Record
from repro.core.config import IndexConfig
from repro.core.interval import Range
from repro.core.label import Label, ROOT
from repro.core.lookup import lht_lookup
from repro.core.naming import left_neighbor, naming, right_neighbor
from repro.core.results import RangeQueryResult
from repro.dht.base import DHT
from repro.dht.replicated import replica_layer
from repro.errors import DHTError, LookupError_

__all__ = ["compute_lca", "RangeQueryExecutor"]


def compute_lca(rng: Range, max_depth: int) -> Label:
    """The deepest tree label whose interval contains the whole range.

    This is the ``computeLCA`` of Alg. 4 line 1 — computed locally from
    the range bounds alone, by descending from the root while one half
    still contains the range (exact dyadic arithmetic, no probing).
    """
    label = ROOT
    while label.depth < max_depth:
        mid = label.interval.midpoint
        if rng.hi <= mid:
            label = label.left_child
        elif rng.lo >= mid:
            label = label.right_child
        else:
            break
    return label


@dataclass(slots=True)
class _PendingGet:
    """One DHT-get due at a given sequential step, with continuations."""

    key: Label
    step: int
    on_value: Callable[[LeafBucket], None]
    on_miss: Callable[[], None]


@dataclass(slots=True)
class _QueryState:
    """Mutable accounting shared by one query execution."""

    records: list[Record] = field(default_factory=list)
    visited: set[Label] = field(default_factory=set)
    dht_lookups: int = 0
    failed_lookups: int = 0
    max_step: int = 0
    batch_rounds: int = 0
    collect_calls: int = 0  # diagnostics: equals len(visited) iff the
    # range decomposition is truly disjoint (asserted in tests)
    degraded: bool = False
    unreachable: list[Range] = field(default_factory=list)
    #: Frontier: step -> gets due at that step, in enqueue order.
    pending: dict[int, list[_PendingGet]] = field(default_factory=dict)

    def mark_unreachable(self, rng: Range) -> None:
        """Record a sub-range whose leaves could not be fetched."""
        if not rng.is_empty:
            self.unreachable.append(rng)


class RangeQueryExecutor:
    """Executes LHT range queries over a DHT (Algs. 3-4)."""

    def __init__(self, dht: DHT, config: IndexConfig) -> None:
        self._dht = dht
        self._config = config
        # The stack's replication layer, if one offers failover; probed
        # on degraded-mode misses before a subtree is declared
        # unreachable.  Resolved once — the stack cannot change under a
        # live executor.
        self._replicas = replica_layer(dht)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(self, rng: Range, degraded: bool = False) -> RangeQueryResult:
        """Answer the range query ``[rng.lo, rng.hi)``.

        With ``degraded=True``, unreachable subtrees produce an
        incomplete result (``complete=False`` plus their intervals)
        instead of an exception; the answer is always a *correct subset*
        with its gaps declared.
        """
        state = _QueryState(degraded=degraded)
        if not rng.is_empty:
            self._general_forward(rng, state)
            self._drain(state)
        state.records.sort()
        unreachable = tuple(sorted(state.unreachable, key=lambda r: r.lo))
        if unreachable:
            self._dht.metrics.record_degraded()
        return RangeQueryResult(
            records=tuple(state.records),
            dht_lookups=state.dht_lookups,
            failed_lookups=state.failed_lookups,
            parallel_steps=state.max_step,
            buckets_visited=len(state.visited),
            collect_calls=state.collect_calls,
            complete=not unreachable,
            unreachable=unreachable,
            batch_rounds=state.batch_rounds,
        )

    # ------------------------------------------------------------------
    # Frontier machinery
    # ------------------------------------------------------------------

    def _enqueue(
        self,
        state: _QueryState,
        key: Label,
        step: int,
        on_value: Callable[[LeafBucket], None],
        on_miss: Callable[[], None],
    ) -> None:
        state.pending.setdefault(step, []).append(
            _PendingGet(key, step, on_value, on_miss)
        )

    def _drain(self, state: _QueryState) -> None:
        """Issue pending gets round by round until the frontier is empty.

        Each round batches every get due at the earliest pending step
        into one ``multi_get`` — one parallel round of routed lookups.
        Continuations enqueue strictly later steps, so rounds advance
        monotonically and the loop terminates with the sweep.
        """
        while state.pending:
            step = min(state.pending)
            batch = state.pending.pop(step)
            state.batch_rounds += 1
            state.dht_lookups += len(batch)
            state.max_step = max(state.max_step, step)
            values: list[Any] = self._dht.multi_get(
                [str(task.key) for task in batch],
                absorb_errors=state.degraded,
            )
            for task, value in zip(batch, values):
                if value is None and state.degraded and self._replicas:
                    # Degraded mode: before treating the miss as "node
                    # absent" (which prunes the subtree or marks it
                    # unreachable), ask the replica holders directly.
                    # A structural miss — the name genuinely unstored —
                    # probes and stays a miss; a dropped reply is
                    # rescued and the sweep continues undegraded.
                    value = self._replicas.failover_get(str(task.key))
                    if value is not None:
                        self._dht.metrics.record_replica_failover()
                if value is None:
                    state.failed_lookups += 1
                    task.on_miss()
                else:
                    task.on_value(value)

    def _unreachable_or_raise(
        self, sub: Range, state: _QueryState, message: str
    ) -> None:
        if state.degraded:
            state.mark_unreachable(sub)
        else:
            raise LookupError_(message)

    # ------------------------------------------------------------------
    # General case (Alg. 4)
    # ------------------------------------------------------------------

    def _general_forward(self, rng: Range, state: _QueryState) -> None:
        lca = compute_lca(rng, self._config.max_depth)
        self._enqueue(
            state,
            naming(lca),
            1,
            on_value=lambda bucket: self._after_lca_probe(
                bucket, lca, rng, state
            ),
            on_miss=lambda: self._degenerate_lookup(rng, state),
        )

    def _after_lca_probe(
        self, bucket: LeafBucket, lca: Label, rng: Range, state: _QueryState
    ) -> None:
        if bucket.label.interval.overlaps(rng):
            # Case 2: the returned extreme leaf contains one range bound.
            self._simple_case(bucket, rng, 1, state)
            return

        # Case 3: the range straddles LCA's midpoint but the extreme leaf
        # lies outside it — fork to both children (one parallel round).
        mid = lca.interval.midpoint
        for child, sub in (
            (lca.left_child, Range(rng.lo, min(mid, rng.hi))),
            (lca.right_child, Range(max(mid, rng.lo), rng.hi)),
        ):
            if sub.is_empty:
                continue
            self._enqueue(
                state,
                child,
                2,
                on_value=lambda b, sub=sub: self._simple_case(b, sub, 2, state),
                on_miss=lambda child=child, sub=sub: self._enqueue(
                    # The child is itself a leaf; its bucket lives under
                    # f_n(child) and covers the whole sub-range.
                    state,
                    naming(child),
                    3,
                    on_value=lambda b, sub=sub: self._recover(b, sub, 3, state),
                    on_miss=lambda child=child, sub=sub: self._unreachable_or_raise(
                        sub, state, f"range {rng}: cannot reach child {child}"
                    ),
                ),
            )

    def _degenerate_lookup(self, rng: Range, state: _QueryState) -> None:
        """Case 1: no internal node ``f_n(LCA)`` — the whole range lies in
        one leaf at or above it.  Degenerate to an exact-match-style
        lookup of the lower bound (inherently sequential: Alg. 2)."""
        try:
            result = lht_lookup(self._dht, self._config, float(rng.lo))
        except DHTError:
            if state.degraded:
                state.mark_unreachable(rng)
                return
            raise
        state.dht_lookups += result.dht_lookups
        state.max_step = max(state.max_step, 1 + result.dht_lookups)
        if result.bucket is None:
            self._unreachable_or_raise(
                rng, state, f"range {rng}: degenerate lookup failed"
            )
            return
        interval = result.bucket.label.interval
        if interval.low <= rng.lo and rng.hi <= interval.high:
            self._collect(result.bucket, rng, state)
        else:
            # The single-leaf premise is falsified by the leaf itself:
            # the probe of f_n(LCA) must have been *dropped*, not
            # absent.  The leaf still contains the lower bound, so
            # recover via the simple case instead of silently
            # returning one bucket's slice of the answer.
            self._simple_case(result.bucket, rng, 1 + result.dht_lookups, state)

    # ------------------------------------------------------------------
    # Simple case (Alg. 3)
    # ------------------------------------------------------------------

    def _simple_case(
        self, bucket: LeafBucket, rng: Range, step: int, state: _QueryState
    ) -> None:
        """Collect from ``bucket`` and sweep across its neighboring trees.

        Precondition (the paper's "simple case"): ``bucket`` contains one
        bound of ``rng``.
        """
        if rng.is_empty:
            return
        self._collect(bucket, rng, state)
        interval = bucket.label.interval
        if interval.low <= rng.lo and rng.hi <= interval.high:
            return  # the bucket covers the whole (sub)range
        if interval.low <= rng.lo:
            self._sweep(bucket, rng, step, state, rightwards=True)
        elif interval.low < rng.hi <= interval.high:
            self._sweep(bucket, rng, step, state, rightwards=False)
        else:
            raise LookupError_(
                f"simple-case invariant violated: {bucket.label} vs {rng}"
            )

    def _sweep(
        self,
        bucket: LeafBucket,
        rng: Range,
        step: int,
        state: _QueryState,
        rightwards: bool,
    ) -> None:
        """Enqueue forwards across successive neighboring subtrees.

        All forwards go out in parallel from this bucket (it infers every
        branch node locally from its label), so each joins the frontier
        at ``step + 1``; recursion into a subtree deepens the chain.
        """
        beta = bucket.label
        while True:
            if rightwards:
                if beta.on_rightmost_spine:
                    return
                beta = right_neighbor(beta)
                inv = beta.interval
                if inv.low >= rng.hi:
                    return
                contained = inv.high <= rng.hi
            else:
                if beta.on_leftmost_spine:
                    return
                beta = left_neighbor(beta)
                inv = beta.interval
                if inv.high <= rng.lo:
                    return
                contained = inv.low >= rng.lo

            if contained:
                # The whole neighboring tree lies in range: hand its own
                # interval to its extreme leaf, stored under f_n(β).
                # This lookup cannot fail (Theorem 1 names some leaf f_n(β)
                # whether β is internal or a leaf itself) — a miss means
                # the get was dropped.
                self._enqueue(
                    state,
                    naming(beta),
                    step + 1,
                    on_value=lambda b, inv=inv, s=step + 1: self._simple_case(
                        b, inv.to_range(), s, state
                    ),
                    on_miss=lambda beta=beta, inv=inv: self._unreachable_or_raise(
                        inv.to_range(), state, f"no leaf named f_n({beta})"
                    ),
                )
                boundary_hit = (
                    inv.high == rng.hi if rightwards else inv.low == rng.lo
                )
                if boundary_hit:
                    return
            else:
                # β_k: the final subtree, containing the far bound strictly
                # inside.  Its near-edge leaf is stored under β itself —
                # the one lookup per sweep that can fail (β may be a leaf);
                # the repair via f_n(β) is sequential after the failure.
                sub = (
                    Range(inv.low, rng.hi)
                    if rightwards
                    else Range(rng.lo, inv.high)
                )
                self._enqueue(
                    state,
                    beta,
                    step + 1,
                    on_value=lambda b, sub=sub, s=step + 1: self._simple_case(
                        b, sub, s, state
                    ),
                    on_miss=lambda beta=beta, sub=sub, s=step + 2: self._enqueue(
                        state,
                        naming(beta),
                        s,
                        on_value=lambda b, sub=sub, s=s: self._recover(
                            b, sub, s, state
                        ),
                        on_miss=lambda beta=beta, sub=sub: self._unreachable_or_raise(
                            sub, state, f"cannot reach subtree {beta}"
                        ),
                    ),
                )
                return

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _recover(
        self, repaired: LeafBucket, sub: Range, step: int, state: _QueryState
    ) -> None:
        """Dispatch a subrange to a bucket fetched by an ``f_n`` repair.

        On a clean substrate the failed get that triggered the repair
        proves its label a leaf, so ``repaired`` covers ``sub`` entirely
        and one collect finishes it.  Under dropped replies that proof is
        unsound: the repair may have fetched just the *extreme leaf* of
        an internal subtree.  The bucket's own label exposes the lie —
        fall back to a full simple-case sweep when it still contains a
        bound of ``sub``, and otherwise refuse to return silently partial
        data (mark unreachable in degraded mode, raise outside it).
        """
        interval = repaired.label.interval
        if interval.low <= sub.lo and sub.hi <= interval.high:
            self._collect(repaired, sub, state)
        elif interval.low <= sub.lo < interval.high or (
            interval.low < sub.hi <= interval.high
        ):
            self._simple_case(repaired, sub, step, state)
        elif state.degraded:
            state.mark_unreachable(sub)
        else:
            raise LookupError_(
                f"repair for {sub} landed outside it (dropped get?)"
            )

    @staticmethod
    def _collect(bucket: LeafBucket, rng: Range, state: _QueryState) -> None:
        state.collect_calls += 1
        if bucket.label in state.visited:
            return
        state.visited.add(bucket.label)
        state.records.extend(bucket.records_in(rng))
