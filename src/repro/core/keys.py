"""Data-key ↔ label-path conversion (paper §5).

A data key ``δ ∈ [0, 1)`` determines a root-to-leaf path in the
space-partition tree.  Truncated at the maximum tree depth ``D``, this path
is the label ``μ(δ, D)`` — the ``#0`` root prefix followed by the first
``D - 1`` bits of ``δ``'s binary expansion — and the leaf containing ``δ``
must be one of ``μ``'s prefixes of length 2 … D+1 (the candidate set
``Γ(δ, D)``).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.label import Label
from repro.errors import DepthExceededError, KeyOutOfRangeError

__all__ = ["key_bits", "mu_path", "gamma_lengths", "label_for_key"]


def key_bits(key: float | Fraction, n_bits: int) -> str:
    """First ``n_bits`` bits of the binary expansion of ``key ∈ [0, 1)``.

    Uses exact integer arithmetic (no float accumulation error) so the bit
    path agrees exactly with the dyadic intervals of
    :class:`~repro.core.interval.DyadicInterval`.
    """
    if n_bits < 0:
        raise KeyOutOfRangeError(f"negative bit count: {n_bits}")
    if isinstance(key, float):
        # Fast exact path: multiplying a float by a power of two is exact
        # (the mantissa is unchanged), so truncation yields the true bits.
        if not 0.0 <= key < 1.0:
            raise KeyOutOfRangeError(f"data key {key} outside [0, 1)")
        if n_bits == 0:
            return ""
        if n_bits <= 64:
            return format(int(key * (1 << n_bits)), f"0{n_bits}b")
    frac = Fraction(key)
    if not 0 <= frac < 1:
        raise KeyOutOfRangeError(f"data key {float(key)} outside [0, 1)")
    if n_bits == 0:
        return ""
    scaled = (frac.numerator << n_bits) // frac.denominator
    return format(scaled, f"0{n_bits}b")


def mu_path(key: float | Fraction, max_depth: int) -> Label:
    """The lookup path ``μ(δ, D)`` (paper §5).

    A label of length ``D + 1`` (the ``#``, the root bit ``0``, then the
    first ``D - 1`` bits of ``δ``).  Every possible leaf containing ``δ`` in
    a tree of maximum depth ``D`` is a prefix of this label.

    Example: ``mu_path(0.4, 5)`` is ``#00110``, as in the paper.
    """
    if max_depth < 1:
        raise DepthExceededError(f"maximum depth must be >= 1, got {max_depth}")
    return Label("0" + key_bits(key, max_depth - 1))


def gamma_lengths(max_depth: int) -> range:
    """Candidate label lengths of ``Γ(δ, D)``: 2 … D+1 (paper §5)."""
    return range(2, max_depth + 2)


def label_for_key(key: float | Fraction, depth: int) -> Label:
    """The unique depth-``depth`` tree label whose interval contains ``key``.

    ``depth`` is counted in bits (the regular root has depth 1), so the
    result has paper-length ``depth + 1``.
    """
    if depth < 1:
        raise DepthExceededError(f"label depth must be >= 1, got {depth}")
    return Label("0" + key_bits(key, depth - 1))
