"""Index introspection and integrity verification.

:class:`IndexInspector` reads the whole distributed state through the
DHT's oracle interface (``peek``/``keys`` — no lookup cost) and checks
exactly the invariants the paper's correctness rests on: every bucket is
stored under ``f_n`` of its label (Theorem 1's placement), and the leaf
intervals tile ``[0, 1)``.  Tests run it after every mutation sequence;
experiments use it for structural statistics (depth histogram, storage
balance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bucket import LeafBucket
from repro.core.label import Label
from repro.core.naming import naming
from repro.dht.base import DHT
from repro.errors import ReproError

__all__ = ["IndexStats", "IndexInspector"]


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Structural statistics of a distributed LHT."""

    n_leaves: int
    n_records: int
    min_depth: int
    max_depth: int
    mean_depth: float
    depth_histogram: dict[int, int]


class IndexInspector:
    """Oracle-level reader and verifier of a distributed LHT's state."""

    def __init__(self, dht: DHT) -> None:
        self._dht = dht

    def buckets(self) -> dict[Label, LeafBucket]:
        """All leaf buckets, keyed by their *storage* label (the DHT key)."""
        out: dict[Label, LeafBucket] = {}
        for key in self._dht.keys():
            value = self._dht.peek(key)
            if isinstance(value, LeafBucket):
                out[Label.parse(key)] = value
        return out

    def stats(self) -> IndexStats:
        """Compute structural statistics."""
        buckets = list(self.buckets().values())
        depths = [b.label.depth for b in buckets]
        histogram: dict[int, int] = {}
        for d in depths:
            histogram[d] = histogram.get(d, 0) + 1
        return IndexStats(
            n_leaves=len(buckets),
            n_records=sum(len(b) for b in buckets),
            min_depth=min(depths),
            max_depth=max(depths),
            mean_depth=sum(depths) / len(depths),
            depth_histogram=dict(sorted(histogram.items())),
        )

    def all_keys(self) -> list[float]:
        """Every stored record key, sorted (oracle answer for tests)."""
        return sorted(
            record.key
            for bucket in self.buckets().values()
            for record in bucket
        )

    def verify(self) -> None:
        """Assert the distributed state is consistent; raise otherwise.

        Checks:
        1. every bucket is stored under DHT key ``f_n(label)``;
        2. storage keys are unique per bucket (Theorem 1 bijection);
        3. leaf intervals tile ``[0, 1)`` exactly;
        4. every record lies inside its leaf's interval.
        """
        buckets = self.buckets()
        if not buckets:
            raise ReproError("no leaf buckets stored")

        for storage_label, bucket in buckets.items():
            if naming(bucket.label) != storage_label:
                raise ReproError(
                    f"bucket {bucket.label} stored under {storage_label}, "
                    f"expected f_n = {naming(bucket.label)}"
                )
            for record in bucket:
                if not bucket.label.contains(record.key):
                    raise ReproError(
                        f"record {record.key} outside leaf {bucket.label}"
                    )

        leaves = sorted(
            (b.label for b in buckets.values()),
            key=lambda lab: (lab.interval.low, lab.depth),
        )
        if len(set(leaves)) != len(leaves):
            raise ReproError("duplicate leaf labels stored")
        cursor = leaves[0].interval.low
        if cursor != 0:
            raise ReproError("leftmost leaf does not start at 0")
        for leaf in leaves:
            if leaf.interval.low != cursor:
                raise ReproError(f"gap or overlap before leaf {leaf}")
            cursor = leaf.interval.high
        if cursor != 1:
            raise ReproError("rightmost leaf does not end at 1")
