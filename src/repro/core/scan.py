"""Ordered traversal and k-nearest-key queries (extensions).

Both ride on the same machinery as range queries: from any leaf, the
neighbor functions locate the adjacent leaf with one DHT-lookup (plus the
usual one-lookup repair when the branch node happens to be a leaf), so

* :func:`scan_buckets` / :func:`scan_records` stream the whole index in
  key order starting from the leftmost leaf (stored under ``#``), and
* :func:`knn_query` finds the ``k`` stored keys nearest to a probe key
  by expanding outward from its covering leaf, stopping once both
  frontiers are provably farther than the current ``k``-th best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.bucket import LeafBucket, Record
from repro.core.config import IndexConfig
from repro.core.label import Label, VIRTUAL_ROOT
from repro.core.lookup import lht_lookup
from repro.core.naming import left_neighbor, naming, right_neighbor
from repro.dht.base import DHT
from repro.errors import LookupError_

__all__ = ["scan_buckets", "scan_records", "knn_query", "KnnResult"]


def _fetch_adjacent(
    dht: DHT, label: Label, rightwards: bool
) -> tuple[LeafBucket | None, int]:
    """The leaf adjacent to ``label``; returns (bucket, lookups used).

    ``None`` when ``label`` touches the data-space edge in that direction.
    """
    at_edge = label.on_rightmost_spine if rightwards else label.on_leftmost_spine
    if at_edge:
        return None, 0
    beta = right_neighbor(label) if rightwards else left_neighbor(label)
    # The near-edge leaf of the neighboring tree is stored under β; if β
    # is itself a leaf, repair via f_n(β) (same pattern as Alg. 3).
    bucket = dht.get(str(beta))
    lookups = 1
    if bucket is None:
        bucket = dht.get(str(naming(beta)))
        lookups += 1
        if bucket is None:
            raise LookupError_(f"cannot reach neighboring tree {beta}")
    return bucket, lookups


def scan_buckets(dht: DHT, config: IndexConfig) -> Iterator[LeafBucket]:
    """Yield every leaf bucket in left-to-right key order.

    Costs one DHT-lookup per leaf (the per-step repair adds at most one),
    beginning with the leftmost leaf under ``#``.
    """
    bucket = dht.get(str(VIRTUAL_ROOT))
    if bucket is None:
        raise LookupError_("no leaf stored under '#': index not bootstrapped")
    while True:
        yield bucket
        nxt, _ = _fetch_adjacent(dht, bucket.label, rightwards=True)
        if nxt is None:
            return
        bucket = nxt


def scan_records(dht: DHT, config: IndexConfig) -> Iterator[Record]:
    """Yield every record in ascending key order."""
    for bucket in scan_buckets(dht, config):
        yield from bucket


@dataclass(frozen=True, slots=True)
class KnnResult:
    """Outcome of a k-nearest-key query."""

    records: tuple[Record, ...]
    dht_lookups: int


def knn_query(dht: DHT, config: IndexConfig, key: float, k: int) -> KnnResult:
    """The ``k`` stored records whose keys are nearest to ``key``.

    Expansion is cost-optimal in leaves: starting from the covering leaf
    (one LHT-lookup), the query alternately extends whichever frontier is
    closer to the probe, and stops when the ``k``-th best distance beats
    both frontiers — so it touches only leaves that could contribute.
    """
    if k < 1:
        raise LookupError_(f"k must be >= 1: {k}")
    start = lht_lookup(dht, config, key)
    if start.bucket is None:
        raise LookupError_(f"lookup of {key} failed to converge")
    lookups = start.dht_lookups

    candidates: list[Record] = list(start.bucket.records)
    left_label = right_label = start.bucket.label
    left_open = not left_label.on_leftmost_spine
    right_open = not right_label.on_rightmost_spine

    def kth_distance() -> float:
        if len(candidates) < k:
            return float("inf")
        distances = sorted(abs(r.key - key) for r in candidates)
        return distances[k - 1]

    while left_open or right_open:
        left_gap = (
            key - left_label.interval.low_float if left_open else float("inf")
        )
        right_gap = (
            right_label.interval.high_float - key if right_open else float("inf")
        )
        best_gap = min(left_gap, right_gap)
        if best_gap >= kth_distance():
            break  # no unexplored leaf can beat the current k-th best
        go_left = left_gap <= right_gap
        frontier = left_label if go_left else right_label
        bucket, used = _fetch_adjacent(dht, frontier, rightwards=not go_left)
        lookups += used
        if bucket is None:  # defensive; _open flags should prevent this
            break
        candidates.extend(bucket.records)
        if go_left:
            left_label = bucket.label
            left_open = not left_label.on_leftmost_spine
        else:
            right_label = bucket.label
            right_open = not right_label.on_rightmost_spine

    candidates.sort(key=lambda r: (abs(r.key - key), r.key))
    return KnnResult(tuple(candidates[:k]), lookups)
