"""PHT trie nodes (Ramabhadran et al., PODC 2004; Chawathe et al.,
SIGCOMM 2005).

Unlike LHT, PHT materializes *every* trie node — internal nodes included —
in the DHT, each stored directly under the hash of its own label.  Leaves
additionally keep B+-tree-style ``prev``/``next`` links to their in-order
neighbors, which the sequential range-query algorithm walks and every
split must repair (the maintenance cost LHT eliminates).
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.core.bucket import Record
from repro.core.interval import Range
from repro.core.label import Label
from repro.errors import KeyOutOfRangeError

__all__ = ["PHTNode"]


class PHTNode:
    """One PHT trie node: label, leaf flag, records, and leaf links."""

    __slots__ = ("label", "is_leaf", "_records", "prev_label", "next_label")

    def __init__(
        self,
        label: Label,
        is_leaf: bool = True,
        records: list[Record] | None = None,
        prev_label: Label | None = None,
        next_label: Label | None = None,
    ) -> None:
        self.label = label
        self.is_leaf = is_leaf
        self._records: list[Record] = sorted(records) if records else []
        self.prev_label = prev_label
        self.next_label = next_label

    # ------------------------------------------------------------------
    # Record store (leaves only)
    # ------------------------------------------------------------------

    @property
    def records(self) -> tuple[Record, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    @property
    def slot_count(self) -> int:
        """Records plus one label slot — the same capacity accounting as
        LHT buckets, for a like-for-like θ_split."""
        return len(self._records) + 1

    def is_full(self, theta_split: int) -> bool:
        return self.slot_count >= theta_split

    def add(self, record: Record) -> None:
        if not self.label.contains(record.key):
            raise KeyOutOfRangeError(
                f"key {record.key} outside node {self.label}"
            )
        bisect.insort(self._records, record)

    def remove(self, key: float) -> Record | None:
        idx = bisect.bisect_left(self._records, Record(key))
        if idx < len(self._records) and self._records[idx].key == key:
            return self._records.pop(idx)
        return None

    def find(self, key: float) -> Record | None:
        idx = bisect.bisect_left(self._records, Record(key))
        if idx < len(self._records) and self._records[idx].key == key:
            return self._records[idx]
        return None

    def records_in(self, rng: Range) -> list[Record]:
        return [r for r in self._records if rng.contains(r.key)]

    def take_all(self) -> list[Record]:
        """Remove and return every record (used when a leaf splits)."""
        records, self._records = self._records, []
        return records

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        kind = "leaf" if self.is_leaf else "internal"
        return f"PHTNode({self.label}, {kind}, n={len(self._records)})"
