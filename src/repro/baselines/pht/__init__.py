"""Prefix Hash Tree baseline (paper's main comparison point)."""

from repro.baselines.pht.index import PHTIndex, PHTLookupResult
from repro.baselines.pht.node import PHTNode

__all__ = ["PHTIndex", "PHTLookupResult", "PHTNode"]
