"""The PHT index: the paper's main baseline (§2, §8.2, §9).

Structure and costs follow the paper's characterization exactly:

* every trie node is mapped to the DHT directly by the hash of its label;
* lookups binary-search all ``D`` candidate prefix lengths (``log D``
  probes, vs. LHT's ``log(D/2)``);
* a split turns the full leaf into an internal node *in place* and pushes
  **both** children to other peers (2 DHT-lookups, the whole bucket
  moved), then repairs the B+-tree leaf links of up to two neighbors
  (2 more DHT-lookups) — the paper's ``Ψ_PHT = θ·i + 4·j`` (Eq. 2);
* range queries come in the *sequential* flavor (lookup the lower bound,
  then walk leaf links) and the *parallel* flavor (descend the sub-trie
  under the range's LCA in parallel) — Figs. 9-10 compare LHT to both.

The capacity accounting (one slot for the label) matches the LHT bucket
model so both schemes split at identical record counts.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.baselines.pht.node import PHTNode
from repro.core.bucket import Record
from repro.core.bulkbuild import normalize_items, plan_bulk_load
from repro.core.config import IndexConfig
from repro.core.interval import Range
from repro.core.keys import key_bits, mu_path
from repro.core.label import Label, ROOT
from repro.core.range_query import compute_lca
from repro.core.results import CostLedger, RangeQueryResult, SplitEvent
from repro.dht.base import DHT
from repro.errors import LookupError_

__all__ = ["PHTIndex", "PHTLookupResult"]


class PHTLookupResult:
    """Outcome of a PHT lookup: the leaf node and the probe count."""

    __slots__ = ("node", "dht_lookups")

    def __init__(self, node: PHTNode | None, dht_lookups: int) -> None:
        self.node = node
        self.dht_lookups = dht_lookups

    @property
    def found(self) -> bool:
        return self.node is not None


class PHTIndex:
    """A Prefix Hash Tree over a generic DHT.

    Mirrors :class:`repro.core.index.LHTIndex`'s public surface so the
    experiment harness can drive either scheme interchangeably.
    """

    def __init__(self, dht: DHT, config: IndexConfig | None = None) -> None:
        self.dht = dht
        self.config = config or IndexConfig()
        self.ledger = CostLedger()
        self._leaf_bits: set[str] = {ROOT.bits}
        self.record_count = 0
        self.dht.put(str(ROOT), PHTNode(ROOT))

    # ------------------------------------------------------------------
    # Lookup: binary search over all D candidate lengths (log D probes)
    # ------------------------------------------------------------------

    def lookup(self, key: float) -> PHTLookupResult:
        """Binary-search the prefix lengths of ``μ(δ, D)`` for the leaf.

        Every trie node is addressable by its own label, so each probe
        has three outcomes: leaf (done), internal node (go longer),
        absent (go shorter).  Unlike LHT there is no name sharing to
        collapse the candidate set, so the search spans all ``D`` lengths.
        """
        mu = mu_path(key, self.config.max_depth)
        lo, hi = 2, self.config.max_depth + 1
        lookups = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            node = self.dht.get(str(mu.prefix(mid)))
            lookups += 1
            if node is None:
                hi = mid - 1
            elif node.is_leaf:
                return PHTLookupResult(node, lookups)
            else:
                lo = mid + 1
        return PHTLookupResult(None, lookups)

    def lookup_linear(self, key: float) -> PHTLookupResult:
        """Top-down linear lookup — the PHT papers' simpler variant.

        Probes each prefix length from the root downward until the leaf
        is reached: exactly ``leaf depth`` DHT-gets, versus the binary
        search's ``log D``.  Kept as an ablation baseline.
        """
        mu = mu_path(key, self.config.max_depth)
        lookups = 0
        for length in range(2, self.config.max_depth + 2):
            node = self.dht.get(str(mu.prefix(length)))
            lookups += 1
            if node is None:
                return PHTLookupResult(None, lookups)
            if node.is_leaf:
                return PHTLookupResult(node, lookups)
        return PHTLookupResult(None, lookups)

    def exact_match(self, key: float) -> tuple[Record | None, int]:
        """Return (record with exactly this key or None, DHT-lookups)."""
        result = self.lookup(key)
        if result.node is None:
            raise LookupError_(f"PHT lookup of {key} failed to converge")
        return result.node.find(key), result.dht_lookups

    def __contains__(self, key: float) -> bool:
        record, _ = self.exact_match(key)
        return record is not None

    # ------------------------------------------------------------------
    # Insertion and deletion
    # ------------------------------------------------------------------

    def insert(self, key: float, value: Any = None) -> int:
        """Insert one record; returns the DHT-lookups the operation used
        (excluding maintenance, which is ledgered separately)."""
        result = self.lookup(key)
        if result.node is None:
            raise LookupError_(f"PHT lookup of {key} failed to converge")
        lookups = result.dht_lookups
        self.dht.put(str(result.node.label), result.node)  # record travels
        lookups += 1
        self._place(result.node, Record(key, value))
        return lookups

    def delete(self, key: float) -> tuple[bool, int]:
        """Delete the record with exactly this key (no merge: the PHT
        papers do not specify one and the paper's workloads never
        delete); returns (deleted, DHT-lookups)."""
        result = self.lookup(key)
        if result.node is None:
            raise LookupError_(f"PHT lookup of {key} failed to converge")
        lookups = result.dht_lookups
        self.dht.put(str(result.node.label), result.node)
        lookups += 1
        removed = result.node.remove(key)
        if removed is not None:
            self.dht.local_write(str(result.node.label), result.node)
            self.record_count -= 1
        return removed is not None, lookups

    def bulk_load(
        self,
        items: Iterable[float | tuple[float, Any]],
        fast: bool = False,
    ) -> int:
        """Insert many records via a client-side leaf mirror (the same
        cost contract as :meth:`LHTIndex.bulk_load`: maintenance is
        charged in full, per-record routed lookups are elided).

        With ``fast=True`` the sorted client-side planner
        (:mod:`repro.core.bulkbuild` — PHT splits at the same interval
        midpoints as LHT) computes the final trie and ships each final
        node with one put: demoted internal nodes, then the leaf chain
        with its in-order ``prev``/``next`` links.  No Ψ_PHT maintenance
        traffic is charged; state is byte-identical to incrementally
        loading the sorted input.
        """
        if fast:
            return self._bulk_load_fast(items)
        count = 0
        for item in items:
            key, value = item if isinstance(item, tuple) else (item, None)
            node = self._local_find_leaf(key)
            self._place(node, Record(key, value))
            count += 1
        return count

    def _bulk_load_fast(
        self, items: Iterable[float | tuple[float, Any]]
    ) -> int:
        records = normalize_items(items)
        if not records:
            return 0
        existing: dict[str, list[Record]] = {}
        for bits in self._leaf_bits:
            node = self.dht.peek(str(Label(bits)))
            if not isinstance(node, PHTNode) or not node.is_leaf:
                raise LookupError_(f"PHT leaf mirror out of sync at #{bits}")
            existing[bits] = list(node.records)
        plan = plan_bulk_load(existing, records, self.config)
        # Leaves the replay split are now internal: record-free nodes
        # under their own (unchanged) DHT keys, links cleared.
        for bits in plan.split_bits:
            label = Label(bits)
            self.dht.put(str(label), PHTNode(label, is_leaf=False))
        # The final leaves are prefix-free, so lexicographic order of
        # their bit strings is the trie's in-order leaf chain.
        ordered = sorted(plan.leaves)
        for i, bits in enumerate(ordered):
            label = Label(bits)
            prev_label = Label(ordered[i - 1]) if i > 0 else None
            next_label = Label(ordered[i + 1]) if i + 1 < len(ordered) else None
            if bits not in plan.changed:
                old = self.dht.peek(str(label))
                if (
                    isinstance(old, PHTNode)
                    and old.prev_label == prev_label
                    and old.next_label == next_label
                ):
                    continue  # untouched leaf with intact links: no put
            self.dht.put(
                str(label),
                PHTNode(label, True, plan.leaves[bits], prev_label, next_label),
            )
        self._leaf_bits = set(plan.leaves)
        self.record_count += plan.inserted
        return plan.inserted

    # ------------------------------------------------------------------
    # Split (Ψ_PHT = θ·i + 4·j, paper Eq. 2)
    # ------------------------------------------------------------------

    def _place(self, node: PHTNode, record: Record) -> SplitEvent | None:
        event = None
        target = node
        if node.is_full(self.config.theta_split) and (
            node.label.depth < self.config.max_depth
        ):
            event, left, right = self._split(node)
            target = left if left.label.contains(record.key) else right
        target.add(record)
        # Persist the mutation at the holding peer (local disk write).
        self.dht.local_write(str(target.label), target)
        self.record_count += 1
        return event

    def _split(self, node: PHTNode) -> tuple[SplitEvent, PHTNode, PHTNode]:
        """Split a full leaf: both children move to other peers.

        The parent stays where it is (its label — hence its DHT key — is
        unchanged) but becomes an internal node holding no records; both
        children have *new* labels, hash to unrelated peers, and take all
        the records with them.  The old leaf's in-order neighbors must
        then have their ``next``/``prev`` links repointed — one routed
        update each.
        """
        parent_label = node.label
        records = node.take_all()
        mid = parent_label.interval.midpoint
        left = PHTNode(
            parent_label.left_child,
            records=[r for r in records if r.key < mid],
            prev_label=node.prev_label,
            next_label=parent_label.right_child,
        )
        right = PHTNode(
            parent_label.right_child,
            records=[r for r in records if r.key >= mid],
            prev_label=parent_label.left_child,
            next_label=node.next_label,
        )
        node.is_leaf = False
        old_prev, old_next = node.prev_label, node.next_label
        node.prev_label = node.next_label = None
        # Demoting the parent to an internal node is a local disk write.
        self.dht.local_write(str(parent_label), node)

        # Two remote children: 2 DHT-lookups, the whole bucket moved.
        self.dht.put(str(left.label), left)
        self.dht.put(str(right.label), right)
        self.dht.metrics.record_moved_records(len(records))
        maintenance = 2

        # B+-tree link repair: route an update to each live neighbor.
        if old_prev is not None:
            neighbor = self.dht.peek(str(old_prev))
            if isinstance(neighbor, PHTNode):
                neighbor.next_label = left.label
                self.dht.put(str(old_prev), neighbor)
                maintenance += 1
        if old_next is not None:
            neighbor = self.dht.peek(str(old_next))
            if isinstance(neighbor, PHTNode):
                neighbor.prev_label = right.label
                self.dht.put(str(old_next), neighbor)
                maintenance += 1

        alpha = len(records) and (len(records) + 2) / (
            2 * self.config.theta_split
        )  # both halves remote; recorded for completeness
        event = SplitEvent(
            parent=parent_label,
            local=left.label,
            remote=right.label,
            alpha=float(alpha),
            records_moved=len(records),
            dht_lookups=maintenance,
        )
        self.ledger.record_split(event)
        self._leaf_bits.discard(parent_label.bits)
        self._leaf_bits.add(left.label.bits)
        self._leaf_bits.add(right.label.bits)
        return event, left, right

    # ------------------------------------------------------------------
    # Range queries (the two published algorithms)
    # ------------------------------------------------------------------

    def range_query(self, lo: float, hi: float) -> RangeQueryResult:
        """Default range algorithm (the sequential variant [16]) —
        provided so PHT satisfies the same query surface as LHT for
        trace replay and harness code."""
        return self.range_query_sequential(lo, hi)

    def range_query_sequential(self, lo: float, hi: float) -> RangeQueryResult:
        """PHT(sequential) [16]: lookup the lower bound, then walk the
        B+-tree leaf links rightwards.  Near-optimal bandwidth, fully
        sequential latency."""
        rng = Range(lo, hi)
        if rng.is_empty:
            return RangeQueryResult((), 0, 0, 0, 0)
        result = self.lookup(float(rng.lo))
        if result.node is None:
            raise LookupError_(f"PHT lookup of {lo} failed to converge")
        lookups = result.dht_lookups
        steps = result.dht_lookups
        records: list[Record] = []
        visited = 0
        node: PHTNode | None = result.node
        while node is not None:
            records.extend(node.records_in(rng))
            visited += 1
            if node.next_label is None or node.label.interval.high >= rng.hi:
                break
            fetched = self.dht.get(str(node.next_label))
            lookups += 1
            steps += 1
            if not isinstance(fetched, PHTNode):
                raise LookupError_(f"broken leaf link at {node.label}")
            node = fetched
        records.sort()
        return RangeQueryResult(
            records=tuple(records),
            dht_lookups=lookups,
            failed_lookups=0,
            parallel_steps=steps,
            buckets_visited=visited,
        )

    def range_query_parallel(self, lo: float, hi: float) -> RangeQueryResult:
        """PHT(parallel) [4]: jump to the range's LCA node and descend the
        sub-trie, forwarding to both overlapping children in parallel.
        Low latency, but every internal node of the sub-trie costs a
        lookup — the bandwidth overhead Fig. 9 shows."""
        rng = Range(lo, hi)
        if rng.is_empty:
            return RangeQueryResult((), 0, 0, 0, 0)
        state = {"lookups": 0, "failed": 0, "steps": 0, "visited": 0}
        records: list[Record] = []

        lca = compute_lca(rng, self.config.max_depth)
        node = self.dht.get(str(lca))
        state["lookups"] += 1
        state["steps"] = 1
        if node is None:
            state["failed"] += 1
            # The trie is shallower than the LCA on this path: one leaf
            # above it covers the whole range.
            result = self.lookup(float(rng.lo))
            state["lookups"] += result.dht_lookups
            state["steps"] += result.dht_lookups
            if result.node is None:
                raise LookupError_(f"PHT lookup of {lo} failed to converge")
            records.extend(result.node.records_in(rng))
            state["visited"] += 1
        else:
            self._descend(node, rng, 1, state, records)

        records.sort()
        return RangeQueryResult(
            records=tuple(records),
            dht_lookups=state["lookups"],
            failed_lookups=state["failed"],
            parallel_steps=state["steps"],
            buckets_visited=state["visited"],
        )

    def _descend(
        self,
        node: PHTNode,
        rng: Range,
        step: int,
        state: dict[str, int],
        records: list[Record],
    ) -> None:
        if node.is_leaf:
            records.extend(node.records_in(rng))
            state["visited"] += 1
            return
        for child_label in (node.label.left_child, node.label.right_child):
            if not child_label.interval.overlaps(rng):
                continue
            child = self.dht.get(str(child_label))
            state["lookups"] += 1
            state["steps"] = max(state["steps"], step + 1)
            if child is None:
                state["failed"] += 1
                raise LookupError_(f"missing trie child {child_label}")
            self._descend(child, rng, step + 1, state, records)

    # ------------------------------------------------------------------
    # Min/max (for API parity: PHT walks the trie edge, one probe per
    # level — there is no 1-lookup shortcut like LHT's Theorem 3)
    # ------------------------------------------------------------------

    def min_query(self) -> tuple[Record | None, int]:
        """The smallest key, by descending the leftmost trie path."""
        return self._edge_query(leftwards=True)

    def max_query(self) -> tuple[Record | None, int]:
        """The largest key, by descending the rightmost trie path."""
        return self._edge_query(leftwards=False)

    def _edge_query(self, leftwards: bool) -> tuple[Record | None, int]:
        label = ROOT
        lookups = 0
        while True:
            node = self.dht.get(str(label))
            lookups += 1
            if node is None:
                raise LookupError_(f"missing trie node {label}")
            if node.is_leaf:
                if len(node):
                    record = node.records[0 if leftwards else -1]
                    return record, lookups
                # Empty edge leaf: walk inward via leaf links.
                link = node.next_label if leftwards else node.prev_label
                if link is None:
                    return None, lookups
                label = link
                continue
            label = node.label.left_child if leftwards else node.label.right_child

    # ------------------------------------------------------------------
    # Client-side fast path and introspection
    # ------------------------------------------------------------------

    def _local_find_leaf(self, key: float) -> PHTNode:
        path = "0" + key_bits(key, self.config.max_depth - 1)
        for end in range(1, len(path) + 1):
            bits = path[:end]
            if bits in self._leaf_bits:
                node = self.dht.peek(str(Label(bits)))
                if isinstance(node, PHTNode) and node.is_leaf:
                    return node
                raise LookupError_(f"PHT leaf mirror out of sync at #{bits}")
        raise LookupError_(f"no known PHT leaf covers {key}")

    def __len__(self) -> int:
        return self.record_count

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_bits)

    @property
    def depth(self) -> int:
        return max(len(bits) for bits in self._leaf_bits)
