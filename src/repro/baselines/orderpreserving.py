"""Order-preserving placement baseline (paper §2's LSH trade-off).

The alternative design family the paper surveys replaces the uniform
hash with a locality-sensitive one, placing records *directly by key* on
the ring.  Range queries become trivial — walk the contiguous arc of
peers covering ``[l, u)`` — but storage load now mirrors the data
distribution: "DHTs with LSH have to sacrifice their load balance" (§2).

This baseline makes that sacrifice measurable.  Peers own equal arcs of
``[0, 1)`` and each record lives on the peer owning its key; the E15
extension compares its per-peer Gini against LHT's under skewed data.
"""

from __future__ import annotations

import bisect
import math
from typing import Any

import numpy as np

from repro.core.bucket import Record
from repro.core.interval import Range
from repro.errors import ConfigurationError

__all__ = ["OrderPreservingIndex"]


class OrderPreservingIndex:
    """Records placed at position ``δ`` on a ring of equal-arc peers.

    Not a :class:`~repro.dht.base.DHT` client — it *is* the substrate
    (the defining property of the locality-sensitive family: the overlay
    itself must change, which is why the paper's over-DHT schemes cannot
    be deployed this way and vice versa).
    """

    def __init__(self, n_peers: int = 64, seed: int = 0) -> None:
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        del seed  # arcs are deterministic; kept for factory symmetry
        self.n_peers = n_peers
        self._stores: list[list[Record]] = [[] for _ in range(n_peers)]
        self.record_count = 0

    def _peer_for(self, key: float) -> int:
        return min(int(key * self.n_peers), self.n_peers - 1)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def insert(self, key: float, value: Any = None) -> int:
        """One routed put to the arc owner; returns DHT-lookups (1)."""
        record = Record(key, value)
        store = self._stores[self._peer_for(key)]
        bisect.insort(store, record)
        self.record_count += 1
        return 1

    def exact_match(self, key: float) -> tuple[Record | None, int]:
        """One routed get; returns (record or None, DHT-lookups)."""
        store = self._stores[self._peer_for(key)]
        idx = bisect.bisect_left(store, Record(key))
        if idx < len(store) and store[idx].key == key:
            return store[idx], 1
        return None, 1

    def range_query(self, lo: float, hi: float) -> tuple[list[Record], int]:
        """Walk the contiguous arc of peers covering ``[lo, hi)``.

        Returns (records, DHT-lookups).  Cost is exactly the number of
        arc owners touched — the efficiency the locality-sensitive
        family buys with its load-balance sacrifice.
        """
        rng = Range(lo, hi)
        if rng.is_empty:
            return [], 0
        first = self._peer_for(lo)
        last = self._peer_for(math.nextafter(hi, 0.0)) if hi > 0 else first
        out: list[Record] = []
        lookups = 0
        for peer in range(first, last + 1):
            lookups += 1
            out.extend(r for r in self._stores[peer] if rng.contains(r.key))
        return out, lookups

    # ------------------------------------------------------------------
    # Load-balance introspection
    # ------------------------------------------------------------------

    def peer_loads(self) -> dict[int, int]:
        """Records per peer — tracks the data distribution by design."""
        return {peer: len(store) for peer, store in enumerate(self._stores)}

    def __len__(self) -> int:
        return self.record_count


def demo_skew(n: int = 10_000, seed: int = 0) -> tuple[float, float]:
    """Gini under uniform vs pareto data (used in docs/tests)."""
    from repro.analysis.stats import gini_coefficient
    from repro.workloads.datasets import make_keys

    out = []
    for distribution in ("uniform", "pareto"):
        index = OrderPreservingIndex(n_peers=128)
        for key in make_keys(distribution, n, np.random.default_rng(seed)):
            index.insert(float(key))
        out.append(gini_coefficient(list(index.peer_loads().values())))
    return out[0], out[1]
