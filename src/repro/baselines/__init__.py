"""Baseline indexing schemes the paper compares against (or surveys).

* :mod:`repro.baselines.pht` — Prefix Hash Tree, the paper's main
  comparison point (state of the art for maintenance efficiency).
* :mod:`repro.baselines.dst` — Distributed Segment Tree (related work,
  §2): query-fast but maintenance-heavy, used in extension benches.
* :mod:`repro.baselines.naive` — raw-DHT placement with no index, the
  strawman the paper's introduction motivates against.
"""

from repro.baselines.dst import DSTIndex
from repro.baselines.naive import NaiveIndex
from repro.baselines.orderpreserving import OrderPreservingIndex
from repro.baselines.pht import PHTIndex, PHTNode

__all__ = ["DSTIndex", "NaiveIndex", "OrderPreservingIndex", "PHTIndex", "PHTNode"]
