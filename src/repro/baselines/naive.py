"""Raw-DHT strawman: no index at all (the paper's §1 motivation).

Records are placed by hashing their key directly (``κ = δ``, the "raw
DHT" of §3.1).  Exact-match is a single DHT-get, but all data locality is
destroyed: a range query can only be answered by sweeping every peer (a
broadcast), which is what makes over-DHT indexes necessary.  Used by the
examples to demonstrate the problem LHT solves.
"""

from __future__ import annotations

from typing import Any

from repro.core.bucket import Record
from repro.core.interval import Range
from repro.dht.base import DHT

__all__ = ["NaiveIndex"]


class NaiveIndex:
    """Direct key hashing with no locality preservation."""

    def __init__(self, dht: DHT) -> None:
        self.dht = dht
        self.record_count = 0

    @staticmethod
    def _key(key: float) -> str:
        return f"raw:{key!r}"

    def insert(self, key: float, value: Any = None) -> int:
        """One DHT-put; returns the DHT-lookups used (always 1)."""
        self.dht.put(self._key(key), Record(key, value))
        self.record_count += 1
        return 1

    def exact_match(self, key: float) -> tuple[Record | None, int]:
        """One DHT-get; returns (record or None, DHT-lookups)."""
        value = self.dht.get(self._key(key))
        return (value if isinstance(value, Record) else None), 1

    def range_query(self, lo: float, hi: float) -> tuple[list[Record], int]:
        """Broadcast sweep: every peer must be contacted.

        Returns (matching records, DHT-lookups charged).  The cost is one
        lookup per *peer* — with uniform hashing no peer can be ruled
        out — which is the scalability wall the paper's indexes remove.
        """
        rng = Range(lo, hi)
        matches = [
            value
            for key in self.dht.keys()
            if isinstance(value := self.dht.peek(key), Record)
            and rng.contains(value.key)
        ]
        matches.sort()
        return matches, self.dht.n_peers
