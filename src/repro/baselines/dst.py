"""Distributed Segment Tree baseline (Zheng et al., IPTPS 2006; paper §2).

DST fixes a complete binary segmentation of the key space to depth ``L``
and *replicates* every record to each of the ``L + 1`` segment nodes on
its root-to-leaf path.  Range queries decompose the range into its
minimal canonical segment cover (≤ ``2L`` segments) and fetch each node
with one parallel DHT-get — one-step latency after the initial fan-out —
but every insertion pays ``L + 1`` DHT-puts and ships ``L + 1`` record
copies.  The paper cites exactly this trade-off ("due to replication,
data insertion in DST is inefficient"); the extension benches quantify
it against LHT.
"""

from __future__ import annotations

from typing import Any

from repro.core.bucket import Record
from repro.core.config import IndexConfig
from repro.core.interval import Range
from repro.core.keys import key_bits
from repro.core.label import Label, ROOT
from repro.core.results import RangeQueryResult
from repro.dht.base import DHT
from repro.errors import ConfigurationError

__all__ = ["DSTIndex"]


class DSTIndex:
    """A Distributed Segment Tree over a generic DHT.

    Args:
        dht: Any put/get substrate.
        depth: Segmentation depth ``L``; leaf segments have width
            ``2**-L``.  Defaults to a depth comparable with an LHT tree
            at the paper's θ=100 and 2^16 records.
    """

    def __init__(self, dht: DHT, depth: int = 10) -> None:
        if depth < 1:
            raise ConfigurationError(f"DST depth must be >= 1: {depth}")
        self.dht = dht
        self.depth = depth
        self.record_count = 0
        self.insert_lookups = 0
        self.records_replicated = 0

    # ------------------------------------------------------------------
    # Node addressing
    # ------------------------------------------------------------------

    @staticmethod
    def _node_key(label: Label) -> str:
        return f"dst:{label}"

    def _path_labels(self, key: float) -> list[Label]:
        """The L+1 segment nodes covering ``key``, root first."""
        bits = key_bits(key, self.depth)
        labels = [ROOT]
        for i in range(1, self.depth + 1):
            labels.append(Label("0" + bits[:i]))
        return labels

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def insert(self, key: float, value: Any = None) -> int:
        """Replicate the record to every ancestor segment (L+1 DHT-puts);
        returns the DHT-lookups used."""
        record = Record(key, value)
        lookups = 0
        for label in self._path_labels(key):
            node_key = self._node_key(label)
            stored = self.dht.peek(node_key)
            bucket: list[Record] = stored if isinstance(stored, list) else []
            bucket.append(record)
            self.dht.put(node_key, bucket)
            lookups += 1
        self.record_count += 1
        self.insert_lookups += lookups
        self.records_replicated += lookups
        return lookups

    def _canonical_cover(self, rng: Range) -> list[Label]:
        """Minimal set of segment nodes whose intervals tile the range."""
        cover: list[Label] = []

        def visit(label: Label) -> None:
            interval = label.interval
            if not interval.overlaps(rng):
                return
            if interval.covered_by(rng) or label.depth >= self.depth + 1:
                cover.append(label)
                return
            visit(label.left_child)
            visit(label.right_child)

        visit(ROOT)
        return cover

    def range_query(self, lo: float, hi: float) -> RangeQueryResult:
        """Fetch the canonical cover in parallel (one get per segment)."""
        rng = Range(lo, hi)
        if rng.is_empty:
            return RangeQueryResult((), 0, 0, 0, 0)
        cover = self._canonical_cover(rng)
        records: list[Record] = []
        seen: set[tuple[float, int]] = set()
        lookups = 0
        failed = 0
        for label in cover:
            stored = self.dht.get(self._node_key(label))
            lookups += 1
            if stored is None:
                failed += 1
                continue
            for record in stored:
                # Deduplicate replicas: partially covered boundary
                # segments are clipped to the range.
                fingerprint = (record.key, id(record))
                if rng.contains(record.key) and fingerprint not in seen:
                    seen.add(fingerprint)
                    records.append(record)
        records.sort()
        return RangeQueryResult(
            records=tuple(records),
            dht_lookups=lookups,
            failed_lookups=failed,
            parallel_steps=1,
            buckets_visited=lookups - failed,
        )
