"""Unified CLI for the correctness tooling: ``python -m repro.devtools``.

Subcommands:

* ``lint`` — the repo-specific per-file AST linter (also available
  directly as ``python -m repro.devtools.lint``);
* ``analyze`` — the whole-program contract analyzer: import graph +
  call graph rules LHT007+ (also ``python -m repro.devtools.flow``);
* ``determinism`` — the same-seed trace-diff harness (also
  ``python -m repro.devtools.determinism``);
* ``sanitize`` — run a seeded workload with the runtime sanitizer active
  and report how many invariant sweeps passed;
* ``profile`` — the deterministic per-phase hot-spot profiler over the
  paper-scale build/lookup/range workload (also
  ``python -m repro.devtools.profile``);
* ``benchgate`` — the count/wall-clock benchmark regression gate (also
  ``python -m repro.devtools.benchgate``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.devtools import determinism as _determinism
from repro.devtools import flow as _flow
from repro.devtools import lint as _lint


def _run_sanitize(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools sanitize",
        description="Replay a seeded workload with LHT_SANITIZE semantics "
        "on and report the invariant sweeps performed.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--substrate", choices=sorted(_determinism.SUBSTRATES), default="local"
    )
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--peers", type=int, default=16)
    parser.add_argument("--theta", type=int, default=8)
    args = parser.parse_args(argv)

    from repro.core.config import IndexConfig
    from repro.core.index import LHTIndex
    from repro.errors import SanitizerError
    from repro.sim.rng import RngStreams, derive_seed
    from repro.workloads.trace import generate_trace, replay

    streams = RngStreams(args.seed)
    trace = generate_trace(args.ops, streams.stream("workload"))
    dht = _determinism.SUBSTRATES[args.substrate](
        args.peers, derive_seed(args.seed, "substrate")
    )
    index = LHTIndex(
        dht, IndexConfig(theta_split=args.theta, sanitize=True)
    )
    try:
        totals = replay(index, trace)
    except SanitizerError as exc:
        print(f"sanitizer FAILED: {exc}")
        return 1
    sanitizer = index._sanitizer
    if sanitizer is None:  # unreachable: sanitize=True was just set
        print("sanitizer FAILED to activate")
        return 1
    print(
        f"sanitizer ok: {sanitizer.checks_run} sweeps, "
        f"{sanitizer.splits_checked} splits and "
        f"{sanitizer.merges_checked} merges checked over "
        f"{int(sum(totals[f'n_{op}'] for op in ('insert', 'delete', 'lookup', 'range')))} ops"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in {"-h", "--help"}:
        print(__doc__)
        print(
            "usage: python -m repro.devtools "
            "{lint,analyze,determinism,sanitize,profile,benchgate} ..."
        )
        return 0
    command, rest = argv[0], argv[1:]
    if command == "lint":
        return _lint.main(rest)
    if command == "analyze":
        return _flow.main(rest)
    if command == "determinism":
        return _determinism.main(rest)
    if command == "sanitize":
        return _run_sanitize(rest)
    if command == "profile":
        from repro.devtools import profile as _profile

        return _profile.main(rest)
    if command == "benchgate":
        from repro.devtools import benchgate as _benchgate

        return _benchgate.main(rest)
    print(f"unknown subcommand: {command!r} (expected lint, analyze, "
          f"determinism, sanitize, profile, or benchgate)")
    return 2


if __name__ == "__main__":
    sys.exit(main())
