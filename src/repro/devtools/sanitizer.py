"""Runtime sanitizer for the distributed LHT state (ASan-style, opt-in).

With ``LHT_SANITIZE=1`` in the environment (or ``IndexConfig(sanitize=
True)``), every :class:`~repro.core.index.LHTIndex` re-validates the
paper's structural invariants after each mutating operation, through the
DHT's free oracle interface (``keys``/``peek``):

1. **Theorem 1 bijectivity** — every bucket is stored under ``f_n`` of
   its label, storage keys are distinct, and the name set equals the
   internal-node set derived from the live leaves.
2. **Partition** — leaf intervals tile ``[0, 1)`` with no gap or overlap.
3. **Bucket-size bounds** — no bucket exceeds ``θ_split - 1`` records
   unless it sits at the depth cap ``D`` (where splits are refused), and
   no leaf exceeds depth ``D``.
4. **Record placement** — every stored record key lies inside its leaf's
   interval (endpoint check over the sorted store).
5. **Theorem 2 splits** — after a split, the retained child's DHT key
   equals the parent's and exactly one sibling moved; merges are checked
   as the dual.

Cost is one oracle sweep per mutation (``O(leaves + records)``) — cheap
at test scale, and the reason the sanitizer is opt-in rather than always
on.  Failures raise :class:`repro.errors.SanitizerError` with the
operation context, mirroring how a memory sanitizer reports the faulting
access rather than the later crash.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.core.bucket import LeafBucket
from repro.core.label import Label, VIRTUAL_ROOT
from repro.core.naming import naming
from repro.errors import LabelError, SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.config import IndexConfig
    from repro.core.results import MergeEvent, SplitEvent
    from repro.dht.base import DHT

__all__ = ["ENV_VAR", "IndexSanitizer", "sanitizer_enabled"]

#: Environment variable that switches the sanitizer on globally.
ENV_VAR = "LHT_SANITIZE"

_FALSY = frozenset({"", "0", "false", "off", "no"})

#: Leaf count up to which every mutation gets a full sweep; above it,
#: sweeps are amortized to one per ``leaves / _SWEEP_BASE`` mutations so
#: the per-operation overhead stays constant.
_SWEEP_BASE = 32


def sanitizer_enabled(default: bool = False) -> bool:
    """Whether ``LHT_SANITIZE`` asks for sanitized index operations."""
    value = os.environ.get(ENV_VAR)
    if value is None:
        return default
    return value.strip().lower() not in _FALSY


def sanitizer_mode() -> str:
    """``"off"``, ``"on"`` (adaptive sweeps), or ``"full"`` (sweep every
    mutation, regardless of tree size — ``LHT_SANITIZE=full``)."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in _FALSY:
        return "off"
    return "full" if value == "full" else "on"


class IndexSanitizer:
    """Re-validates LHT structural invariants after mutating operations.

    Reads the whole distributed state through the oracle interface, so it
    never charges DHT-lookups and never perturbs the metrics that the
    experiments measure.
    """

    def __init__(
        self, dht: "DHT", config: "IndexConfig", *, full_sweeps: bool | None = None
    ) -> None:
        self._dht = dht
        self._config = config
        self.checks_run = 0
        self.splits_checked = 0
        self.merges_checked = 0
        # Bucket sizes at the previous sweep, keyed by leaf bit string.
        # Needed for the size-bound check: a median split may shed zero
        # records under skew (§5 allows at most one split per insertion),
        # so occupancy may legitimately exceed capacity — but only ever
        # by one record per mutation.
        self._sizes: dict[str, int] = {}
        # Sweep scheduling: small trees sweep every mutation; large trees
        # amortize (one sweep per leaves/_SWEEP_BASE mutations), keeping
        # the per-operation cost constant.  Structural changes (splits,
        # merges) always force a sweep, and ``LHT_SANITIZE=full`` forces
        # one per mutation at any size.
        self._full_sweeps = (
            sanitizer_mode() == "full" if full_sweeps is None else full_sweeps
        )
        self._mutations_since_sweep = 0
        self._sweep_due = False

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def _buckets(self, context: str) -> dict[Label, LeafBucket]:
        """Oracle snapshot: storage label -> bucket for every stored leaf."""
        out: dict[Label, LeafBucket] = {}
        for key in list(self._dht.keys()):
            value = self._dht.peek(key)
            if not isinstance(value, LeafBucket):
                continue
            try:
                storage = Label.parse(key)
            except LabelError as exc:
                raise SanitizerError(
                    f"[{context}] bucket {value!r} stored under unparsable "
                    f"DHT key {key!r}"
                ) from exc
            if storage in out:
                raise SanitizerError(
                    f"[{context}] two buckets stored under DHT key {key!r}"
                )
            out[storage] = value
        return out

    # ------------------------------------------------------------------
    # Full structural validation
    # ------------------------------------------------------------------

    def check(self, context: str = "check") -> None:
        """Validate every invariant; raise :class:`SanitizerError` if any
        fails."""
        buckets = self._buckets(context)
        if not buckets:
            raise SanitizerError(f"[{context}] no leaf buckets stored")

        config = self._config
        leaves: set[Label] = set()
        for storage, bucket in buckets.items():
            label = bucket.label
            if naming(label) != storage:
                raise SanitizerError(
                    f"[{context}] Theorem 1 violated: bucket {label} stored "
                    f"under {storage}, expected f_n({label}) = {naming(label)}"
                )
            if label in leaves:
                raise SanitizerError(
                    f"[{context}] duplicate leaf label {label}"
                )
            leaves.add(label)
            if label.depth > config.max_depth:
                raise SanitizerError(
                    f"[{context}] leaf {label} deeper than max depth "
                    f"{config.max_depth}"
                )
            if len(bucket) > config.record_capacity:
                self._check_overflow(label, len(bucket), context)
            records = bucket.records
            if records:
                interval = label.interval
                first, last = records[0].key, records[-1].key
                if not interval.contains(first) or not interval.contains(last):
                    raise SanitizerError(
                        f"[{context}] record key outside leaf {label} "
                        f"interval {interval}: store spans "
                        f"[{first}, {last}]"
                    )

        self._check_partition(leaves, context)
        self._check_bijection(leaves, set(buckets), context)
        self._sizes = {
            bucket.label.bits: len(bucket) for bucket in buckets.values()
        }
        self._mutations_since_sweep = 0
        self._sweep_due = False
        self.checks_run += 1

    def _check_overflow(self, label: Label, size: int, context: str) -> None:
        """Size bound for an over-capacity bucket.

        Over-capacity occupancy is legal in LHT: a split cuts at the
        interval median regardless of data (§5), so a skewed bucket may
        retain everything, and only one split is attempted per insertion.
        What *is* invariant is the growth rate: occupancy can exceed the
        previous sweep's (or, for a fresh child, its parent's) by at most
        the one inserted record.  Buckets at the depth cap are exempt —
        splits are refused there, so they grow without bound by design.
        """
        if label.depth >= self._config.max_depth:
            return
        previous = self._sizes.get(label.bits)
        if previous is None and label.depth >= 1:
            previous = self._sizes.get(label.bits[:-1])
        if previous is None:
            previous = self._config.record_capacity
        # One record may arrive per mutation since the last sweep.
        allowance = max(1, self._mutations_since_sweep)
        if size > max(previous, self._config.record_capacity) + allowance:
            raise SanitizerError(
                f"[{context}] bucket {label} holds {size} records — over "
                f"capacity {self._config.record_capacity} and more than "
                f"{allowance} above the previous occupancy {previous}"
            )

    def _check_partition(self, leaves: set[Label], context: str) -> None:
        ordered = sorted(leaves, key=lambda lab: (lab.interval.low, lab.depth))
        cursor = 0.0
        for leaf in ordered:
            if leaf.interval.low != cursor:
                kind = "gap" if leaf.interval.low > cursor else "overlap"
                raise SanitizerError(
                    f"[{context}] partition violated: {kind} before leaf "
                    f"{leaf} at {cursor}"
                )
            cursor = leaf.interval.high
        if cursor != 1.0:
            raise SanitizerError(
                f"[{context}] partition violated: coverage stops at {cursor}"
            )

    def _check_bijection(
        self, leaves: set[Label], names: set[Label], context: str
    ) -> None:
        """Theorem 1: ``f_n`` maps the leaf set 1:1 onto the internal nodes."""
        internals: set[Label] = {VIRTUAL_ROOT}
        for leaf in leaves:
            internals.update(leaf.ancestors())
        if names != internals:
            extra = {str(n) for n in names - internals}
            missing = {str(n) for n in internals - names}
            raise SanitizerError(
                f"[{context}] Theorem 1 violated: storage keys != internal "
                f"nodes (unexpected keys: {sorted(extra) or '{}'}; "
                f"unnamed internals: {sorted(missing) or '{}'})"
            )

    # ------------------------------------------------------------------
    # Operation hooks (called by LHTIndex when the sanitizer is active)
    # ------------------------------------------------------------------

    def after_mutation(self, context: str) -> None:
        """Validate after one mutating index operation.

        Runs a full sweep when one is due under the adaptive schedule:
        always for small trees or after structural changes, one per
        ``leaves / 32`` mutations for large trees (constant amortized
        overhead), every mutation under ``LHT_SANITIZE=full``.
        """
        self._mutations_since_sweep += 1
        leaves = len(self._sizes)
        if (
            self._full_sweeps
            or self._sweep_due
            or leaves <= _SWEEP_BASE
            or self._mutations_since_sweep * _SWEEP_BASE >= leaves
        ):
            self.check(context)

    def check_split(self, event: "SplitEvent") -> None:
        """Theorem 2: the retained child keeps the parent's DHT key and
        exactly one sibling moved to a new peer."""
        parent, local, remote = event.parent, event.local, event.remote
        if {local, remote} != {parent.left_child, parent.right_child}:
            raise SanitizerError(
                f"[split {parent}] children {local}, {remote} are not the "
                f"two children of {parent}"
            )
        if naming(local) != naming(parent):
            raise SanitizerError(
                f"[split {parent}] Theorem 2 violated: retained child "
                f"{local} has name {naming(local)}, parent's is "
                f"{naming(parent)}"
            )
        if naming(remote) != parent:
            raise SanitizerError(
                f"[split {parent}] Theorem 2 violated: moved child {remote} "
                f"should be stored under the parent label {parent}, "
                f"f_n gives {naming(remote)}"
            )
        stayed = self._dht.peek(str(naming(parent)))
        moved = self._dht.peek(str(parent))
        if not isinstance(stayed, LeafBucket) or stayed.label != local:
            raise SanitizerError(
                f"[split {parent}] retained bucket under {naming(parent)} "
                f"is {stayed!r}, expected leaf {local}"
            )
        if not isinstance(moved, LeafBucket) or moved.label != remote:
            raise SanitizerError(
                f"[split {parent}] moved bucket under {parent} is "
                f"{moved!r}, expected leaf {remote}"
            )
        self._sweep_due = True
        self.splits_checked += 1

    def check_merge(self, event: "MergeEvent") -> None:
        """The dual of the split check (name arithmetic only).

        A merge chain may relabel the survivor again before hooks run, so
        live placement is left to the full sweep in :meth:`after_mutation`;
        here we check the Theorem 2 dual on the event itself: the absorbed
        child is the one whose name is the parent label (it held the
        parent-keyed slot the merge retires), so the survivor's own DHT
        key is unchanged.
        """
        survivor, absorbed = event.survivor, event.absorbed
        if absorbed.parent != survivor:
            raise SanitizerError(
                f"[merge {survivor}] absorbed {absorbed} is not a child of "
                f"the survivor"
            )
        if naming(absorbed) != survivor:
            raise SanitizerError(
                f"[merge {survivor}] Theorem 2 dual violated: absorbed child "
                f"{absorbed} is named {naming(absorbed)}, expected the "
                f"parent label {survivor}"
            )
        if naming(absorbed.sibling) != naming(survivor):
            raise SanitizerError(
                f"[merge {survivor}] Theorem 2 dual violated: retained child "
                f"{absorbed.sibling} does not share the parent's DHT key"
            )
        self._sweep_due = True
        self.merges_checked += 1
