"""Same-seed determinism harness: run a workload twice, diff the traces.

Every figure in EXPERIMENTS.md claims to be reproducible from a root
seed.  This module turns that claim into a mechanical check: it runs a
mixed insert/delete/lookup/range workload against a freshly built LHT
index, records a canonical per-operation event trace (costs, record
counts, splits, merges, plus a final structural digest), repeats the run
with the same seed, and reports the first divergence if the traces are
not byte-identical.

Exposed three ways:

* :func:`check_determinism` — library entry point returning a
  :class:`DeterminismReport`;
* ``python -m repro.devtools.determinism --substrate chord`` — CLI;
* the ``assert_deterministic`` pytest fixture in ``tests/conftest.py``.

All randomness flows through :class:`repro.sim.rng.RngStreams`, so the
harness itself upholds the rule it checks (see ``repro.devtools.lint``
rule LHT002).
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.core.stats import IndexInspector
from repro.dht.base import DHT
from repro.errors import ConfigurationError, DeterminismError, ReproError
from repro.sim.rng import RngStreams, derive_seed
from repro.workloads.trace import OpType, generate_trace

__all__ = [
    "SUBSTRATES",
    "DeterminismReport",
    "check_determinism",
    "run_workload",
    "trace_digest",
]


def _make_local(n_peers: int, seed: int) -> DHT:
    from repro.dht.local import LocalDHT

    return LocalDHT(n_peers=n_peers, seed=seed)


def _make_resilient_local(n_peers: int, seed: int) -> DHT:
    """ResilientDHT over a lossy LocalDHT: exercises the retry/breaker
    layer end-to-end — drops, backoff jitter, and degraded outcomes must
    all replay identically from the root seed."""
    from repro.dht.faulty import FaultyDHT
    from repro.dht.local import LocalDHT
    from repro.resilience.wrapper import ResilientDHT

    faulty = FaultyDHT(
        LocalDHT(n_peers=n_peers, seed=seed),
        get_drop_rate=0.1,
        seed=derive_seed(seed, "faults"),
    )
    return ResilientDHT(faulty, seed=derive_seed(seed, "retries"))


def _registry_factories() -> dict[str, Callable[[int, int], DHT]]:
    from repro.dht.registry import factories

    return factories()


#: Substrate name -> factory ``(n_peers, seed) -> DHT``: every substrate
#: enrolled in ``repro.dht.registry``, plus two wrapper arms.
SUBSTRATES: dict[str, Callable[[int, int], DHT]] = {
    **_registry_factories(),
    "resilient-local": _make_resilient_local,
    # The cache is index-level, not DHT-level: this arm runs the plain
    # local substrate with ``cache_enabled`` turned on in the IndexConfig
    # (see ``run_workload``), at a small capacity so eviction, split and
    # merge invalidation, and stale-entry fallbacks all replay.
    "cached-local": _make_local,
}

#: Substrates that enable the leaf cache on the *index* they drive.
_CACHED_SUBSTRATES = frozenset({"cached-local"})


def run_workload(
    seed: int = 0,
    substrate: str = "local",
    n_ops: int = 300,
    n_peers: int = 16,
    theta_split: int = 8,
    distribution: str = "uniform",
) -> list[str]:
    """Build an index, replay a generated workload, return its event trace.

    The trace is a list of canonical strings, one per operation, capturing
    everything observable about the run: the operation, its subject key,
    its DHT-lookup cost, the index's record/leaf counts afterwards, and
    any split or merge events.  A final line digests the end-state leaf
    structure and key multiset through the oracle inspector.
    """
    if substrate not in SUBSTRATES:
        raise ConfigurationError(
            f"unknown substrate {substrate!r}; pick one of "
            f"{sorted(SUBSTRATES)}"
        )
    streams = RngStreams(seed)
    trace = generate_trace(n_ops, streams.stream("workload"), distribution)
    dht = SUBSTRATES[substrate](n_peers, derive_seed(seed, "substrate"))
    config = IndexConfig(
        theta_split=theta_split,
        cache_enabled=substrate in _CACHED_SUBSTRATES,
        cache_capacity=32,
    )
    index = LHTIndex(dht, config)

    events: list[str] = []
    for step, operation in enumerate(trace):
        # Faulty substrates (e.g. the resilient-local stack) may fail an
        # operation even after retries; the *failure itself* must replay
        # deterministically, so it becomes a trace event rather than an
        # abort.  Fault-free substrates never take this path.
        try:
            if operation.op is OpType.INSERT:
                result = index.insert(operation.key)
                cost = result.dht_lookups
                detail = f" split={result.split.parent}" if result.split else ""
            elif operation.op is OpType.DELETE:
                dresult = index.delete(operation.key)
                cost = dresult.dht_lookups
                detail = f" deleted={dresult.deleted}"
                if dresult.merges:
                    merged = ",".join(str(m.survivor) for m in dresult.merges)
                    detail += f" merged={merged}"
            elif operation.op is OpType.LOOKUP:
                record, cost = index.exact_match(operation.key)
                detail = f" hit={record is not None}"
            else:
                hi = operation.hi if operation.hi is not None else operation.key
                rresult = index.range_query(operation.key, hi)
                cost = rresult.dht_lookups
                detail = f" hi={hi!r} n={len(rresult.records)}"
        except ReproError as exc:
            cost = 0
            detail = f" error={type(exc).__name__}"
        events.append(
            f"{step:05d} {operation.op.value} key={operation.key!r} "
            f"cost={cost} records={index.record_count} "
            f"leaves={index.leaf_count}{detail}"
        )

    inspector = IndexInspector(dht)
    stats = inspector.stats()
    keys_digest = hashlib.sha256(
        ",".join(repr(k) for k in inspector.all_keys()).encode()
    ).hexdigest()[:16]
    events.append(
        f"final leaves={stats.n_leaves} records={stats.n_records} "
        f"max_depth={stats.max_depth} keys_sha={keys_digest}"
    )
    return events


def trace_digest(events: Sequence[str]) -> str:
    """Stable digest of a whole event trace."""
    return hashlib.sha256("\n".join(events).encode()).hexdigest()


@dataclass(frozen=True, slots=True)
class DeterminismReport:
    """Outcome of comparing same-seed runs."""

    matched: bool
    runs: int
    seed: int
    substrate: str
    digests: tuple[str, ...]
    first_divergence: int | None
    diff: tuple[str, ...]

    def summary(self) -> str:
        if self.matched:
            return (
                f"deterministic: {self.runs} run(s) of seed {self.seed} on "
                f"{self.substrate!r} share digest {self.digests[0][:16]}"
            )
        lines = [
            f"NON-DETERMINISTIC: seed {self.seed} on {self.substrate!r} "
            f"diverges at trace line {self.first_divergence}:"
        ]
        lines.extend(self.diff)
        return "\n".join(lines)

    def raise_if_diverged(self) -> None:
        if not self.matched:
            raise DeterminismError(self.summary())


def _first_divergence(
    reference: Sequence[str], other: Sequence[str]
) -> tuple[int, list[str]]:
    limit = max(len(reference), len(other))
    for i in range(limit):
        a = reference[i] if i < len(reference) else "<trace ended>"
        b = other[i] if i < len(other) else "<trace ended>"
        if a != b:
            return i, [f"  run 0: {a}", f"  run n: {b}"]
    return -1, []


def check_determinism(
    seed: int = 0,
    substrate: str = "local",
    runs: int = 2,
    **workload_kwargs: object,
) -> DeterminismReport:
    """Run the workload ``runs`` times with one seed and diff the traces."""
    if runs < 2:
        raise ConfigurationError(f"need at least 2 runs to compare: {runs}")
    traces = [
        run_workload(seed=seed, substrate=substrate, **workload_kwargs)  # type: ignore[arg-type]
        for _ in range(runs)
    ]
    digests = tuple(trace_digest(t) for t in traces)
    first_divergence: int | None = None
    diff: tuple[str, ...] = ()
    for trace in traces[1:]:
        index, lines = _first_divergence(traces[0], trace)
        if index >= 0:
            first_divergence, diff = index, tuple(lines)
            break
    return DeterminismReport(
        matched=first_divergence is None,
        runs=runs,
        seed=seed,
        substrate=substrate,
        digests=digests,
        first_divergence=first_divergence,
        diff=diff,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.determinism",
        description="Replay a seeded workload twice and diff the traces.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--substrate", choices=sorted(SUBSTRATES), default="local"
    )
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--peers", type=int, default=16)
    parser.add_argument("--theta", type=int, default=8)
    parser.add_argument("--runs", type=int, default=2)
    args = parser.parse_args(argv)

    try:
        report = check_determinism(
            seed=args.seed,
            substrate=args.substrate,
            runs=args.runs,
            n_ops=args.ops,
            n_peers=args.peers,
            theta_split=args.theta,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.matched else 1


if __name__ == "__main__":
    sys.exit(main())
