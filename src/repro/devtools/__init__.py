"""Correctness tooling: custom linter, runtime sanitizer, determinism harness.

This package is the reproduction's answer to a sanitizer/race-detector
layer in a training stack: mechanical enforcement of the properties every
figure in EXPERIMENTS.md silently relies on.

* :mod:`repro.devtools.lint` — an AST-based per-file linter with
  repo-specific rules (``python -m repro.devtools.lint src/``): no
  wall-clock reads or global randomness inside the deterministic
  packages (``sim``, ``dht``, ``core``, ``cache``, ``baselines``,
  ``resilience``), no bare ``assert`` in library code, no mutable
  default arguments, and every concrete DHT substrate must implement
  the full :class:`repro.dht.base.DHT` interface.
* :mod:`repro.devtools.flow` — the whole-program contract analyzer
  (``python -m repro.devtools analyze src/``): parses the tree once,
  builds the import and call graphs, and checks cross-module contracts
  (rules LHT007+) — transitive hermeticity, kernel encapsulation, route
  purity, DHT exception flow, and process-pool worker safety.
* :mod:`repro.devtools.sanitizer` — an opt-in runtime sanitizer
  (``LHT_SANITIZE=1``) that re-validates the LHT structural invariants
  (Theorem 1 bijectivity, leaf-interval partition, bucket-size bounds,
  Theorem 2 split behaviour) after every mutating index operation.
* :mod:`repro.devtools.determinism` — a same-seed trace-diff harness
  proving a workload replays bit-for-bit identically, exposed as a CLI
  subcommand and (via ``tests/conftest.py``) a pytest fixture.

See ``docs/static_analysis.md`` for the full rule catalogue and usage.
"""

from typing import Any

# Submodules are exported lazily (PEP 562): ``python -m
# repro.devtools.lint`` must not re-import the module it is about to run,
# and the sanitizer is imported from repro.core.index, which the
# determinism harness imports in turn.
_EXPORTS = {
    "DeterminismReport": "repro.devtools.determinism",
    "check_determinism": "repro.devtools.determinism",
    "run_workload": "repro.devtools.determinism",
    "trace_digest": "repro.devtools.determinism",
    "LINT_RULES": "repro.devtools.lint",
    "Violation": "repro.devtools.lint",
    "lint_paths": "repro.devtools.lint",
    "lint_source": "repro.devtools.lint",
    "ANALYZER_RULES": "repro.devtools.flow",
    "analyze_paths": "repro.devtools.flow",
    "build_program": "repro.devtools.flow",
    "IndexSanitizer": "repro.devtools.sanitizer",
    "sanitizer_enabled": "repro.devtools.sanitizer",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "DeterminismReport",
    "check_determinism",
    "run_workload",
    "trace_digest",
    "LINT_RULES",
    "Violation",
    "lint_paths",
    "lint_source",
    "ANALYZER_RULES",
    "analyze_paths",
    "build_program",
    "IndexSanitizer",
    "sanitizer_enabled",
]
