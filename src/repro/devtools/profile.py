"""Deterministic cProfile/timeit harness over the paper-scale hot paths.

Wall-clock optimisation without a profile is guesswork, and a profile
that changes shape between runs is noise.  This module fixes both: one
seeded workload (2^20 keys over a ≥1k-peer ring at ``full`` scale, a
reduced ``smoke`` shape for CI) is driven through the three phases the
ROADMAP prices — bulk **build**, Zipf-skewed exact-match **lookup**, and
narrow **range** sweeps — and each phase runs under :mod:`cProfile`.

The hot-spot report ranks functions by *call count*, which is a pure
function of the seed, and only displays the measured times alongside —
so the ranking is byte-stable across same-seed runs on any host, while
the seconds tell you where they went.  ``tests/test_profile.py`` pins
that stability.

The workload builders here are shared with the benchgate ``scale``
suite (:func:`repro.devtools.benchgate.measure_scale`): the gate banks
the phase wall-clock and counts, the profiler explains them.

Usage::

    python -m repro.devtools profile            # full scale (~10s pre-PR)
    python -m repro.devtools profile --smoke    # CI shape, sub-second
    python -m repro.devtools profile --json     # machine-readable report
"""

from __future__ import annotations

import argparse
import cProfile
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.local import LocalDHT
from repro.sim.rng import derive_seed
from repro.workloads.queries import zipf_rank_choice

__all__ = [
    "SCALE_PROFILES",
    "PhaseResult",
    "run_scale_phases",
    "format_report",
    "main",
]

#: The two workload shapes.  ``full`` is the banked paper-scale run
#: (2^20 keys, 1024 peers); ``smoke`` is the same pipeline small enough
#: for a CI leg.  Baselines are only comparable against identical
#: parameters, so benchgate records the shape next to its numbers.
SCALE_PROFILES: dict[str, dict[str, Any]] = {
    "smoke": {
        "seed": 1,
        "n_keys": 1 << 14,
        "n_peers": 128,
        "n_probes": 2000,
        "n_ranges": 8,
        "theta_split": 100,
        "max_depth": 24,
        "probe_skew": 1.1,
        "range_lo_max": 0.99,
        "range_width_min": 0.0005,
        "range_width_max": 0.002,
    },
    "full": {
        "seed": 1,
        "n_keys": 1 << 20,
        "n_peers": 1024,
        "n_probes": 20000,
        "n_ranges": 32,
        "theta_split": 100,
        "max_depth": 24,
        "probe_skew": 1.1,
        "range_lo_max": 0.99,
        "range_width_min": 0.0005,
        "range_width_max": 0.002,
    },
}


@dataclass(slots=True)
class PhaseResult:
    """One profiled phase: wall seconds, workload counts, hot spots.

    ``hotspots`` rows are ``{"function", "calls", "tottime_s",
    "cumtime_s"}`` ranked by descending call count (ties broken by
    function name) — the deterministic ordering; times are informative
    only.
    """

    name: str
    seconds: float
    counts: dict[str, float]
    hotspots: list[dict[str, Any]] = field(default_factory=list)


def _normalize_function(filename: str, line: int, func: str) -> str:
    """A host-independent display name for one profiled function."""
    if filename.startswith("~") or filename.startswith("<"):
        return f"<builtin>:{func}"
    parts = Path(filename).parts
    for anchor in ("repro", "site-packages"):
        if anchor in parts:
            tail = "/".join(parts[parts.index(anchor):])
            return f"{tail}:{line}:{func}"
    return f"{Path(filename).name}:{line}:{func}"


def _hotspots(profiler: cProfile.Profile, top: int) -> list[dict[str, Any]]:
    profiler.create_stats()
    rows = [
        {
            "function": _normalize_function(*key),
            "calls": int(nc),
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        }
        for key, (cc, nc, tt, ct, _callers) in profiler.stats.items()  # type: ignore[attr-defined]
    ]
    rows.sort(key=lambda r: (-r["calls"], r["function"]))
    return rows[:top]


def run_scale_phases(
    params: dict[str, Any],
    *,
    profile_phases: bool = False,
    top: int = 12,
) -> list[PhaseResult]:
    """Run the build/lookup/range phases of one scale workload.

    With ``profile_phases=False`` (the benchgate path) each phase is
    timed only; with ``True`` each phase also runs under its own
    :class:`cProfile.Profile` and reports its ``top`` hot spots.
    Workload generation (key draws, probe streams, range endpoints) sits
    *outside* the timed sections, so the phases measure index work only.
    """
    seed = params["seed"]
    rng = np.random.default_rng(derive_seed(seed, "scale:keys"))
    keys = [float(k) for k in rng.random(params["n_keys"])]
    dht = LocalDHT(n_peers=params["n_peers"], seed=derive_seed(seed, "scale:sub"))
    index = LHTIndex(
        dht,
        IndexConfig(
            theta_split=params["theta_split"], max_depth=params["max_depth"]
        ),
    )
    phases: list[PhaseResult] = []

    def timed(name: str, fn: Callable[[], Any]) -> Any:
        profiler = cProfile.Profile() if profile_phases else None
        started = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        out = fn()
        if profiler is not None:
            profiler.disable()
        seconds = time.perf_counter() - started
        phases.append(
            PhaseResult(
                name=name,
                seconds=seconds,
                counts={},
                hotspots=_hotspots(profiler, top) if profiler else [],
            )
        )
        return out

    timed("build", lambda: index.bulk_load(keys, fast=True))
    phases[-1].counts = {"leaves": float(index.leaf_count)}

    prng = np.random.default_rng(derive_seed(seed, "scale:probes"))
    probes = [
        float(k)
        for k in zipf_rank_choice(
            np.asarray(keys), params["probe_skew"], params["n_probes"], prng
        )
    ]
    before = dht.metrics.snapshot()

    def lookup() -> None:
        for key in probes:
            index.exact_match(key)

    timed("lookup", lookup)
    phases[-1].counts = {
        "lookup_gets": float((dht.metrics.snapshot() - before).gets)
    }

    rrng = np.random.default_rng(derive_seed(seed, "scale:ranges"))
    spans = [
        (
            lo := float(rrng.uniform(0.0, params["range_lo_max"])),
            float(
                min(
                    1.0,
                    lo
                    + rrng.uniform(
                        params["range_width_min"], params["range_width_max"]
                    ),
                )
            ),
        )
        for _ in range(params["n_ranges"])
    ]

    def ranges() -> int:
        got = 0
        for lo, hi in spans:
            got += len(index.range_query(lo, hi).records)
        return got

    got = timed("range", ranges)
    phases[-1].counts = {"range_records": float(got)}
    return phases


def format_report(profile_name: str, phases: list[PhaseResult]) -> str:
    """Human-readable per-phase hot-spot report."""
    lines = [f"scale profile '{profile_name}'"]
    for phase in phases:
        counts = ", ".join(f"{k}={v:g}" for k, v in sorted(phase.counts.items()))
        lines.append(f"\n== {phase.name}: {phase.seconds:.4f}s  ({counts})")
        if phase.hotspots:
            lines.append(
                f"{'calls':>10}  {'tottime':>9}  {'cumtime':>9}  function"
            )
            for row in phase.hotspots:
                lines.append(
                    f"{row['calls']:>10}  {row['tottime_s']:>9.4f}  "
                    f"{row['cumtime_s']:>9.4f}  {row['function']}"
                )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools profile",
        description="Deterministic per-phase hot-spot profiler over the "
        "paper-scale build/lookup/range workload.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced CI shape instead of the full 2^20-key scale",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(SCALE_PROFILES),
        default=None,
        help="explicit workload shape (overrides --smoke)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--top", type=int, default=12, help="hot spots shown per phase"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    name = args.profile or ("smoke" if args.smoke else "full")
    params = dict(SCALE_PROFILES[name])
    if args.seed is not None:
        params["seed"] = args.seed
    phases = run_scale_phases(params, profile_phases=True, top=args.top)
    if args.json:
        payload = {
            "profile": name,
            "params": params,
            "phases": [
                {
                    "name": p.name,
                    "seconds": p.seconds,
                    "counts": p.counts,
                    "hotspots": p.hotspots,
                }
                for p in phases
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(name, phases))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
