"""Repo-specific AST linter (``python -m repro.devtools.lint src/``).

Every figure in the reproduction is regenerated from a seed, so the
simulation core must be *hermetic*: no wall-clock reads, no hidden global
randomness, and loud typed failures rather than strippable ``assert``
statements.  Generic linters cannot know these rules; this one does.

Rule catalogue (see ``docs/static_analysis.md`` for rationale):

========  ==============================================================
Code      Rule
========  ==============================================================
LHT001    No wall-clock reads (``time.time``, ``datetime.now``, …)
          inside the deterministic packages ``sim/``, ``dht/``, ``core/``,
          ``cache/``, ``baselines/``, ``resilience/``, ``serve/``.
LHT002    No global randomness (stdlib ``random``, ``numpy.random``
          module-level functions, unseeded ``default_rng()``) inside the
          deterministic packages; randomness flows through
          :mod:`repro.sim.rng` or an explicitly seeded generator.
LHT003    No bare ``assert`` in library code — ``python -O`` strips
          asserts, so invariants must raise typed :mod:`repro.errors`
          exceptions.
LHT004    No mutable default arguments.
LHT005    Every concrete class deriving from :class:`repro.dht.base.DHT`
          implements the full abstract interface.
LHT006    Concrete substrates built on
          :class:`repro.dht.kernel.SubstrateBase` do not override the
          kernel-owned storage methods (``put``, ``get``, ``remove``,
          ``peek``, ``local_write``, ``peer_loads``).
LHT012    Every concrete substrate in ``repro/dht`` is enrolled in
          :mod:`repro.dht.registry` (a ``register(...)`` call names its
          class) — the registry is what feeds the conformance, soak,
          fault, determinism, and benchgate matrices, so an
          unregistered substrate would silently skip them all.
          (LHT007-011 are the whole-program rules in
          ``repro.devtools.flow``.)
========  ==============================================================

Violations can be suppressed per line with ``# noqa`` or
``# noqa: LHT003`` trailing comments.  The module is dependency-free
(stdlib ``ast`` only) so it runs anywhere the repo checks out.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "KERNEL_OWNED_METHODS",
    "LINT_RULES",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]

#: Rule code -> one-line description (the user-facing catalogue).
LINT_RULES: dict[str, str] = {
    "LHT001": "wall-clock read in a deterministic package",
    "LHT002": "global randomness in a deterministic package",
    "LHT003": "bare assert in library code",
    "LHT004": "mutable default argument",
    "LHT005": "DHT substrate does not implement the full base interface",
    "LHT006": "substrate overrides a kernel-owned storage method",
    "LHT012": "substrate not enrolled in repro.dht.registry",
}

#: Methods the peer-store kernel owns; substrates must not re-grow them
#: (LHT006) — storage and metrics charging live in exactly one place.
KERNEL_OWNED_METHODS = frozenset(
    {"put", "get", "remove", "peek", "local_write", "peer_loads"}
)

#: Top-level packages whose modules must be hermetic (LHT001/LHT002).
#: ``cache`` and ``baselines`` perform routed operations whose counts
#: feed figures, so they carry the same contract as the core; ``serve``
#: feeds the gated serving benchmark, so its time is the simulated
#: clock and its randomness the seeded workload generator.
DETERMINISTIC_PACKAGES = frozenset(
    {"sim", "dht", "core", "resilience", "cache", "baselines", "serve"}
)

#: Fully qualified callables that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` attributes that are *not* global mutable state.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Constructors whose call as a default argument produces shared state.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


@dataclass(frozen=True, slots=True)
class Violation:
    """One lint finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """A JSON-serializable dict (``--format json`` output shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# Path classification
# ----------------------------------------------------------------------


def _is_test_file(path: Path) -> bool:
    """Test modules may use bare asserts and ad-hoc randomness."""
    name = path.name
    return (
        "tests" in path.parts
        or name.startswith("test_")
        or name.startswith("bench_")
        or name == "conftest.py"
    )


def _in_deterministic_package(path: Path) -> bool:
    return any(part in DETERMINISTIC_PACKAGES for part in path.parts[:-1])


def _in_dht_package(path: Path) -> bool:
    # The resilience wrappers subclass DHT and must honour the same
    # interface contract (LHT005) as the substrates proper.
    return any(part in ("dht", "resilience") for part in path.parts[:-1])


# ----------------------------------------------------------------------
# Name resolution
# ----------------------------------------------------------------------


class _ImportTable:
    """Maps local names to the fully qualified objects they denote."""

    def __init__(self) -> None:
        self._modules: dict[str, str] = {}  # alias -> module dotted path
        self._objects: dict[str, str] = {}  # alias -> module.attr

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self._modules[local] = target

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:  # relative imports are in-repo
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self._objects[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path a ``Name``/``Attribute`` chain refers to, if known."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self._objects:
            base = self._objects[root]
        elif root in self._modules:
            base = self._modules[root]
        else:
            return None
        return ".".join([base, *reversed(parts)])


# ----------------------------------------------------------------------
# Per-file visitor (rules LHT001-LHT004)
# ----------------------------------------------------------------------


class _FileVisitor(ast.NodeVisitor):
    def __init__(self, path: Path, *, deterministic: bool, library: bool) -> None:
        self.path = path
        self.deterministic = deterministic
        self.library = library
        self.imports = _ImportTable()
        self.violations: list[Violation] = []

    # -- collection helpers -------------------------------------------

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=str(self.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.add_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.add_import_from(node)
        if self.deterministic and node.module == "random" and not node.level:
            names = ", ".join(alias.name for alias in node.names)
            self._flag(
                node,
                "LHT002",
                f"stdlib random import ({names}) — draw from repro.sim.rng "
                "streams instead",
            )
        self.generic_visit(node)

    # -- LHT001 / LHT002 ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.deterministic:
            dotted = self.imports.resolve(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                self._flag(
                    node,
                    "LHT001",
                    f"wall-clock call {dotted}() — simulated time comes from "
                    "repro.sim.clock.Clock",
                )
            elif dotted is not None:
                self._check_randomness_call(node, dotted)
        self.generic_visit(node)

    def _check_randomness_call(self, node: ast.Call, dotted: str) -> None:
        if dotted.startswith("random."):
            self._flag(
                node,
                "LHT002",
                f"global-state call {dotted}() — draw from repro.sim.rng "
                "streams instead",
            )
            return
        for prefix in ("numpy.random.", "np.random."):
            if dotted.startswith(prefix):
                attr = dotted[len(prefix):].split(".")[0]
                if attr not in _NUMPY_RANDOM_ALLOWED:
                    self._flag(
                        node,
                        "LHT002",
                        f"numpy global random state {dotted}() — construct a "
                        "seeded Generator via repro.sim.rng",
                    )
                elif attr == "default_rng" and not node.args and not node.keywords:
                    self._flag(
                        node,
                        "LHT002",
                        "unseeded numpy.random.default_rng() — pass an "
                        "explicit seed (see repro.sim.rng.derive_seed)",
                    )
                return

    # -- LHT003 --------------------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        if self.library:
            self._flag(
                node,
                "LHT003",
                "bare assert in library code — raise a typed repro.errors "
                "exception (asserts vanish under python -O)",
            )
        self.generic_visit(node)

    # -- LHT004 --------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            if self._is_mutable_literal(default):
                name = getattr(node, "name", "<lambda>")
                self._flag(
                    default,
                    "LHT004",
                    f"mutable default argument in {name}() — default to None "
                    "and construct inside the body",
                )

    def _is_mutable_literal(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in _MUTABLE_FACTORIES
        return False


# ----------------------------------------------------------------------
# Cross-file rule: substrate interface completeness (LHT005)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class _ClassInfo:
    name: str
    path: Path
    line: int
    bases: list[str] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)
    abstract_methods: set[str] = field(default_factory=set)


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _collect_classes(tree: ast.Module, path: Path) -> list[_ClassInfo]:
    classes: list[_ClassInfo] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = _ClassInfo(name=node.name, path=path, line=node.lineno)
        for base in node.bases:
            if isinstance(base, ast.Name):
                info.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                info.bases.append(base.attr)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.add(item.name)
                if "abstractmethod" in _decorator_names(item):
                    info.abstract_methods.add(item.name)
        classes.append(info)
    return classes


def _check_substrates(
    parsed: list[tuple[Path, ast.Module]]
) -> list[Violation]:
    """Every concrete ``DHT`` subclass must cover the abstract interface.

    Inheritance is resolved by simple name within the parsed file set,
    which matches the flat class layout of ``repro/dht``; classes whose
    base chain never reaches ``DHT`` (or that declare abstract methods of
    their own) are exempt.
    """
    registry: dict[str, _ClassInfo] = {}
    dht_classes: list[_ClassInfo] = []
    for path, tree in parsed:
        for info in _collect_classes(tree, path):
            registry.setdefault(info.name, info)
            if _in_dht_package(path):
                dht_classes.append(info)
    base = registry.get("DHT")
    if base is None or not base.abstract_methods:
        return []  # base interface not in the lint set; rule not applicable

    violations: list[Violation] = []
    for info in dht_classes:
        if info.name == "DHT" or info.abstract_methods:
            continue
        chain: list[_ClassInfo] = []
        seen: set[str] = set()
        stack = [info.name]
        reaches_dht = False
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            cls = registry.get(name)
            if cls is None:
                continue
            chain.append(cls)
            if name == "DHT":
                reaches_dht = True
            stack.extend(cls.bases)
        if not reaches_dht:
            continue
        # An abstract def is a requirement, not an implementation — don't
        # let the base class in the chain satisfy its own interface.
        provided = set().union(
            *(cls.methods - cls.abstract_methods for cls in chain)
        )
        missing = sorted(base.abstract_methods - provided)
        if missing:
            violations.append(
                Violation(
                    path=str(info.path),
                    line=info.line,
                    col=1,
                    code="LHT005",
                    message=(
                        f"substrate {info.name} misses DHT interface "
                        f"method(s): {', '.join(missing)}"
                    ),
                )
            )
    return violations


def _check_kernel_overrides(
    parsed: list[tuple[Path, ast.Module]]
) -> list[Violation]:
    """Concrete substrates must not override kernel-owned methods (LHT006).

    A class whose base chain reaches ``SubstrateBase`` gets storage,
    oracle reads, and metrics charging from the kernel; re-defining any
    of :data:`KERNEL_OWNED_METHODS` would fork the accounting the
    equivalence goldens pin.  ``SubstrateBase`` itself (the kernel) is
    exempt, as are wrappers — their base chain goes through
    ``DelegatingDHT``, never ``SubstrateBase``.
    """
    registry: dict[str, _ClassInfo] = {}
    dht_classes: list[_ClassInfo] = []
    for path, tree in parsed:
        for info in _collect_classes(tree, path):
            registry.setdefault(info.name, info)
            if _in_dht_package(path):
                dht_classes.append(info)
    if "SubstrateBase" not in registry:
        return []  # kernel not in the lint set; rule not applicable

    violations: list[Violation] = []
    for info in dht_classes:
        if info.name == "SubstrateBase":
            continue
        seen: set[str] = set()
        stack = list(info.bases)
        reaches_kernel = False
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name == "SubstrateBase":
                reaches_kernel = True
                break
            cls = registry.get(name)
            if cls is not None:
                stack.extend(cls.bases)
        if not reaches_kernel:
            continue
        overridden = sorted(info.methods & KERNEL_OWNED_METHODS)
        if overridden:
            violations.append(
                Violation(
                    path=str(info.path),
                    line=info.line,
                    col=1,
                    code="LHT006",
                    message=(
                        f"substrate {info.name} overrides kernel-owned "
                        f"method(s): {', '.join(overridden)} — storage and "
                        "metrics charging belong to SubstrateBase"
                    ),
                )
            )
    return violations


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def _noqa_codes(source_lines: Sequence[str], line: int) -> set[str] | None:
    """Codes suppressed on a line; empty set means blanket ``# noqa``."""
    if not 1 <= line <= len(source_lines):
        return None
    match = _NOQA_RE.search(source_lines[line - 1])
    if match is None:
        return None
    codes = match.group("codes")
    if codes is None:
        return set()
    return {code.strip().upper() for code in codes.split(",") if code.strip()}


def _apply_noqa(
    violations: Iterable[Violation], source_lines: Sequence[str]
) -> list[Violation]:
    kept: list[Violation] = []
    for violation in violations:
        codes = _noqa_codes(source_lines, violation.line)
        if codes is not None and (not codes or violation.code in codes):
            continue
        kept.append(violation)
    return kept


def lint_source(
    source: str, path: Path | str = "<string>"
) -> list[Violation]:
    """Lint one module's source text (single-file rules only)."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    visitor = _FileVisitor(
        path,
        deterministic=_in_deterministic_package(path) and not _is_test_file(path),
        library=not _is_test_file(path),
    )
    visitor.visit(tree)
    return _apply_noqa(visitor.violations, source.splitlines())


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" not in file.parts:
                    yield file
        elif path.suffix == ".py":
            yield path


def _registered_class_names(parsed: list[tuple[Path, ast.Module]]) -> set[str] | None:
    """Class names passed to ``register(...)`` calls in the dht package.

    Returns ``None`` when no registry module is in the parse set (the
    rule is then not applicable — e.g. linting a single substrate file).
    """
    registry_present = any(
        path.name == "registry.py" and _in_dht_package(path)
        for path, _ in parsed
    )
    names: set[str] = set()
    for path, tree in parsed:
        if not _in_dht_package(path):
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if callee != "register":
                continue
            cls_arg: ast.expr | None = None
            if len(node.args) >= 2:
                cls_arg = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "cls":
                        cls_arg = kw.value
            if isinstance(cls_arg, ast.Name):
                names.add(cls_arg.id)
            elif isinstance(cls_arg, ast.Attribute):
                names.add(cls_arg.attr)
    if not registry_present and not names:
        return None
    return names


def _check_registry_enrollment(
    parsed: list[tuple[Path, ast.Module]]
) -> list[Violation]:
    """Concrete SubstrateBase subclasses must be registered (LHT012).

    The registry is the single enrollment point feeding every
    all-substrates matrix; a class whose base chain reaches
    ``SubstrateBase`` but never appears in a ``register(...)`` call
    would silently dodge conformance, soak, fault, determinism, and
    benchgate coverage.  ``SubstrateBase`` itself and classes declaring
    their own abstract methods are exempt; wrappers never reach
    ``SubstrateBase`` (their chain goes through ``DelegatingDHT``).
    """
    registered = _registered_class_names(parsed)
    if registered is None:
        return []
    registry: dict[str, _ClassInfo] = {}
    dht_classes: list[_ClassInfo] = []
    for path, tree in parsed:
        for info in _collect_classes(tree, path):
            registry.setdefault(info.name, info)
            # The resilience package shares _in_dht_package for LHT005,
            # but enrollment concerns substrates proper.
            if "dht" in path.parts[:-1]:
                dht_classes.append(info)
    if "SubstrateBase" not in registry:
        return []  # kernel not in the lint set; rule not applicable

    violations: list[Violation] = []
    for info in dht_classes:
        if info.name == "SubstrateBase" or info.abstract_methods:
            continue
        seen: set[str] = set()
        stack = list(info.bases)
        reaches_kernel = False
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            if name == "SubstrateBase":
                reaches_kernel = True
                break
            cls = registry.get(name)
            if cls is not None:
                stack.extend(cls.bases)
        if reaches_kernel and info.name not in registered:
            violations.append(
                Violation(
                    path=str(info.path),
                    line=info.line,
                    col=1,
                    code="LHT012",
                    message=(
                        f"substrate {info.name} is not enrolled in "
                        "repro.dht.registry — add a register(...) call so "
                        "the conformance/soak/fault/determinism/benchgate "
                        "matrices cover it"
                    ),
                )
            )
    return violations


def lint_paths(
    paths: Sequence[Path | str],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint files and directories; returns all violations, sorted.

    Raises :class:`ConfigurationError` for a missing path or an unknown
    rule code in ``select``/``ignore`` — a typo must not turn into a
    silently green gate.
    """
    resolved = [Path(p) for p in paths]
    for path in resolved:
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
    known = set(LINT_RULES) | {"E902", "E999"}
    for code in [*(select or []), *(ignore or [])]:
        if code.upper() not in known:
            raise ConfigurationError(
                f"unknown rule code {code!r}; known codes: {sorted(known)}"
            )
    violations: list[Violation] = []
    parsed: list[tuple[Path, ast.Module]] = []
    for file in _iter_python_files(resolved):
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(
                Violation(str(file), 1, 1, "E902", f"cannot read file: {exc}")
            )
            continue
        violations.extend(lint_source(source, file))
        try:
            parsed.append((file, ast.parse(source, filename=str(file))))
        except SyntaxError:
            pass  # already reported as E999 above
    violations.extend(_check_substrates(parsed))
    violations.extend(_check_kernel_overrides(parsed))
    violations.extend(_check_registry_enrollment(parsed))

    if select:
        chosen = {code.upper() for code in select}
        violations = [v for v in violations if v.code in chosen]
    if ignore:
        dropped = {code.upper() for code in ignore}
        violations = [v for v in violations if v.code not in dropped]
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.code))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Repo-specific AST linter for the LHT reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODE",
        help="only report these rule codes (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODE",
        help="suppress these rule codes (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json mirrors the analyzer's report shape)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, description in sorted(LINT_RULES.items()):
            print(f"{code}  {description}")
        return 0

    try:
        violations = lint_paths(
            args.paths, select=args.select, ignore=args.ignore
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    n_files = sum(1 for _ in _iter_python_files([Path(p) for p in args.paths]))
    if args.format == "json":
        counts: dict[str, int] = {}
        for violation in violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        print(
            json.dumps(
                {
                    "tool": "repro.devtools.lint",
                    "rules": LINT_RULES,
                    "files": n_files,
                    "violations": [v.to_dict() for v in violations],
                    "counts": dict(sorted(counts.items())),
                },
                indent=2,
            )
        )
        return 1 if violations else 0
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s) in {n_files} file(s)")
        return 1
    print(f"ok: {n_files} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
