"""Count-based benchmark regression gate.

Wall-clock benchmarks (``benchmarks/``) measure speed but drift with the
host; the *counts* the paper cares about — routed DHT-gets per
operation, parallel lookup steps, records moved by maintenance — are
exactly reproducible from a seed.  This module measures those counts on
a fixed workload and compares them against checked-in baselines
(``BENCH_lookup.json`` / ``BENCH_range.json`` / ``BENCH_build.json`` /
``BENCH_serve.json`` / ``BENCH_avail.json`` at the repository root), so
a change that silently makes lookups, range queries, bulk builds,
request serving, or replicated availability more expensive fails a test
instead of a human's memory.

The ``scale`` suite (``BENCH_scale.json``) additionally banks the
*wall-clock* of the paper-scale build/lookup/range workload from
:mod:`repro.devtools.profile`.  Wall seconds drift with the host, so
they get a much wider per-profile tolerance band
(:data:`SCALE_WALL_TOLERANCE`) than the exact counts — the band catches
an order-of-magnitude hot-path regression without flaking on machine
noise.

Usage::

    python -m repro.devtools.benchgate --check           # gate (default)
    python -m repro.devtools.benchgate --write           # refresh baselines

The pytest gate (``tests/test_bench_regression.py``, marked ``bench``)
runs the same measurement and fails on any metric that regresses more
than :data:`TOLERANCE` over its baseline.  Improvements are accepted
silently — refresh the baselines with ``--write`` to bank them.  All
gated metrics are lower-is-better.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.core.results import MatchStatus
from repro.dht.faulty import FaultyDHT
from repro.dht.local import LocalDHT
from repro.dht.replicated import ReplicatedDHT
from repro.errors import ReproError
from repro.experiments.common import SUBSTRATES, make_dht
from repro.devtools.profile import SCALE_PROFILES, run_scale_phases
from repro.serve import ServeConfig, ServeEngine, WorkloadConfig, generate_workload
from repro.sim.rng import derive_seed
from repro.workloads.queries import zipf_rank_choice

__all__ = [
    "TOLERANCE",
    "SCALE_WALL_TOLERANCE",
    "LOOKUP_BASELINE",
    "RANGE_BASELINE",
    "BUILD_BASELINE",
    "SERVE_BASELINE",
    "SCALE_BASELINE",
    "AVAIL_BASELINE",
    "measure_lookup",
    "measure_range",
    "measure_build",
    "measure_serve",
    "measure_scale",
    "measure_avail",
    "measure_substrate_hops",
    "measure_range_hops",
    "measure_build_hops",
    "compare",
    "main",
]

#: Allowed relative regression before the gate fails.
TOLERANCE = 0.10

#: Allowed relative wall-clock regression for the ``scale`` suite, per
#: workload shape.  Wall seconds are host-dependent, so the bands are
#: wide: the banked ``full`` numbers may double before the gate trips,
#: and the sub-second ``smoke`` shape (where fixed overheads dominate)
#: may quadruple — loose enough for CI runners, tight enough that
#: reverting the hot-path work (a ~4x build slowdown) still fails.
SCALE_WALL_TOLERANCE = {"full": 1.0, "smoke": 3.0}

_REPO_ROOT = Path(__file__).resolve().parents[3]
LOOKUP_BASELINE = _REPO_ROOT / "BENCH_lookup.json"
RANGE_BASELINE = _REPO_ROOT / "BENCH_range.json"
BUILD_BASELINE = _REPO_ROOT / "BENCH_build.json"
SERVE_BASELINE = _REPO_ROOT / "BENCH_serve.json"
SCALE_BASELINE = _REPO_ROOT / "BENCH_scale.json"
AVAIL_BASELINE = _REPO_ROOT / "BENCH_avail.json"

#: Pre-PR phase wall-clock on the reference host, measured at the tip of
#: the serving-layer PR (the commit before the hot-path overhaul) with
#: the exact workload of :data:`repro.devtools.profile.SCALE_PROFILES`.
#: Recorded so every ``scale`` measurement reports its speedup against
#: the state this PR optimised — informational, never gated.
_PRE_PR_WALL_S = {
    "full": {"build_s": 10.4015, "lookup_s": 0.8081, "range_s": 0.1482},
    "smoke": {"build_s": 0.0817, "lookup_s": 0.0673, "range_s": 0.0016},
}

#: Fixed workload shape — the baselines are only comparable against the
#: exact same parameters, so they are recorded alongside the metrics.
_PARAMS = {
    "seed": 1,
    "n_keys": 4096,
    "n_inserts": 512,
    "n_probes": 400,
    "n_ranges": 12,
    "theta_split": 100,
    "max_depth": 20,
    "probe_skew": 1.1,
    "cache_small_capacity": 16,
    "cache_ample_capacity": 4096,
    "hops_n_peers": 32,
    "hops_n_ops": 64,
    "hops_index_n_peers": 16,
    "hops_index_n_keys": 256,
    "hops_index_theta": 8,
    "hops_index_n_ranges": 8,
}


def _build(seed: int, *, cache_capacity: int | None) -> tuple[LHTIndex, list[float]]:
    dht = LocalDHT(n_peers=16, seed=derive_seed(seed, "bench:sub"))
    config = IndexConfig(
        theta_split=_PARAMS["theta_split"],
        max_depth=_PARAMS["max_depth"],
        cache_enabled=cache_capacity is not None,
        cache_capacity=cache_capacity if cache_capacity is not None else 1024,
    )
    index = LHTIndex(dht, config)
    rng = np.random.default_rng(derive_seed(seed, "bench:keys"))
    keys = [float(k) for k in rng.random(_PARAMS["n_keys"])]
    index.bulk_load(keys)
    if index.cache is not None:
        index.cache.clear()  # measure steady-state reads, not build residue
    return index, keys


def _probe_stream(keys: list[float], seed: int) -> list[float]:
    """A Zipf-over-rank probe stream on stored keys (cf. experiment E23)."""
    rng = np.random.default_rng(derive_seed(seed, "bench:probes"))
    probes = zipf_rank_choice(
        np.asarray(keys), _PARAMS["probe_skew"], _PARAMS["n_probes"], rng
    )
    return [float(k) for k in probes]


def _probe_cost(index: LHTIndex, probes: list[float]) -> float:
    before = index.dht.metrics.snapshot()
    for key in probes:
        record, _ = index.exact_match(key)
        if record is None:
            raise ReproError(f"stored key {key!r} reported absent")
    spent = index.dht.metrics.snapshot() - before
    return spent.gets / len(probes)


def measure_lookup(seed: int = 1) -> dict:
    """Exact-match and insertion counts on the fixed workload."""
    uncached, keys = _build(seed, cache_capacity=None)
    probes = _probe_stream(keys, seed)
    metrics: dict[str, float] = {
        "uncached_gets_per_probe": _probe_cost(uncached, probes)
    }
    for arm, capacity in (
        ("cached_small", _PARAMS["cache_small_capacity"]),
        ("cached_ample", _PARAMS["cache_ample_capacity"]),
    ):
        index, _ = _build(seed, cache_capacity=capacity)
        metrics[f"{arm}_gets_per_probe"] = _probe_cost(index, probes)

    # Maintenance counts: individual inserts on top of the built index
    # (bulk_load sidesteps per-insert lookups, so it would hide both).
    index, _ = _build(seed, cache_capacity=None)
    rng = np.random.default_rng(derive_seed(seed, "bench:inserts"))
    before = index.dht.metrics.snapshot()
    for key in rng.random(_PARAMS["n_inserts"]):
        index.insert(float(key))
    spent = index.dht.metrics.snapshot() - before
    metrics["insert_gets_per_op"] = spent.gets / _PARAMS["n_inserts"]
    metrics["records_moved_per_insert"] = (
        spent.records_moved / _PARAMS["n_inserts"]
    )
    metrics.update(measure_substrate_hops(seed))
    return {"params": dict(_PARAMS), "metrics": metrics}


def measure_substrate_hops(seed: int = 1) -> dict[str, float]:
    """Routed hops per operation, per substrate (kernel-charged).

    The index-level gates above run over :class:`LocalDHT`'s synthetic
    hop model; this measures the *physical* routing cost of every real
    substrate on one fixed put+get workload, so a topology change that
    silently lengthens routes fails the gate like any other count.
    """
    n_ops = _PARAMS["hops_n_ops"]
    metrics: dict[str, float] = {}
    for name in sorted(SUBSTRATES):
        dht = make_dht(
            name, _PARAMS["hops_n_peers"], derive_seed(seed, "bench:hops")
        )
        before = dht.metrics.snapshot()
        for i in range(n_ops):
            dht.put(f"hop-key-{i}", i)
        for i in range(n_ops):
            dht.get(f"hop-key-{i}")
        spent = dht.metrics.snapshot() - before
        metrics[f"hops_per_op_{name}"] = spent.hops / (2 * n_ops)
    return metrics


def _substrate_index(name: str, seed: int) -> LHTIndex:
    """A small LHT index over one registered substrate (shared shape for
    the per-substrate range/build hop gates)."""
    dht = make_dht(
        name, _PARAMS["hops_index_n_peers"], derive_seed(seed, "bench:hops:index")
    )
    config = IndexConfig(
        theta_split=_PARAMS["hops_index_theta"], max_depth=_PARAMS["max_depth"]
    )
    return LHTIndex(dht, config)


def _index_keys(seed: int) -> list[float]:
    rng = np.random.default_rng(derive_seed(seed, "bench:hops:index-keys"))
    return [float(k) for k in rng.random(_PARAMS["hops_index_n_keys"])]


def measure_range_hops(seed: int = 1) -> dict[str, float]:
    """Routed hops per DHT-lookup during range queries, per substrate.

    Every registered overlay serves the same seeded range workload over
    the same index shape; the metric isolates the routing cost a range
    query actually pays on that overlay (index-level get counts are
    substrate-invariant, so only topology moves these numbers).
    """
    keys = _index_keys(seed)
    metrics: dict[str, float] = {}
    for name in sorted(SUBSTRATES):
        index = _substrate_index(name, seed)
        index.bulk_load(keys)
        rng = np.random.default_rng(derive_seed(seed, "bench:hops:ranges"))
        before = index.dht.metrics.snapshot()
        for _ in range(_PARAMS["hops_index_n_ranges"]):
            lo = float(rng.uniform(0.0, 0.9))
            hi = float(min(1.0, lo + rng.uniform(0.01, 0.4)))
            index.range_query(lo, hi)
        spent = index.dht.metrics.snapshot() - before
        metrics[f"hops_per_op_{name}"] = spent.hops / spent.dht_lookups
    return metrics


def measure_build_hops(seed: int = 1) -> dict[str, float]:
    """Routed hops per DHT-lookup during a fast bulk build, per substrate."""
    keys = _index_keys(seed)
    metrics: dict[str, float] = {}
    for name in sorted(SUBSTRATES):
        index = _substrate_index(name, seed)
        before = index.dht.metrics.snapshot()
        index.bulk_load(keys)
        spent = index.dht.metrics.snapshot() - before
        metrics[f"hops_per_op_{name}"] = spent.hops / spent.dht_lookups
    return metrics


def measure_range(seed: int = 1) -> dict:
    """Range-query counts (bandwidth, latency, rounds, B+3 slack)."""
    index, _ = _build(seed, cache_capacity=None)
    rng = np.random.default_rng(derive_seed(seed, "bench:ranges"))
    totals = {"gets": 0.0, "steps": 0.0, "rounds": 0.0, "slack": 0.0}
    n = _PARAMS["n_ranges"]
    for _ in range(n):
        lo = float(rng.uniform(0.0, 0.9))
        hi = float(min(1.0, lo + rng.uniform(0.01, 0.4)))
        result = index.range_query(lo, hi)
        if not result.complete:
            raise ReproError("fault-free range query reported gaps")
        totals["gets"] += result.dht_lookups
        totals["steps"] += result.parallel_steps
        totals["rounds"] += result.batch_rounds
        # §6.3: at most B + 3 lookups for B result buckets.
        totals["slack"] += result.dht_lookups - result.buckets_visited
    metrics = {
        "gets_per_query": totals["gets"] / n,
        "parallel_steps_per_query": totals["steps"] / n,
        "batch_rounds_per_query": totals["rounds"] / n,
        "lookup_slack_per_query": totals["slack"] / n,
    }
    metrics.update(measure_range_hops(seed))
    return {"params": dict(_PARAMS), "metrics": metrics}


def measure_build(seed: int = 1) -> dict:
    """Bulk-build counts: incremental replay vs the sorted fast path.

    Gated metrics are the routed put and records-moved counts per key
    for both paths (all deterministic and lower-is-better); the fast
    path's put count must equal the final leaf count, so any stray
    extra put fails the gate.  Wall-clock seconds and the resulting
    speedup ride along under ``info`` — recorded for visibility, never
    compared, because they drift with the host.
    """
    n = _PARAMS["n_keys"]
    rng = np.random.default_rng(derive_seed(seed, "bench:keys"))
    keys = [float(k) for k in rng.random(n)]
    config = IndexConfig(
        theta_split=_PARAMS["theta_split"], max_depth=_PARAMS["max_depth"]
    )

    counts: dict[str, float] = {}
    info: dict[str, float] = {}
    for arm, fast in (("incremental", False), ("fast", True)):
        dht = LocalDHT(n_peers=16, seed=derive_seed(seed, "bench:sub"))
        index = LHTIndex(dht, config)
        before = dht.metrics.snapshot()
        started = time.perf_counter()
        index.bulk_load(keys, fast=fast)
        info[f"{arm}_build_s"] = time.perf_counter() - started
        spent = dht.metrics.snapshot() - before
        counts[f"{arm}_puts_per_key"] = spent.puts / n
        counts[f"{arm}_moved_per_key"] = spent.records_moved / n
        if fast and spent.puts != index.leaf_count:
            raise ReproError(
                f"fast bulk-build issued {spent.puts} puts for "
                f"{index.leaf_count} leaves"
            )
    if info["fast_build_s"] > 0:
        info["speedup"] = info["incremental_build_s"] / info["fast_build_s"]
    counts.update(measure_build_hops(seed))
    return {"params": dict(_PARAMS), "metrics": counts, "info": info}


#: Serving-gate workload shape — its own dict so the three original
#: baselines stay byte-comparable (their recorded ``params`` must not
#: change when serving knobs do).
_SERVE_PARAMS = {
    "seed": 1,
    "n_keys": 2048,
    "theta_split": 100,
    "max_depth": 20,
    "n_requests": 480,
    "rate": 140.0,
    "skew": 1.1,
    "mix": {"lookup": 0.90, "insert": 0.05, "remove": 0.03, "range": 0.02},
    "n_sessions": 8,
    "max_in_flight": 8,
    "max_queue": 32,
    "step_seconds": 0.01,
}


def _serve_index(seed: int) -> tuple[LHTIndex, list[float]]:
    dht = LocalDHT(n_peers=16, seed=derive_seed(seed, "bench:serve:sub"))
    config = IndexConfig(
        theta_split=_SERVE_PARAMS["theta_split"],
        max_depth=_SERVE_PARAMS["max_depth"],
    )
    index = LHTIndex(dht, config)
    rng = np.random.default_rng(derive_seed(seed, "bench:serve:keys"))
    keys = [float(k) for k in rng.random(_SERVE_PARAMS["n_keys"])]
    index.bulk_load(keys)
    return index, keys


def measure_serve(seed: int = 1) -> dict:
    """Serving-layer counts: latency percentiles, cost, and coalescing.

    One seeded open-loop workload (Poisson arrivals, Zipf key skew) is
    served twice by the deterministic engine over identical indexes —
    once with lookup coalescing on, once off.  Both arms see identical
    batch shapes and rounds (coalescing changes *how many gets* a round
    issues, never how many rounds there are), so their timing, admission
    decisions, and answers match and the routed-get counts are directly
    comparable.

    Gated (all lower-is-better): latency p50/p90/p99 and simulated
    seconds per completed request (the inverse of throughput — gating it
    gates throughput), routed gets of both arms, and routed ops per
    request.  ``info`` carries the higher-is-better or derived views
    (throughput, gets saved, batches, rejections).  The coalesced arm
    must issue *strictly fewer* routed gets than the uncoalesced arm at
    this concurrency (``max_in_flight`` ≥ 8) — a hard invariant, not a
    tolerance-gated count.
    """
    workload_config = WorkloadConfig(
        n_requests=_SERVE_PARAMS["n_requests"],
        rate=_SERVE_PARAMS["rate"],
        skew=_SERVE_PARAMS["skew"],
        mix=dict(_SERVE_PARAMS["mix"]),
        n_sessions=_SERVE_PARAMS["n_sessions"],
    )
    arms: dict[str, tuple] = {}
    for arm, coalesce in (("coalesced", True), ("uncoalesced", False)):
        index, keys = _serve_index(seed)
        workload = generate_workload(
            keys, workload_config, seed=derive_seed(seed, "bench:serve:wl")
        )
        engine = ServeEngine(
            index,
            ServeConfig(
                max_in_flight=_SERVE_PARAMS["max_in_flight"],
                max_queue=_SERVE_PARAMS["max_queue"],
                coalesce=coalesce,
                step_seconds=_SERVE_PARAMS["step_seconds"],
            ),
        )
        arms[arm] = (engine.run(workload), index.dht.metrics.snapshot())

    crun, cspent = arms["coalesced"]
    urun, uspent = arms["uncoalesced"]
    if cspent.gets >= uspent.gets:
        raise ReproError(
            f"coalescing saved nothing: {cspent.gets} routed gets vs "
            f"{uspent.gets} uncoalesced at concurrency "
            f"{_SERVE_PARAMS['max_in_flight']}"
        )
    if crun.rejected != urun.rejected:
        raise ReproError(
            "arms diverged on admission: coalescing must not change "
            f"timing ({crun.rejected} vs {urun.rejected} rejections)"
        )
    completed = len(crun.responses) - crun.rejected
    if completed <= 0:
        raise ReproError("serving workload completed no requests")
    metrics = {
        "latency_p50_s": crun.percentiles["p50"],
        "latency_p90_s": crun.percentiles["p90"],
        "latency_p99_s": crun.percentiles["p99"],
        "sim_seconds_per_request": crun.sim_seconds / completed,
        "routed_ops_per_request": cspent.dht_lookups / completed,
        "coalesced_routed_gets": float(cspent.gets),
        "uncoalesced_routed_gets": float(uspent.gets),
    }
    info = {
        "throughput_rps": completed / crun.sim_seconds,
        "gets_saved_by_coalescing": float(crun.coalesced_saved),
        "batches": float(crun.batches),
        "rejections": float(crun.rejected),
        "completed": float(completed),
    }
    return {"params": dict(_SERVE_PARAMS), "metrics": metrics, "info": info}


#: Availability-gate workload shape — its own dict so the earlier
#: baselines stay byte-comparable (their recorded ``params`` must not
#: change when replication knobs do).
_AVAIL_PARAMS = {
    "seed": 1,
    "n_peers": 16,
    "n_keys": 1024,
    "n_probes": 400,
    "theta_split": 32,
    "max_depth": 20,
    "drop_rate": 0.3,
    "ks": [1, 2, 3],
    "identity_ops": 256,
    "identity_drop_rate": 0.2,
}


def _avail_faulty(seed: int, tag: str) -> FaultyDHT:
    return FaultyDHT(
        LocalDHT(
            n_peers=_AVAIL_PARAMS["n_peers"],
            seed=derive_seed(seed, "bench:avail:sub"),
        ),
        seed=derive_seed(seed, f"bench:avail:faults:{tag}"),
    )


def _drive_identity(dht, seed: int) -> tuple:
    """One seeded mixed op stream → (snapshot, stored keys)."""
    rng = np.random.default_rng(derive_seed(seed, "bench:avail:identity"))
    for i in range(_AVAIL_PARAMS["identity_ops"]):
        op = rng.random()
        key = f"id-{int(rng.integers(0, 64))}"
        if op < 0.5:
            dht.put(key, i)
        elif op < 0.9:
            dht.get(key)
        else:
            dht.remove(key)
    return dht.metrics.snapshot(), sorted(dht.keys())


def measure_avail(seed: int = 1) -> dict:
    """Availability vs replication factor, and the k=1 no-op proof.

    Three hard invariants (raised as :class:`ReproError`, not
    tolerance-gated):

    * **k=1 byte-identity** — the same seeded mixed workload driven
      through ``FaultyDHT(LocalDHT)`` bare and through
      ``ReplicatedDHT(..., n_replicas=1)`` must produce identical
      metrics snapshots and identical stored state: single-replica
      placement is a pass-through, so enabling the layer costs nothing.
    * **strict monotonicity** — availability at drop rate 0.3 must
      strictly increase k=1 → k=2 → k=3 (the E26 acceptance shape).
    * **failover liveness** — replicated probes (k>1) must record at
      least one ``replica_failovers`` rescue under drops.

    Gated (lower-is-better): ``unavailability_at_k*`` (1 − availability)
    and ``build_puts_per_key_k*`` (replica put amplification).  The
    higher-is-better ``availability_at_k*`` views ride along in
    ``info``, with replica probe traffic per probe.
    """
    p = _AVAIL_PARAMS

    # --- invariant 1: the k=1 path is byte-identical to no layer ------
    bare = _avail_faulty(seed, "identity")
    bare.get_drop_rate = p["identity_drop_rate"]
    wrapped_inner = _avail_faulty(seed, "identity")
    wrapped_inner.get_drop_rate = p["identity_drop_rate"]
    wrapped = ReplicatedDHT(wrapped_inner, n_replicas=1)
    if _drive_identity(bare, seed) != _drive_identity(wrapped, seed):
        raise ReproError(
            "ReplicatedDHT(n_replicas=1) diverged from the bare stack: "
            "the k=1 path must be a byte-identical pass-through"
        )

    # --- availability × replication factor ----------------------------
    metrics: dict[str, float] = {}
    info: dict[str, float] = {}
    availability: dict[int, float] = {}
    for k in p["ks"]:
        faulty = _avail_faulty(seed, f"k{k}")
        dht = ReplicatedDHT(faulty, n_replicas=k)
        index = LHTIndex(
            dht,
            IndexConfig(
                theta_split=p["theta_split"], max_depth=p["max_depth"]
            ),
        )
        rng = np.random.default_rng(derive_seed(seed, "bench:avail:keys"))
        keys = [float(x) for x in rng.random(p["n_keys"])]
        before = dht.metrics.snapshot()
        index.bulk_load(keys, fast=True)
        built = dht.metrics.since(before)
        metrics[f"build_puts_per_key_k{k}"] = built.puts / p["n_keys"]

        # Faults start after the build: every probed key is stored.
        faulty.get_drop_rate = p["drop_rate"]
        prng = np.random.default_rng(derive_seed(seed, "bench:avail:probes"))
        sample = prng.choice(
            np.asarray(keys), size=p["n_probes"], replace=False
        )
        before = dht.metrics.snapshot()
        hits = 0
        for key in sample:
            result = index.exact_match_checked(float(key))
            if result.status is MatchStatus.PRESENT:
                hits += 1
        spent = dht.metrics.since(before)
        availability[k] = hits / p["n_probes"]
        metrics[f"unavailability_at_k{k}"] = 1.0 - availability[k]
        info[f"availability_at_k{k}"] = availability[k]
        info[f"replica_probe_gets_per_probe_k{k}"] = (
            spent.replica_probe_gets / p["n_probes"]
        )
        info[f"replica_failovers_k{k}"] = float(spent.replica_failovers)
        if k > 1 and spent.replica_failovers == 0:
            raise ReproError(
                f"k={k} under drop rate {p['drop_rate']} recorded no "
                "replica failovers: the degraded-read path is dead"
            )

    ks = p["ks"]
    increasing = all(
        availability[a] < availability[b] for a, b in zip(ks, ks[1:])
    )
    if not increasing:
        raise ReproError(
            "availability must strictly increase with replication "
            f"factor at drop rate {p['drop_rate']}: "
            + ", ".join(f"k={k}: {availability[k]:.4f}" for k in ks)
        )
    return {"params": dict(_AVAIL_PARAMS), "metrics": metrics, "info": info}


def measure_scale(seed: int = 1, profile: str = "full") -> dict:
    """Paper-scale wall-clock and counts for one workload shape.

    Runs the shared :func:`repro.devtools.profile.run_scale_phases`
    pipeline (2^20 keys over 1024 peers at ``full`` scale) without the
    profiler and returns two gated sections: ``counts`` (exact,
    seed-reproducible — leaf count, routed lookup gets, range records —
    gated at :data:`TOLERANCE`) and ``wall_s`` (per-phase seconds, gated
    at the wide :data:`SCALE_WALL_TOLERANCE` band for the shape).
    ``info`` records the pre-PR wall-clock and the resulting speedups.
    """
    if profile not in SCALE_PROFILES:
        raise ReproError(f"unknown scale profile {profile!r}")
    params = dict(SCALE_PROFILES[profile])
    params["seed"] = seed
    phases = run_scale_phases(params)
    counts: dict[str, float] = {}
    wall: dict[str, float] = {}
    for phase in phases:
        wall[f"{phase.name}_s"] = round(phase.seconds, 4)
        counts.update(phase.counts)
    info = {
        f"pre_pr_{name}": value for name, value in _PRE_PR_WALL_S[profile].items()
    }
    for name, value in wall.items():
        if value > 0:
            info[f"{name[:-2]}_speedup_vs_pre_pr"] = round(
                _PRE_PR_WALL_S[profile][name] / value, 2
            )
    return {
        "profile": profile,
        "params": params,
        "counts": counts,
        "wall_s": wall,
        "info": info,
    }


def compare(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    tolerance: float = TOLERANCE,
) -> list[str]:
    """Violations of ``current <= baseline * (1 + tolerance)`` per metric.

    Comparison runs over the *baseline's* keys: metrics added since a
    baseline was written are not gated until ``--write`` records them
    (mirroring snapshot-counter accretion), but a metric the current
    measurement *lost* is itself a violation — a silently renamed metric
    must not un-gate a regression.
    """
    violations: list[str] = []
    for name, base in baseline.items():
        if name not in current:
            violations.append(f"{name}: missing from current measurement")
            continue
        limit = base * (1.0 + tolerance)
        if current[name] > limit:
            violations.append(
                f"{name}: {current[name]:.4f} exceeds baseline "
                f"{base:.4f} by more than {tolerance:.0%}"
            )
    return violations


def _check_file(path: Path, current: dict) -> list[str]:
    if not path.exists():
        return [f"{path.name}: baseline missing (run --write)"]
    baseline = json.loads(path.read_text())
    if baseline.get("params") != current["params"]:
        return [
            f"{path.name}: workload parameters changed; refresh with --write"
        ]
    return [
        f"{path.name}: {v}"
        for v in compare(current["metrics"], baseline["metrics"])
    ]


def _check_scale(path: Path, current: dict) -> list[str]:
    """Gate one scale measurement against its profile's baseline section.

    ``BENCH_scale.json`` differs from the other baselines: it holds one
    section per workload shape (so the CI smoke leg and the banked full
    run share a file), and its wall-clock block is gated at the wide
    per-shape band rather than :data:`TOLERANCE`.
    """
    if not path.exists():
        return [f"{path.name}: baseline missing (run --write)"]
    profile = current["profile"]
    section = json.loads(path.read_text()).get("profiles", {}).get(profile)
    if section is None:
        return [
            f"{path.name}: no baseline for profile {profile!r}; "
            "refresh with --write"
        ]
    if section.get("params") != current["params"]:
        return [
            f"{path.name}: workload parameters changed; refresh with --write"
        ]
    failures = [
        f"{path.name}: {v}"
        for v in compare(current["counts"], section["counts"])
    ]
    failures.extend(
        f"{path.name}: {v}"
        for v in compare(
            current["wall_s"], section["wall_s"], SCALE_WALL_TOLERANCE[profile]
        )
    )
    return failures


def _write_scale(path: Path, current: dict) -> None:
    """Merge one profile's section into ``BENCH_scale.json``.

    Other profiles' banked sections are preserved, so refreshing the
    smoke shape never discards the (expensive) full-scale numbers.
    """
    data = json.loads(path.read_text()) if path.exists() else {}
    data.setdefault("profiles", {})[current["profile"]] = {
        "params": current["params"],
        "counts": current["counts"],
        "wall_s": current["wall_s"],
        "info": current["info"],
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchgate",
        description="Count-based benchmark regression gate.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true", help="refresh the checked-in baselines"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="compare against the baselines (default)",
    )
    parser.add_argument("--seed", type=int, default=_PARAMS["seed"])
    parser.add_argument(
        "--only",
        choices=("lookup", "range", "build", "serve", "scale", "avail"),
        action="append",
        default=None,
        help="measure only these gates (repeatable; default: all but "
        "the paper-scale wall-clock suite)",
    )
    parser.add_argument(
        "--scale-profile",
        choices=sorted(SCALE_PROFILES),
        default="full",
        help="workload shape for the scale suite (default: full)",
    )
    args = parser.parse_args(argv)

    suites = {
        "lookup": (LOOKUP_BASELINE, measure_lookup),
        "range": (RANGE_BASELINE, measure_range),
        "build": (BUILD_BASELINE, measure_build),
        "serve": (SERVE_BASELINE, measure_serve),
        "avail": (AVAIL_BASELINE, measure_avail),
        "scale": (
            SCALE_BASELINE,
            lambda seed: measure_scale(seed, args.scale_profile),
        ),
    }
    # The scale suite times a 2^20-key build, so the default run keeps
    # to the count gates; opt in with ``--only scale``.
    chosen = args.only if args.only else [n for n in suites if n != "scale"]
    measurements = {
        suites[name][0]: suites[name][1](args.seed) for name in chosen
    }
    if args.write:
        for path, current in measurements.items():
            if "profile" in current:
                _write_scale(path, current)
            else:
                path.write_text(
                    json.dumps(current, indent=2, sort_keys=True) + "\n"
                )
            print(f"wrote {path}")
        return 0

    failures: list[str] = []
    for path, current in measurements.items():
        if "profile" in current:
            failures.extend(_check_scale(path, current))
            shown = {**current["counts"], **current["wall_s"]}
        else:
            failures.extend(_check_file(path, current))
            shown = current["metrics"]
        for name, value in shown.items():
            print(f"{path.name}: {name} = {value:.4f}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    print("benchgate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
