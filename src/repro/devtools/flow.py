"""Whole-program contract analyzer (``python -m repro.devtools analyze``).

The per-file linter (:mod:`repro.devtools.lint`, LHT001-LHT006 plus the
registry-enrollment rule LHT012) sees one module — or one parse set — at
a time, so any contract that spans the call graph escapes it: a
wall-clock read hidden one helper function away, a peer store mutated
from an experiment, a broad handler swallowing a typed
:class:`~repro.errors.DHTError` three calls above the substrate that
raised it.  This module parses the whole source tree **once**, builds a
module import graph and a conservative name-resolution call graph, and
checks the cross-module contracts the reproduction's figures rest on.

Rule catalogue (LHT007+, continuing the linter's numbering; rationale in
``docs/static_analysis.md``):

========  ==============================================================
Code      Rule
========  ==============================================================
LHT007    Transitive hermeticity — no chain of project-internal calls
          from a deterministic package reaches a wall-clock or
          global-randomness sink hiding in a non-deterministic module
          (closes the helper-function hole in LHT001/LHT002).
LHT008    Kernel encapsulation — the :class:`repro.dht.kernel.PeerStore`
          storage surface (``store_of``, ``find_holder``, ``all_keys``,
          ``loads``, private attributes) is touched only from the kernel
          module itself; the membership surface (``add_peer``,
          ``remove_peer``, ``is_live``, ``sorted_ids``,
          ``successor_of``) only from
          substrate modules inside ``repro.dht``.
LHT009    Route purity — substrate ``route``/``route_point``/``route_id``
          implementations (and every helper they reach) must not mutate
          peer stores, charge metrics, or call kernel storage methods:
          the kernel charges each routed operation exactly once.
LHT010    Exception-flow completeness — a broad handler (bare ``except``,
          ``Exception``, ``BaseException``) around code that can raise a
          typed :class:`~repro.errors.DHTError` must re-raise; a typed
          DHT-error handler must not be a silent ``pass``.  Degraded
          results are data (the PRESENT/ABSENT/UNREACHABLE trichotomy),
          never silently absorbed exceptions.
LHT011    Parallel-engine safety — a callable shipped to a
          multiprocessing pool (``--jobs N`` spawn workers) must be a
          module-level function, and nothing it transitively calls may
          rebind a global or mutate another module's module-level state:
          spawn workers re-import fresh modules, so such state silently
          diverges between ``--jobs 1`` and ``--jobs N``.
LHT013    Placement purity — ``replicas_for`` implementations of
          :class:`~repro.dht.kernel.PlacementPolicy` subclasses (and
          every helper they reach) must be pure reads of topology:
          no metrics charging, no peer-store mutation or kernel storage
          calls, and — stricter than LHT009 — no wall clock and no
          randomness.  Placement is a deterministic guarantee derived
          from the overlay; a sampled or time-dependent placement would
          silently break replica agreement between writer and reader.
========  ==============================================================

Violations support the same suppression comments as the linter
(``# noqa`` / ``# noqa: LHT007``) and the same ``--select`` /
``--ignore`` filters; ``--format json`` emits a machine-readable report
that includes the analysis wall time (so CI logs expose a pathological
slowdown).

Call-graph construction caveats
-------------------------------

Resolution is *conservative by name*, entirely static, stdlib-``ast``
only.  It can see:

* plain calls to module-level functions, through ``import`` /
  ``from ... import`` aliases and package-relative imports;
* ``self.method(...)`` through the class's statically declared base
  chain (simple-name matching, like LHT005/LHT006);
* attribute chains rooted at imported modules (``mod.helper()``);
* well-known receiver names (``*.metrics``, ``*.peers``, ``dht``/
  ``inner``) for the contract rules that key on them.

It cannot see: calls through containers or variables (``FUNCS[name]()``,
``f = g; f()``), ``getattr`` dispatch, callbacks passed as arguments, or
monkeypatching.  Dynamic dispatch therefore never *creates* findings
(no false positives from it) but can hide a path (false negatives); the
test suite pins both directions with synthetic fixtures.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint import (
    DETERMINISTIC_PACKAGES,
    Violation,
    _NUMPY_RANDOM_ALLOWED,
    _WALL_CLOCK_CALLS,
    _apply_noqa,
    _is_test_file,
    _iter_python_files,
)
from repro.errors import ConfigurationError

__all__ = [
    "ANALYZER_RULES",
    "Program",
    "analyze_paths",
    "build_program",
    "main",
]

#: Rule code -> one-line description (the user-facing catalogue).
ANALYZER_RULES: dict[str, str] = {
    "LHT007": "transitive wall-clock/randomness sink reachable from a "
    "deterministic package",
    "LHT008": "peer-store surface touched outside its owning layer",
    "LHT009": "route implementation mutates stores, charges metrics, or "
    "calls kernel storage",
    "LHT010": "exception handler swallows typed DHT errors",
    "LHT011": "process-pool worker rebinds or mutates cross-module state",
    "LHT013": "placement policy charges metrics, mutates storage, or "
    "depends on wall clock/randomness",
}

#: PeerStore methods/attributes only the kernel module may touch.
PEERSTORE_STORAGE_SURFACE = frozenset(
    {"store_of", "find_holder", "all_keys", "loads", "_stores",
     "_sorted_ids"}
)

#: PeerStore membership methods substrates (repro.dht.*) may use.
PEERSTORE_MEMBERSHIP_SURFACE = frozenset(
    {"add_peer", "remove_peer", "is_live", "sorted_ids", "successor_of"}
)

#: Kernel-owned storage methods a route path may never call on self.
KERNEL_STORAGE_METHODS = frozenset(
    {"put", "get", "remove", "peek", "local_write"}
)

#: Substrate routing entry points checked for purity (LHT009).
ROUTE_METHODS = frozenset({"route", "route_point", "route_id"})

#: Placement-policy entry points checked for purity (LHT013).
PLACEMENT_METHODS = frozenset({"replicas_for"})

#: DHT interface methods that are routed (may raise typed DHTError).
ROUTED_OP_NAMES = frozenset(
    {"put", "get", "remove", "multi_get", "multi_put", "local_write"}
)

#: Receiver names conventionally bound to a DHT in this codebase.
DHT_RECEIVER_NAMES = frozenset({"dht", "_dht", "inner", "substrate"})

#: repro.errors exception classes that are (or include) DHTError.
DHT_ERROR_NAMES = frozenset(
    {"DHTError", "NoSuchPeerError", "EmptyOverlayError", "RoutingError",
     "CircuitOpenError"}
)
_REPRO_ERROR_NAMES = DHT_ERROR_NAMES | {"ReproError"}

#: Process-pool fan-out methods whose first argument ships to workers.
POOL_SHIP_METHODS = frozenset(
    {"map", "map_async", "imap", "imap_unordered", "starmap",
     "starmap_async", "apply", "apply_async", "submit"}
)

#: Method names that mutate the container they are called on.
_CONTAINER_MUTATORS = frozenset(
    {"append", "extend", "insert", "add", "update", "clear", "pop",
     "popitem", "remove", "discard", "setdefault"}
)

#: Synthetic function name for a module's top-level statements.
MODULE_BODY = "<module>"


# ----------------------------------------------------------------------
# Program model
# ----------------------------------------------------------------------


@dataclass(slots=True)
class CallSite:
    """One call expression, as resolved as static analysis allows."""

    line: int
    col: int
    #: Fully qualified target: a project qualname, an external dotted
    #: path (``time.time``), or ``None`` when resolution failed.
    target: str | None
    #: Whether ``target`` names a function parsed from the scanned tree.
    project: bool
    #: Method name for attribute calls (``x.m()`` -> ``m``).
    method: str | None
    #: Dotted receiver of an attribute call (``self.peers.store_of`` ->
    #: ``("self", "peers")``); empty for plain-name calls.
    receiver: tuple[str, ...]
    #: True when an enclosing ``try`` catches DHT-typed errors, so a
    #: raised DHTError would not escape this function.
    guarded: bool
    #: True when the call had no positional or keyword arguments.
    no_args: bool


@dataclass(slots=True)
class _Handler:
    line: int
    col: int
    bare: bool
    type_names: tuple[str, ...]  # simple names of caught types
    reraises: bool
    pass_only: bool


@dataclass(slots=True)
class _TryInfo:
    handlers: list[_Handler]
    body_calls: list[CallSite] = field(default_factory=list)


@dataclass(slots=True)
class FunctionNode:
    """One function/method (or a module's top-level statements)."""

    qualname: str
    module: str
    cls: str | None
    path: Path
    line: int
    calls: list[CallSite] = field(default_factory=list)
    #: Direct hermeticity sinks: (line, col, kind, dotted callable).
    sinks: list[tuple[int, int, str, str]] = field(default_factory=list)
    #: ``raise`` statements of DHT-typed exceptions.
    raises_dht: bool = False
    trys: list[_TryInfo] = field(default_factory=list)
    #: Names of functions defined *inside* this one (closure hazards).
    local_defs: set[str] = field(default_factory=set)
    #: ``global`` declarations: (line, col, names).
    global_decls: list[tuple[int, int, str]] = field(default_factory=list)
    #: Mutations of another module's module-level state:
    #: (line, col, dotted description).
    foreign_mutations: list[tuple[int, int, str]] = field(
        default_factory=list
    )
    #: Route-purity offenses: (line, col, description).
    purity_offenses: list[tuple[int, int, str]] = field(default_factory=list)
    #: Pool fan-out sites: (line, col, worker descriptor).
    ship_sites: list[tuple[int, int, "_Worker"]] = field(default_factory=list)


@dataclass(slots=True)
class _Worker:
    kind: str  # "lambda" | "bound" | "closure" | "name" | "opaque"
    name: str | None  # resolvable dotted name for kind == "name"


@dataclass(slots=True)
class ClassInfo:
    qualname: str
    module: str
    path: Path
    line: int
    #: Resolved base references: project class qualnames, or
    #: ``"?Name"`` markers for bases outside the scanned tree.
    bases: list[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleInfo:
    name: str  # primary dotted name
    path: Path
    tree: ast.Module
    source_lines: list[str]
    deterministic: bool
    #: local alias -> dotted module path.
    import_modules: dict[str, str] = field(default_factory=dict)
    #: local alias -> dotted object path (module.attr).
    import_objects: dict[str, str] = field(default_factory=dict)
    #: module-level def/class simple names.
    toplevel: set[str] = field(default_factory=set)


class Program:
    """The parsed whole-program view: modules, classes, call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: every accepted dotted spelling -> primary module name.
        self.aliases: dict[str, str] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.parse_errors: list[Violation] = []

    # -- name resolution ------------------------------------------------

    def canonical_module(self, dotted: str) -> tuple[str, str] | None:
        """Split ``dotted`` into (primary module name, remainder)."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            primary = self.aliases.get(prefix)
            if primary is not None:
                return primary, ".".join(parts[end:])
        return None

    def project_target(self, dotted: str) -> str | None:
        """Project function qualname ``dotted`` refers to, if any.

        A dotted path naming a scanned class resolves to its
        ``__init__`` (constructing an object runs it).
        """
        hit = self.canonical_module(dotted)
        if hit is None:
            return None
        primary, rest = hit
        if not rest:
            return None
        qual = f"{primary}.{rest}"
        if qual in self.functions:
            return qual
        if qual in self.classes:
            init = self.classes[qual].methods.get("__init__")
            return init
        return None

    def mro_lookup(self, class_qual: str, method: str) -> str | None:
        """Find ``method`` on a class or its project-visible ancestors."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop()
            if qual in seen or qual.startswith("?"):
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def class_reaches(self, class_qual: str, simple_name: str) -> bool:
        """Whether the base chain reaches a class named ``simple_name``.

        Matching is by simple name (like LHT005/LHT006): the scanned set
        may spell ``repro.dht.kernel.SubstrateBase`` or a fixture's
        ``kernel.SubstrateBase``.
        """
        seen: set[str] = set()
        stack = list(self.classes[class_qual].bases)
        while stack:
            ref = stack.pop()
            if ref in seen:
                continue
            seen.add(ref)
            name = ref[1:] if ref.startswith("?") else ref.split(".")[-1]
            if name == simple_name:
                return True
            if not ref.startswith("?") and ref in self.classes:
                stack.extend(self.classes[ref].bases)
        return False

    def call_edges(self, qualname: str) -> Iterable[tuple[CallSite, str]]:
        """Project-internal call edges out of one function."""
        fn = self.functions.get(qualname)
        if fn is None:
            return
        for call in fn.calls:
            if call.project and call.target is not None:
                yield call, call.target


# ----------------------------------------------------------------------
# Parsing: modules, imports, classes
# ----------------------------------------------------------------------


def _module_names(path: Path, root: Path) -> list[str]:
    """Dotted names a file answers to: scan-root-relative, and (when the
    path contains a ``repro`` package) the installed ``repro.*`` name."""
    names = []
    try:
        rel = path.resolve().relative_to(root.resolve())
        parts = list(rel.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        if parts:
            names.append(".".join(parts))
    except ValueError:
        pass
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        installed = ".".join(parts[parts.index("repro"):])
        if installed and installed not in names:
            names.append(installed)
    if not names:
        names.append(path.stem)
    return names


def _in_deterministic_package(path: Path) -> bool:
    return any(part in DETERMINISTIC_PACKAGES for part in path.parts[:-1])


def _collect_imports(info: ModuleInfo) -> None:
    """Fill the module's alias tables (function-level imports included)."""
    pkg_parts = info.name.split(".")
    is_package = info.path.name == "__init__.py"
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.import_modules[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    info.import_modules[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg_parts if is_package else pkg_parts[:-1]
                base = base[: len(base) - (node.level - 1)] if node.level > 1 else base
                module = ".".join(base + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            if not module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.import_objects[local] = f"{module}.{alias.name}"


def _resolve_dotted(info: ModuleInfo, expr: ast.expr) -> str | None:
    """Dotted path a ``Name``/``Attribute`` chain denotes, if resolvable."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    parts.reverse()
    if root in info.import_objects:
        return ".".join([info.import_objects[root], *parts])
    if root in info.import_modules:
        return ".".join([info.import_modules[root], *parts])
    if root in info.toplevel:
        return ".".join([info.name, root, *parts])
    if not parts:
        return root  # builtins like Exception
    return None


def _collect_classes(program: Program, info: ModuleInfo) -> None:
    for node in info.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        qual = f"{info.name}.{node.name}"
        cls = ClassInfo(
            qualname=qual, module=info.name, path=info.path, line=node.lineno
        )
        for base in node.bases:
            dotted = _resolve_dotted(info, base)
            resolved: str | None = None
            if dotted is not None:
                hit = program.canonical_module(dotted)
                if hit is not None and hit[1]:
                    # Classes of later modules register after this pass,
                    # so accept any in-tree dotted path as a class ref.
                    resolved = f"{hit[0]}.{hit[1]}"
            if resolved is None:
                name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if name is None:
                    continue
                resolved = f"?{name}"
            cls.bases.append(resolved)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = f"{qual}.{item.name}"
        program.classes[qual] = cls


# ----------------------------------------------------------------------
# Function-body extraction
# ----------------------------------------------------------------------


def _sink_kind(dotted: str, no_args: bool) -> str | None:
    """Hermeticity sink classification for an external call target."""
    if dotted in _WALL_CLOCK_CALLS:
        return "wall-clock"
    if dotted.startswith("random.") and dotted.count(".") == 1:
        return "global-randomness"
    for prefix in ("numpy.random.", "np.random."):
        if dotted.startswith(prefix):
            attr = dotted[len(prefix):].split(".")[0]
            if attr not in _NUMPY_RANDOM_ALLOWED:
                return "global-randomness"
            if attr == "default_rng" and no_args:
                return "global-randomness"
    return None


class _FunctionExtractor(ast.NodeVisitor):
    """Collect calls, sinks, raises, trys, and mutations of one function.

    Nested function/lambda bodies are flattened into the enclosing
    function: their behavior runs under its name (or ships with it to a
    worker), which is exactly the granularity the contract rules need.
    """

    def __init__(
        self, program: Program, info: ModuleInfo, fn: FunctionNode
    ) -> None:
        self.program = program
        self.info = info
        self.fn = fn
        self._try_stack: list[tuple[_TryInfo, bool]] = []
        self._depth = 0

    # -- helpers -------------------------------------------------------

    def _resolve_call(
        self, func: ast.expr
    ) -> tuple[str | None, bool, str | None, tuple[str, ...]]:
        """(target, is_project, method, receiver) for a call's func."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        parts.reverse()
        if not isinstance(node, ast.Name):
            return None, False, parts[-1] if parts else None, ()
        root = node.id
        if not parts:  # plain-name call
            dotted = _resolve_dotted(self.info, ast.Name(id=root, ctx=ast.Load()))
            if dotted is None or dotted == root and root not in self.info.toplevel:
                return None, False, None, ()
            target = self.program.project_target(dotted)
            if target is not None:
                return target, True, None, ()
            return dotted, False, None, ()
        if root == "self" and self.fn.cls is not None:
            if len(parts) == 1:
                target = self.program.mro_lookup(self.fn.cls, parts[0])
                return target, target is not None, parts[0], ("self",)
            return None, False, parts[-1], ("self", *parts[:-1])
        dotted = _resolve_dotted(self.info, func)
        if dotted is not None:
            target = self.program.project_target(dotted)
            if target is not None:
                return target, True, parts[-1], (root, *parts[:-1])
            return dotted, False, parts[-1], (root, *parts[:-1])
        return None, False, parts[-1], (root, *parts[:-1])

    def _guarded(self) -> bool:
        for try_info, in_body in self._try_stack:
            if in_body and any(
                h.bare
                or set(h.type_names)
                & (_REPRO_ERROR_NAMES | {"Exception", "BaseException"})
                for h in try_info.handlers
            ):
                return True
        return False

    def _receiver_of_target(self, expr: ast.expr) -> tuple[str, ...]:
        """Dotted chain under a Subscript/Attribute store target."""
        parts: list[str] = []
        node = expr
        while True:
            if isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Name):
                parts.append(node.id)
                break
            else:
                return ()
        parts.reverse()
        return tuple(parts)

    def _foreign_module_attr(self, chain: tuple[str, ...]) -> str | None:
        """``module.NAME`` description if the chain's root resolves to a
        *different* scanned module's top-level binding."""
        if not chain:
            return None
        root = chain[0]
        base = self.info.import_modules.get(root) or (
            self.info.import_objects.get(root)
        )
        if base is None:
            return None
        hit = self.program.canonical_module(base)
        if hit is None:
            return None
        primary, rest = hit
        if primary == self.info.name:
            return None
        if rest:
            attr = rest.split(".")[0]
        elif len(chain) >= 2:  # the alias names the module itself
            attr = chain[1]
        else:
            return None
        return f"{primary}.{attr}"

    # -- visitors ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.fn.local_defs.add(node.name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Global(self, node: ast.Global) -> None:
        self.fn.global_decls.append(
            (node.lineno, node.col_offset + 1, ", ".join(node.names))
        )

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if exc is not None:
            name = (
                exc.attr
                if isinstance(exc, ast.Attribute)
                else exc.id if isinstance(exc, ast.Name) else None
            )
            if name in DHT_ERROR_NAMES:
                self.fn.raises_dht = True
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        handlers = []
        for handler in node.handlers:
            names: list[str] = []
            bare = handler.type is None
            types = []
            if isinstance(handler.type, ast.Tuple):
                types = list(handler.type.elts)
            elif handler.type is not None:
                types = [handler.type]
            for texpr in types:
                if isinstance(texpr, ast.Attribute):
                    names.append(texpr.attr)
                elif isinstance(texpr, ast.Name):
                    names.append(texpr.id)
            body = handler.body
            reraises = any(
                isinstance(n, ast.Raise) for stmt in body for n in ast.walk(stmt)
            )
            pass_only = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in body
            )
            handlers.append(
                _Handler(
                    line=handler.lineno,
                    col=handler.col_offset + 1,
                    bare=bare,
                    type_names=tuple(names),
                    reraises=reraises,
                    pass_only=pass_only,
                )
            )
        try_info = _TryInfo(handlers=handlers)
        self.fn.trys.append(try_info)
        self._try_stack.append((try_info, True))
        for stmt in node.body:
            self.visit(stmt)
        self._try_stack.pop()
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        for stmt in [*node.orelse, *node.finalbody]:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        target, is_project, method, receiver = self._resolve_call(node.func)
        call = CallSite(
            line=node.lineno,
            col=node.col_offset + 1,
            target=target,
            project=is_project,
            method=method,
            receiver=receiver,
            guarded=self._guarded(),
            no_args=not node.args and not node.keywords,
        )
        self.fn.calls.append(call)
        for try_info, in_body in self._try_stack:
            if in_body:
                try_info.body_calls.append(call)

        if target is not None and not is_project:
            kind = _sink_kind(target, call.no_args)
            if kind is not None:
                self.fn.sinks.append((call.line, call.col, kind, target))

        # Route purity: metrics charging, kernel storage, store access.
        if receiver and receiver[-1] == "metrics" and method is not None:
            self.fn.purity_offenses.append(
                (call.line, call.col,
                 f"charges metrics via {'.'.join(receiver)}.{method}()")
            )
        if (
            receiver == ("self",)
            and method in KERNEL_STORAGE_METHODS
        ):
            self.fn.purity_offenses.append(
                (call.line, call.col,
                 f"calls kernel storage method self.{method}()")
            )
        if (
            receiver
            and receiver[-1] == "peers"
            and method in PEERSTORE_STORAGE_SURFACE
        ):
            self.fn.purity_offenses.append(
                (call.line, call.col,
                 f"reads/writes peer stores via "
                 f"{'.'.join(receiver)}.{method}()")
            )
        if (
            receiver
            and receiver[-1] == "store"
            and method in _CONTAINER_MUTATORS
        ):
            self.fn.purity_offenses.append(
                (call.line, call.col,
                 f"mutates a peer store via {'.'.join(receiver)}.{method}()")
            )

        # Parallel-engine safety: container mutation of foreign globals,
        # and pool fan-out sites.
        if method in _CONTAINER_MUTATORS and receiver:
            foreign = self._foreign_module_attr(receiver)
            if foreign is not None:
                self.fn.foreign_mutations.append(
                    (call.line, call.col, f"{foreign}.{method}()")
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in POOL_SHIP_METHODS
            and node.args
        ):
            self.fn.ship_sites.append(
                (node.lineno, node.col_offset + 1, self._worker_of(node.args[0]))
            )
        self.generic_visit(node)

    def _worker_of(self, arg: ast.expr) -> _Worker:
        if isinstance(arg, ast.Lambda):
            return _Worker("lambda", None)
        if isinstance(arg, ast.Attribute):
            root = arg.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id == "self":
                return _Worker("bound", arg.attr)
            dotted = _resolve_dotted(self.info, arg)
            if dotted is not None:
                return _Worker("name", dotted)
            return _Worker("opaque", arg.attr)
        if isinstance(arg, ast.Name):
            if arg.id in self.fn.local_defs:
                return _Worker("closure", arg.id)
            dotted = _resolve_dotted(self.info, arg)
            if dotted is not None:
                return _Worker("name", dotted)
            return _Worker("opaque", arg.id)
        return _Worker("opaque", None)

    def _record_store_target(self, target: ast.expr) -> None:
        chain = self._receiver_of_target(target)
        if not chain:
            return
        if isinstance(target, ast.Subscript) or isinstance(target, ast.Attribute):
            if "store" in chain[1:] or chain[-1] == "store":
                self.fn.purity_offenses.append(
                    (target.lineno, target.col_offset + 1,
                     f"mutates a peer store via {'.'.join(chain)}")
                )
            foreign = self._foreign_module_attr(chain)
            if foreign is not None:
                self.fn.foreign_mutations.append(
                    (target.lineno, target.col_offset + 1, foreign)
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store_target(node.target)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Program construction
# ----------------------------------------------------------------------


def build_program(paths: Sequence[Path | str]) -> Program:
    """Parse every Python file under ``paths`` into a :class:`Program`.

    Test modules (``tests/`` directories, ``test_*.py``, ``conftest.py``)
    are excluded: the contracts bind library code only.
    """
    resolved = [Path(p) for p in paths]
    for path in resolved:
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
    program = Program()
    infos: list[ModuleInfo] = []
    for file in _iter_python_files(resolved):
        if _is_test_file(file):
            continue
        root = next((p for p in resolved if p.is_dir()), file.parent)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except OSError as exc:
            program.parse_errors.append(
                Violation(str(file), 1, 1, "E902", f"cannot read file: {exc}")
            )
            continue
        except SyntaxError as exc:
            program.parse_errors.append(
                Violation(
                    str(file), exc.lineno or 1, (exc.offset or 0) + 1,
                    "E999", f"syntax error: {exc.msg}",
                )
            )
            continue
        names = _module_names(file, root)
        info = ModuleInfo(
            name=names[0],
            path=file,
            tree=tree,
            source_lines=source.splitlines(),
            deterministic=_in_deterministic_package(file),
        )
        for name in names:
            program.aliases.setdefault(name, info.name)
        program.modules[info.name] = info
        infos.append(info)

    # Pass 2: imports and top-level names (alias table must be complete).
    for info in infos:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                info.toplevel.add(node.name)
        _collect_imports(info)
    # Pass 3: classes (bases resolve through the alias table).
    for info in infos:
        _collect_classes(program, info)
    # Pass 4: function registry (so calls can resolve to any function).
    for info in infos:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{info.name}.{node.name}"
                program.functions[qual] = FunctionNode(
                    qualname=qual, module=info.name, cls=None,
                    path=info.path, line=node.lineno,
                )
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{info.name}.{node.name}"
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qual = f"{cls_qual}.{item.name}"
                        program.functions[qual] = FunctionNode(
                            qualname=qual, module=info.name, cls=cls_qual,
                            path=info.path, line=item.lineno,
                        )
        body_qual = f"{info.name}.{MODULE_BODY}"
        program.functions[body_qual] = FunctionNode(
            qualname=body_qual, module=info.name, cls=None,
            path=info.path, line=1,
        )
    # Pass 5: extract bodies.
    for info in infos:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = program.functions[f"{info.name}.{node.name}"]
                extractor = _FunctionExtractor(program, info, fn)
                for stmt in node.body:
                    extractor.visit(stmt)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        fn = program.functions[
                            f"{info.name}.{node.name}.{item.name}"
                        ]
                        extractor = _FunctionExtractor(program, info, fn)
                        for stmt in item.body:
                            extractor.visit(stmt)
            else:
                fn = program.functions[f"{info.name}.{MODULE_BODY}"]
                _FunctionExtractor(program, info, fn).visit(node)
    return program


# ----------------------------------------------------------------------
# Dataflow fixpoints
# ----------------------------------------------------------------------


def _taint_map(program: Program) -> dict[str, tuple[str | None, str, str]]:
    """qualname -> (next hop, sink kind, sink dotted) for every function
    from which a hermeticity sink is reachable via project calls."""
    taint: dict[str, tuple[str | None, str, str]] = {}
    worklist: list[str] = []
    for qual, fn in program.functions.items():
        if fn.sinks:
            _, _, kind, dotted = fn.sinks[0]
            taint[qual] = (None, kind, dotted)
            worklist.append(qual)
    reverse: dict[str, list[str]] = {}
    for qual, fn in program.functions.items():
        for call in fn.calls:
            if call.project and call.target is not None:
                reverse.setdefault(call.target, []).append(qual)
    while worklist:
        callee = worklist.pop()
        _, kind, dotted = taint[callee]
        for caller in reverse.get(callee, ()):
            if caller not in taint:
                taint[caller] = (callee, kind, dotted)
                worklist.append(caller)
    return taint


def _taint_chain(
    taint: dict[str, tuple[str | None, str, str]], qual: str
) -> str:
    links = [qual]
    cursor: str | None = qual
    while cursor is not None:
        nxt, _, dotted = taint[cursor]
        if nxt is None:
            links.append(f"{dotted}()")
            break
        links.append(nxt)
        cursor = nxt
    if len(links) > 5:
        links = links[:2] + ["..."] + links[-2:]
    return " -> ".join(links)


def _may_raise_dht(program: Program) -> set[str]:
    """Functions from which a typed DHTError can escape (conservative)."""
    may_raise: set[str] = set()
    for qual, fn in program.functions.items():
        if fn.raises_dht:
            may_raise.add(qual)
        elif fn.cls is not None and qual.split(".")[-1] in ROUTED_OP_NAMES:
            # A routed-op method on a DHT-derived class is presumed to
            # raise: substrates raise RoutingError/NoSuchPeerError even
            # when this concrete body does not spell a ``raise``.
            if program.class_reaches(fn.cls, "DHT"):
                may_raise.add(qual)
    changed = True
    while changed:
        changed = False
        for qual, fn in program.functions.items():
            if qual in may_raise:
                continue
            for call in fn.calls:
                if call.guarded:
                    continue
                if call.project and call.target in may_raise:
                    may_raise.add(qual)
                    changed = True
                    break
                if (
                    call.method in ROUTED_OP_NAMES
                    and call.receiver
                    and call.receiver[-1] in DHT_RECEIVER_NAMES
                ):
                    may_raise.add(qual)
                    changed = True
                    break
    return may_raise


def _call_may_raise(call: CallSite, may_raise: set[str]) -> bool:
    if call.project and call.target in may_raise:
        return True
    return bool(
        call.method in ROUTED_OP_NAMES
        and call.receiver
        and call.receiver[-1] in DHT_RECEIVER_NAMES
    )


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


def _check_hermeticity(program: Program) -> list[Violation]:
    """LHT007: deterministic code must not reach a sink through helpers.

    Only the *frontier* edge is reported — the call site where control
    leaves the deterministic packages into a tainted helper — so one
    hidden sink yields one actionable finding, not a cascade up every
    caller.  Sinks directly inside a deterministic package stay
    LHT001/LHT002 findings of the per-file linter.
    """
    taint = _taint_map(program)
    violations: list[Violation] = []
    for qual, fn in program.functions.items():
        caller_mod = program.modules.get(fn.module)
        if caller_mod is None or not caller_mod.deterministic:
            continue
        for call in fn.calls:
            if not call.project or call.target is None:
                continue
            if call.target not in taint:
                continue
            callee = program.functions.get(call.target)
            if callee is None:
                continue
            callee_mod = program.modules.get(callee.module)
            if callee_mod is not None and callee_mod.deterministic:
                continue  # the sink (or a closer frontier) is flagged there
            _, kind, dotted = taint[call.target]
            violations.append(
                Violation(
                    path=str(fn.path),
                    line=call.line,
                    col=call.col,
                    code="LHT007",
                    message=(
                        f"{kind} sink reachable from deterministic code: "
                        f"{_taint_chain(taint, call.target)} (called from "
                        f"{qual})"
                    ),
                )
            )
    return violations


def _check_kernel_encapsulation(program: Program) -> list[Violation]:
    """LHT008: the PeerStore surface is layered — storage in the kernel
    only, membership in ``repro.dht`` substrate modules only."""
    violations: list[Violation] = []
    for info in program.modules.values():
        if info.name.endswith("dht.kernel") or info.name == "kernel":
            continue
        in_dht = "dht" in info.name.split(".")
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                receiver_is_peers = (
                    isinstance(value, ast.Attribute) and value.attr == "peers"
                ) or (isinstance(value, ast.Name) and value.id == "peers")
                if not receiver_is_peers:
                    continue
                if node.attr in PEERSTORE_STORAGE_SURFACE:
                    violations.append(
                        Violation(
                            path=str(info.path),
                            line=node.lineno,
                            col=node.col_offset + 1,
                            code="LHT008",
                            message=(
                                f"peer-store storage surface "
                                f"*.peers.{node.attr} used outside "
                                "repro.dht.kernel — storage and metrics "
                                "accounting live in the kernel only"
                            ),
                        )
                    )
                elif node.attr in PEERSTORE_MEMBERSHIP_SURFACE and not in_dht:
                    violations.append(
                        Violation(
                            path=str(info.path),
                            line=node.lineno,
                            col=node.col_offset + 1,
                            code="LHT008",
                            message=(
                                f"peer-store membership method "
                                f"*.peers.{node.attr} used outside the "
                                "repro.dht substrate modules"
                            ),
                        )
                    )
            elif isinstance(node, ast.Call) and not in_dht:
                dotted = _resolve_dotted(info, node.func)
                if dotted is not None and dotted.split(".")[-1] == "PeerStore":
                    hit = program.canonical_module(dotted)
                    if hit is not None:
                        violations.append(
                            Violation(
                                path=str(info.path),
                                line=node.lineno,
                                col=node.col_offset + 1,
                                code="LHT008",
                                message=(
                                    "PeerStore constructed outside the "
                                    "repro.dht package — per-peer stores "
                                    "belong to substrates"
                                ),
                            )
                        )
    return violations


def _route_closure(program: Program, entry: str) -> list[str]:
    """Project functions reachable from a route entry, stopping at the
    kernel storage boundary (those call edges are themselves offenses)."""
    seen: list[str] = []
    stack = [entry]
    visited: set[str] = set()
    while stack:
        qual = stack.pop()
        if qual in visited:
            continue
        visited.add(qual)
        fn = program.functions.get(qual)
        if fn is None:
            continue
        seen.append(qual)
        for call in fn.calls:
            if not call.project or call.target is None:
                continue
            if call.target.split(".")[-1] in KERNEL_STORAGE_METHODS:
                continue  # boundary: the edge is reported, not traversed
            stack.append(call.target)
    return seen


def _check_route_purity(program: Program) -> list[Violation]:
    """LHT009: route paths never store, charge, or touch peer stores."""
    violations: list[Violation] = []
    for cls in program.classes.values():
        if cls.qualname.split(".")[-1] == "SubstrateBase":
            continue
        if not program.class_reaches(cls.qualname, "SubstrateBase"):
            continue
        for method_name, fn_qual in cls.methods.items():
            if method_name not in ROUTE_METHODS:
                continue
            for member in _route_closure(program, fn_qual):
                fn = program.functions.get(member)
                if fn is None:
                    continue
                for line, col, description in fn.purity_offenses:
                    violations.append(
                        Violation(
                            path=str(fn.path),
                            line=line,
                            col=col,
                            code="LHT009",
                            message=(
                                f"route path {cls.qualname.split('.')[-1]}."
                                f"{method_name} -> {member.split('.')[-1]} "
                                f"{description} — the kernel charges routed "
                                "operations exactly once"
                            ),
                        )
                    )
    return violations


def _check_placement_purity(program: Program) -> list[Violation]:
    """LHT013: placement policies are pure reads of topology.

    Reuses the LHT009 closure machinery over ``replicas_for`` entry
    points of :class:`PlacementPolicy` subclasses, and adds the
    hermeticity sinks (wall clock, randomness) that LHT009 leaves to
    LHT007: a placement decision that samples or reads the clock would
    disagree between the writer that placed a value and the reader that
    probes for it.
    """
    violations: list[Violation] = []
    for cls in program.classes.values():
        if cls.qualname.split(".")[-1] == "PlacementPolicy":
            continue
        if not program.class_reaches(cls.qualname, "PlacementPolicy"):
            continue
        for method_name, fn_qual in cls.methods.items():
            if method_name not in PLACEMENT_METHODS:
                continue
            for member in _route_closure(program, fn_qual):
                fn = program.functions.get(member)
                if fn is None:
                    continue
                offenses = list(fn.purity_offenses) + [
                    (line, col, f"reaches {kind} sink {dotted}")
                    for line, col, kind, dotted in fn.sinks
                ]
                for line, col, description in offenses:
                    violations.append(
                        Violation(
                            path=str(fn.path),
                            line=line,
                            col=col,
                            code="LHT013",
                            message=(
                                f"placement path "
                                f"{cls.qualname.split('.')[-1]}."
                                f"{method_name} -> "
                                f"{member.split('.')[-1]} {description} "
                                "— replica placement is a pure, "
                                "deterministic read of topology"
                            ),
                        )
                    )
    return violations


def _check_exception_flow(program: Program) -> list[Violation]:
    """LHT010: no broad swallow of DHTError; no silent typed swallow."""
    may_raise = _may_raise_dht(program)
    violations: list[Violation] = []
    for fn in program.functions.values():
        for try_info in fn.trys:
            risky = [c for c in try_info.body_calls
                     if _call_may_raise(c, may_raise)]
            for handler in try_info.handlers:
                broad = handler.bare or (
                    set(handler.type_names) & {"Exception", "BaseException"}
                )
                if broad and not handler.reraises and risky:
                    caught = (
                        "bare except" if handler.bare
                        else f"except {', '.join(handler.type_names)}"
                    )
                    source = risky[0].target or (
                        f"{'.'.join(risky[0].receiver)}.{risky[0].method}"
                    )
                    violations.append(
                        Violation(
                            path=str(fn.path),
                            line=handler.line,
                            col=handler.col,
                            code="LHT010",
                            message=(
                                f"{caught} swallows typed DHTError signals "
                                f"(e.g. from {source}) in {fn.qualname} — "
                                "catch repro.errors types, re-raise, or "
                                "return a degraded result"
                            ),
                        )
                    )
                elif (
                    set(handler.type_names) & _REPRO_ERROR_NAMES
                    and handler.pass_only
                    and risky
                ):
                    violations.append(
                        Violation(
                            path=str(fn.path),
                            line=handler.line,
                            col=handler.col,
                            code="LHT010",
                            message=(
                                f"except {', '.join(handler.type_names)}: "
                                f"pass silently discards a DHT failure in "
                                f"{fn.qualname} — record degraded state "
                                "(MatchStatus.UNREACHABLE / complete=False) "
                                "or propagate"
                            ),
                        )
                    )
    return violations


def _worker_closure_violations(
    program: Program, worker_qual: str, site: tuple[int, int], path: Path
) -> list[Violation]:
    violations: list[Violation] = []
    visited: set[str] = set()
    stack = [worker_qual]
    while stack:
        qual = stack.pop()
        if qual in visited:
            continue
        visited.add(qual)
        fn = program.functions.get(qual)
        if fn is None:
            continue
        for line, col, names in fn.global_decls:
            violations.append(
                Violation(
                    path=str(fn.path), line=line, col=col, code="LHT011",
                    message=(
                        f"pool worker {worker_qual} rebinds module-level "
                        f"name(s) {names} via `global` — spawn workers get "
                        "a fresh module, so this state diverges from the "
                        "parent"
                    ),
                )
            )
        for line, col, description in fn.foreign_mutations:
            violations.append(
                Violation(
                    path=str(fn.path), line=line, col=col, code="LHT011",
                    message=(
                        f"pool worker {worker_qual} mutates another "
                        f"module's state ({description}) — cross-module "
                        "mutable state is invisible to --jobs N spawn "
                        "workers"
                    ),
                )
            )
        for call in fn.calls:
            if call.project and call.target is not None:
                stack.append(call.target)
    return violations


def _check_parallel_safety(program: Program) -> list[Violation]:
    """LHT011: pool-shipped callables are module-level and state-clean."""
    violations: list[Violation] = []
    for fn in program.functions.values():
        for line, col, worker in fn.ship_sites:
            if worker.kind == "lambda":
                violations.append(
                    Violation(
                        path=str(fn.path), line=line, col=col, code="LHT011",
                        message=(
                            "lambda shipped to a process pool — spawn "
                            "workers need a picklable module-level function"
                        ),
                    )
                )
            elif worker.kind == "bound":
                violations.append(
                    Violation(
                        path=str(fn.path), line=line, col=col, code="LHT011",
                        message=(
                            f"bound method self.{worker.name} shipped to a "
                            "process pool — it drags its instance (and any "
                            "captured state) across the spawn boundary"
                        ),
                    )
                )
            elif worker.kind == "closure":
                violations.append(
                    Violation(
                        path=str(fn.path), line=line, col=col, code="LHT011",
                        message=(
                            f"locally defined function {worker.name} shipped "
                            "to a process pool — closures are not picklable "
                            "by spawn workers; move it to module level"
                        ),
                    )
                )
            elif worker.kind == "name" and worker.name is not None:
                target = program.project_target(worker.name)
                if target is not None:
                    violations.extend(
                        _worker_closure_violations(
                            program, target, (line, col), fn.path
                        )
                    )
    return violations


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def analyze_paths(
    paths: Sequence[Path | str],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Run every whole-program rule; returns violations, sorted.

    ``# noqa`` suppression, unknown-code rejection, and sorting follow
    the linter's semantics exactly, so the two tools compose: a line can
    carry ``# noqa: LHT002, LHT007`` and silence each tool's finding
    independently.
    """
    known = set(ANALYZER_RULES) | {"E902", "E999"}
    for code in [*(select or []), *(ignore or [])]:
        if code.upper() not in known:
            raise ConfigurationError(
                f"unknown rule code {code!r}; known codes: {sorted(known)}"
            )
    program = build_program(paths)
    violations = list(program.parse_errors)
    violations.extend(_check_hermeticity(program))
    violations.extend(_check_kernel_encapsulation(program))
    violations.extend(_check_route_purity(program))
    violations.extend(_check_placement_purity(program))
    violations.extend(_check_exception_flow(program))
    violations.extend(_check_parallel_safety(program))

    # Apply per-line noqa from each file's own source.
    lines_by_path = {
        str(info.path): info.source_lines for info in program.modules.values()
    }
    kept: list[Violation] = []
    for violation in violations:
        source_lines = lines_by_path.get(violation.path)
        if source_lines is None:
            kept.append(violation)
            continue
        kept.extend(_apply_noqa([violation], source_lines))
    violations = kept

    if select:
        chosen = {code.upper() for code in select}
        violations = [v for v in violations if v.code in chosen]
    if ignore:
        dropped = {code.upper() for code in ignore}
        violations = [v for v in violations if v.code not in dropped]
    # A finding can be emitted once per route entry or pool site that
    # reaches it; report each (path, line, col, code, message) once.
    unique = {
        (v.path, v.line, v.col, v.code, v.message): v for v in violations
    }
    return sorted(
        unique.values(), key=lambda v: (v.path, v.line, v.col, v.code)
    )


def _report_json(
    violations: list[Violation], n_files: int, wall_s: float
) -> str:
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.code] = counts.get(violation.code, 0) + 1
    return json.dumps(
        {
            "tool": "repro.devtools.flow",
            "rules": ANALYZER_RULES,
            "files": n_files,
            "violations": [v.to_dict() for v in violations],
            "counts": dict(sorted(counts.items())),
            "analysis_wall_s": round(wall_s, 4),
        },
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools analyze",
        description="Whole-program contract analyzer for the LHT "
        "reproduction (call-graph rules LHT007+).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze as one program",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODE",
        help="only report these rule codes (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODE",
        help="suppress these rule codes (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json includes analysis wall time)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, description in sorted(ANALYZER_RULES.items()):
            print(f"{code}  {description}")
        return 0

    started = time.perf_counter()
    try:
        violations = analyze_paths(
            args.paths, select=args.select, ignore=args.ignore
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wall_s = time.perf_counter() - started
    n_files = sum(
        1
        for f in _iter_python_files([Path(p) for p in args.paths])
        if not _is_test_file(f)
    )
    if args.format == "json":
        print(_report_json(violations, n_files, wall_s))
        return 1 if violations else 0
    for violation in violations:
        print(violation.format())
    if violations:
        print(
            f"{len(violations)} violation(s) in {n_files} file(s) "
            f"({wall_s:.2f}s)"
        )
        return 1
    print(f"ok: {n_files} file(s) analyzed clean ({wall_s:.2f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
