"""Linear bandwidth cost model for over-DHT indexes (paper §8).

Bandwidth is the scarce resource in P2P networks; the model charges

* ``i`` units per record moved between peers (grows with record size),
* ``j`` units per DHT-lookup (grows with network size: ``O(log N)`` hops).

Analytic per-split costs (Eqs. 1-2) and the saving ratio (Eq. 3) are
provided alongside a calculator for *measured* costs from an index's
maintenance ledger, so experiments can cross-check theory against the
simulation (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import CostLedger
from repro.errors import ConfigurationError

__all__ = ["LinearCostModel", "psi_lht", "psi_pht", "saving_ratio", "gamma"]


def psi_lht(theta_split: int, i: float, j: float) -> float:
    """Average LHT cost per leaf split (paper Eq. 1).

    One DHT-lookup (the remote child's put) plus moving half the bucket:
    ``Ψ_LHT = θ/2 · i + 1 · j``.
    """
    return 0.5 * theta_split * i + j


def psi_pht(theta_split: int, i: float, j: float) -> float:
    """Average PHT cost per leaf split (paper Eq. 2).

    Both children move (2 lookups, the whole bucket) and two B+-tree leaf
    links are repaired (2 more lookups): ``Ψ_PHT = θ · i + 4 · j``.
    """
    return theta_split * i + 4 * j


def gamma(theta_split: int, i: float, j: float) -> float:
    """The dimensionless ratio ``γ = θ·i / j`` (paper §8.2)."""
    if j <= 0:
        raise ConfigurationError("j must be positive")
    return theta_split * i / j


def saving_ratio(gamma_value: float) -> float:
    """LHT's maintenance saving over PHT (paper Eq. 3).

    ``1 - Ψ_LHT/Ψ_PHT = (γ/2 + 3) / (γ + 4)`` — which ranges from 75%
    (lookup-dominated, γ → 0) down to 50% (data-dominated, γ → ∞), the
    paper's "saves up to 75% (at least 50%)" claim.
    """
    if gamma_value < 0:
        raise ConfigurationError(f"gamma must be non-negative: {gamma_value}")
    return (0.5 * gamma_value + 3) / (gamma_value + 4)


@dataclass(frozen=True, slots=True)
class LinearCostModel:
    """A concrete (i, j) instantiation of the cost model."""

    record_move_cost: float = 1.0  # i
    lookup_cost: float = 1.0  # j

    def __post_init__(self) -> None:
        if self.record_move_cost < 0 or self.lookup_cost <= 0:
            raise ConfigurationError("require i >= 0 and j > 0")

    def gamma(self, theta_split: int) -> float:
        """``γ = θ·i / j`` for this parameterization."""
        return gamma(theta_split, self.record_move_cost, self.lookup_cost)

    def psi_lht(self, theta_split: int) -> float:
        """Analytic per-split LHT cost (Eq. 1)."""
        return psi_lht(theta_split, self.record_move_cost, self.lookup_cost)

    def psi_pht(self, theta_split: int) -> float:
        """Analytic per-split PHT cost (Eq. 2)."""
        return psi_pht(theta_split, self.record_move_cost, self.lookup_cost)

    def analytic_saving_ratio(self, theta_split: int) -> float:
        """Eq. 3 evaluated for this parameterization."""
        return saving_ratio(self.gamma(theta_split))

    def ledger_cost(self, ledger: CostLedger) -> float:
        """Measured maintenance cost of an index run:
        ``moved · i + lookups · j``."""
        return (
            ledger.maintenance_records_moved * self.record_move_cost
            + ledger.maintenance_lookups * self.lookup_cost
        )

    def measured_saving_ratio(
        self, lht_ledger: CostLedger, pht_ledger: CostLedger
    ) -> float:
        """``1 - cost(LHT)/cost(PHT)`` from two measured ledgers."""
        pht_cost = self.ledger_cost(pht_ledger)
        if pht_cost == 0:
            raise ConfigurationError("PHT ledger has zero cost")
        return 1.0 - self.ledger_cost(lht_ledger) / pht_cost
