"""The paper's linear bandwidth cost model (§8)."""

from repro.costmodel.model import (
    LinearCostModel,
    gamma,
    psi_lht,
    psi_pht,
    saving_ratio,
)

__all__ = ["LinearCostModel", "gamma", "psi_lht", "psi_pht", "saving_ratio"]
