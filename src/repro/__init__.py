"""repro — a reproduction of *LHT: A Low-Maintenance Indexing Scheme over
DHTs* (Tang & Zhou, ICDCS 2008).

The package provides:

* :class:`repro.LHTIndex` — the paper's contribution: a distributed
  space-partition tree mapped onto any generic DHT by the naming function
  ``f_n``, supporting exact-match, range, and min/max queries with
  one-DHT-lookup splits;
* DHT substrates (:class:`repro.LocalDHT`, :class:`repro.ChordDHT`,
  :class:`repro.KademliaDHT`, :class:`repro.PastryDHT`) behind one
  put/get interface;
* the PHT / DST / raw-DHT baselines (:mod:`repro.baselines`);
* the paper's linear cost model (:mod:`repro.costmodel`);
* workload generators (:mod:`repro.workloads`) and the experiment harness
  (:mod:`repro.experiments`) regenerating every figure in §9;
* a serving layer (:mod:`repro.serve`) driving the index from many
  concurrent client sessions — admission control, lookup coalescing
  onto batched DHT rounds, and latency percentiles (see
  ``docs/serving.md``).

Quickstart::

    from repro import LHTIndex, LocalDHT

    index = LHTIndex(LocalDHT(n_peers=64))
    index.insert(0.42, "answer")
    print(index.range_query(0.4, 0.5).records)
"""

from repro.baselines import DSTIndex, NaiveIndex, PHTIndex
from repro.cache import LeafCache
from repro.core import (
    ExactMatchResult,
    IndexConfig,
    IndexInspector,
    Label,
    LeafBucket,
    LHTIndex,
    MatchStatus,
    Range,
    Record,
    ReferenceTree,
)
from repro.costmodel import LinearCostModel, saving_ratio
from repro.dht import (
    CANDHT,
    ChordDHT,
    DHT,
    KademliaDHT,
    LocalDHT,
    MetricsRecorder,
    PastryDHT,
)
from repro.multidim import MultiDimIndex
from repro.resilience import (
    CircuitBreaker,
    ResilientDHT,
    RetryPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "DSTIndex",
    "NaiveIndex",
    "PHTIndex",
    "LeafCache",
    "ExactMatchResult",
    "IndexConfig",
    "IndexInspector",
    "Label",
    "LeafBucket",
    "LHTIndex",
    "MatchStatus",
    "Range",
    "Record",
    "ReferenceTree",
    "LinearCostModel",
    "saving_ratio",
    "CANDHT",
    "ChordDHT",
    "DHT",
    "KademliaDHT",
    "LocalDHT",
    "MetricsRecorder",
    "PastryDHT",
    "MultiDimIndex",
    "CircuitBreaker",
    "ResilientDHT",
    "RetryPolicy",
    "__version__",
]
