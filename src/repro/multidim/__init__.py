"""Multi-dimensional indexing over LHT via a space-filling curve.

The paper's footnote 1: "One dimensional index structure can serve as an
infrastructure for multi dimensional indexing (e.g., by using SFC)".
This package implements that extension with the z-order (Morton) curve.
"""

from repro.multidim.index import MultiDimIndex, RectQueryResult
from repro.multidim.zorder import (
    decompose_rectangle,
    zorder_decode,
    zorder_encode,
)

__all__ = [
    "MultiDimIndex",
    "RectQueryResult",
    "decompose_rectangle",
    "zorder_decode",
    "zorder_encode",
]
