"""Z-order (Morton) space-filling curve over the unit hypercube.

Each point in ``[0, 1)^d`` maps to a 1-D key in ``[0, 1)`` by interleaving
the leading bits of its coordinates.  Axis-aligned rectangles decompose
into a bounded set of contiguous 1-D key ranges (the curve's canonical
cells), each answerable with one LHT range query.
"""

from __future__ import annotations

from repro.core.keys import key_bits
from repro.errors import ConfigurationError, KeyOutOfRangeError

__all__ = ["zorder_encode", "zorder_decode", "decompose_rectangle"]


def zorder_encode(coords: tuple[float, ...], bits_per_dim: int = 16) -> float:
    """Map a d-dimensional point to its z-order key in [0, 1).

    Interleaves the first ``bits_per_dim`` bits of each coordinate,
    cycling through dimensions (dimension 0 contributes the most
    significant bit).
    """
    if not coords:
        raise ConfigurationError("need at least one coordinate")
    if bits_per_dim < 1:
        raise ConfigurationError(f"bits_per_dim must be >= 1: {bits_per_dim}")
    for c in coords:
        if not 0.0 <= c < 1.0:
            raise KeyOutOfRangeError(f"coordinate {c} outside [0, 1)")
    dim_bits = [key_bits(c, bits_per_dim) for c in coords]
    interleaved = "".join(
        dim_bits[d][i] for i in range(bits_per_dim) for d in range(len(coords))
    )
    return int(interleaved, 2) / (1 << len(interleaved))


def zorder_decode(
    key: float, n_dims: int, bits_per_dim: int = 16
) -> tuple[float, ...]:
    """Invert :func:`zorder_encode` (returns the cell's lower corner)."""
    if n_dims < 1:
        raise ConfigurationError(f"n_dims must be >= 1: {n_dims}")
    total_bits = n_dims * bits_per_dim
    interleaved = key_bits(key, total_bits)
    coords = []
    for d in range(n_dims):
        bits = interleaved[d::n_dims]
        coords.append(int(bits, 2) / (1 << bits_per_dim) if bits else 0.0)
    return tuple(coords)


def decompose_rectangle(
    lows: tuple[float, ...],
    highs: tuple[float, ...],
    bits_per_dim: int = 16,
    max_cells: int = 64,
) -> list[tuple[float, float]]:
    """Decompose an axis-aligned query rectangle into z-order key ranges.

    Recursively subdivides the z-order cells (each z prefix is a
    hyper-rectangle): cells fully inside the query emit their exact key
    interval; once the cell budget is hit, partially overlapping cells
    emit their whole interval (callers filter records by true coordinate
    membership, so over-approximation affects cost, not correctness).
    Adjacent intervals are merged before returning.
    """
    if len(lows) != len(highs) or not lows:
        raise ConfigurationError("lows/highs must be equal-length, non-empty")
    if any(lo > hi for lo, hi in zip(lows, highs)):
        raise ConfigurationError("rectangle has lo > hi")
    n_dims = len(lows)
    max_prefix = n_dims * bits_per_dim
    intervals: list[tuple[float, float]] = []

    def cell_bounds(prefix: str) -> tuple[list[float], list[float]]:
        clows = []
        chighs = []
        for d in range(n_dims):
            bits = prefix[d::n_dims]
            width = 2.0 ** -len(bits)
            base = int(bits, 2) * width if bits else 0.0
            clows.append(base)
            chighs.append(base + (width if bits else 1.0))
        return clows, chighs

    def visit(prefix: str, budget: list[int]) -> None:
        clows, chighs = cell_bounds(prefix)
        if any(ch <= lo or cl >= hi for cl, ch, lo, hi in zip(clows, chighs, lows, highs)):
            return  # disjoint
        contained = all(
            lo <= cl and ch <= hi
            for cl, ch, lo, hi in zip(clows, chighs, lows, highs)
        )
        if contained or len(prefix) >= max_prefix or budget[0] <= 1:
            width = 2.0 ** -len(prefix)
            base = int(prefix, 2) * width if prefix else 0.0
            intervals.append((base, base + width))
            return
        budget[0] -= 1
        visit(prefix + "0", budget)
        visit(prefix + "1", budget)

    visit("", [max_cells])
    intervals.sort()
    merged: list[tuple[float, float]] = []
    for lo, hi in intervals:
        if merged and merged[-1][1] >= lo:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
