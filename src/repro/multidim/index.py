"""Multi-dimensional point index: z-order front-end over LHT.

Points in ``[0, 1)^d`` are stored under their z-order key; axis-aligned
rectangle queries decompose into a handful of 1-D LHT range queries whose
results are filtered by true coordinate membership.  The cost of a
rectangle query is the sum of its component range-query costs — all of
which inherit LHT's ``B + 3`` near-optimality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.base import DHT
from repro.errors import ConfigurationError
from repro.multidim.zorder import decompose_rectangle, zorder_encode

__all__ = ["MultiDimIndex", "RectQueryResult"]


@dataclass(frozen=True, slots=True)
class RectQueryResult:
    """Outcome of a rectangle query."""

    points: tuple[tuple[tuple[float, ...], Any], ...]
    dht_lookups: int
    parallel_steps: int
    component_ranges: int


class MultiDimIndex:
    """A d-dimensional point index built on :class:`LHTIndex`.

    Args:
        dht: Any put/get substrate.
        n_dims: Dimensionality of the data.
        bits_per_dim: Curve resolution; the underlying LHT ``max_depth``
            defaults to ``n_dims * bits_per_dim`` so leaf splits can
            always separate distinct cells.
    """

    def __init__(
        self,
        dht: DHT,
        n_dims: int,
        bits_per_dim: int = 10,
        config: IndexConfig | None = None,
    ) -> None:
        if n_dims < 1:
            raise ConfigurationError(f"n_dims must be >= 1: {n_dims}")
        self.n_dims = n_dims
        self.bits_per_dim = bits_per_dim
        if config is None:
            config = IndexConfig(max_depth=min(48, n_dims * bits_per_dim + 1))
        self.index = LHTIndex(dht, config)

    def insert(self, point: tuple[float, ...], value: Any = None) -> int:
        """Insert one point; returns DHT-lookups used."""
        if len(point) != self.n_dims:
            raise ConfigurationError(
                f"expected {self.n_dims} coordinates, got {len(point)}"
            )
        key = zorder_encode(point, self.bits_per_dim)
        result = self.index.insert(key, (point, value))
        return result.dht_lookups

    def rectangle_query(
        self,
        lows: tuple[float, ...],
        highs: tuple[float, ...],
        max_cells: int = 64,
    ) -> RectQueryResult:
        """All points inside the half-open rectangle ``[lows, highs)``."""
        if len(lows) != self.n_dims or len(highs) != self.n_dims:
            raise ConfigurationError(
                f"rectangle must have {self.n_dims} dimensions"
            )
        ranges = decompose_rectangle(
            lows, highs, self.bits_per_dim, max_cells=max_cells
        )
        points: list[tuple[tuple[float, ...], Any]] = []
        lookups = 0
        steps = 0
        for lo, hi in ranges:
            result = self.index.range_query(lo, hi)
            lookups += result.dht_lookups
            # The component range queries are issued in parallel.
            steps = max(steps, result.parallel_steps)
            for record in result.records:
                point, value = record.value
                if all(
                    l <= c < h for c, l, h in zip(point, lows, highs)
                ):
                    points.append((point, value))
        points.sort(key=lambda pv: pv[0])
        return RectQueryResult(
            points=tuple(points),
            dht_lookups=lookups,
            parallel_steps=steps,
            component_ranges=len(ranges),
        )

    def __len__(self) -> int:
        return len(self.index)
