"""Client-side leaf-label caching for LHT (read-path extension).

The paper pays ``log(D/2)`` DHT-gets on *every* exact match; real
workloads repeat keys, and a cached leaf label is self-validating via
the label algebra, so the repeated case collapses to one validated get.
See :mod:`repro.cache.leafcache` for the data structure and safety
argument, :mod:`repro.cache.lookup` for the fronted lookup, and
``docs/performance.md`` for design notes and when *not* to enable it.

Enable per index via ``IndexConfig(cache_enabled=True)``; observe
behaviour through the ``cache_hits`` / ``cache_misses`` / ``cache_stale``
counters on the substrate's :class:`~repro.dht.metrics.MetricsRecorder`.
"""

from repro.cache.leafcache import LeafCache
from repro.cache.lookup import cached_lookup

__all__ = ["LeafCache", "cached_lookup"]
