"""A bounded LRU cache of leaf labels, keyed by key interval.

The cache is the client-side state that turns LHT's ``log(D/2)``-get
exact match (Alg. 2) into a 1-get operation on repeated keys.  It stores
*leaf labels only* — never buckets — because a label is self-validating:
the reader re-fetches the bucket stored under ``f_n(label)`` and checks,
via the label algebra, that its interval still covers the queried key.
A stale entry therefore degrades to a recoverable detour (one wasted
get, then the normal binary search), never to a wrong answer; this is
the property that makes client caching safe over a mutable index.

Staleness sources and their outcomes:

* **split** — by Theorem 2 the child keeping the parent's DHT name stays
  under ``f_n(parent)``, so a pre-split entry still *hits* for keys that
  land in that child (the entry is refreshed to the child's label in
  passing) and goes stale only for keys in the moved sibling;
* **merge** — the absorbed child's DHT key is removed, so its entry
  probes to a failed get and is invalidated;
* **dropped replies** — indistinguishable from a merge from the
  client's seat; handled identically (never cached, never trusted).

The owning index additionally calls :meth:`on_split` / :meth:`on_merge`
for the mutations it performs itself, keeping a single-writer cache
exact; the validation probe is what protects multi-client deployments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.core.keys import key_bits
from repro.core.label import Label
from repro.core.results import MergeEvent, SplitEvent
from repro.errors import ConfigurationError

__all__ = ["LeafCache"]


class LeafCache:
    """Bounded LRU map from key intervals to leaf labels.

    Entries are leaf-label bit strings; a lookup for a data key scans the
    prefixes of its path ``μ(δ, D)`` (shortest first), so "the cached
    interval covering δ" costs at most ``D`` dict probes and no routed
    traffic.  In a consistent snapshot the leaf labels form an antichain,
    so at most one prefix can match; after unobserved remote mutations a
    stale ancestor may shadow a fresher descendant, which the validation
    probe at the index layer resolves.
    """

    __slots__ = ("_capacity", "_entries")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1: {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[str, None] = OrderedDict()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of retained labels."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: Label) -> bool:
        return label.bits in self._entries

    def labels(self) -> Iterator[Label]:
        """All cached labels, least recently used first (diagnostic)."""
        return (Label(bits) for bits in self._entries)

    def lookup(self, key: float, max_depth: int) -> Label | None:
        """The cached leaf label whose interval covers ``key``, if any.

        Marks the entry most-recently-used.  The returned label is a
        *candidate*: the caller must validate it with a DHT-get of
        ``f_n(label)`` before trusting it.
        """
        path = "0" + key_bits(key, max_depth - 1)
        for end in range(1, len(path) + 1):
            bits = path[:end]
            if bits in self._entries:
                self._entries.move_to_end(bits)
                return Label(bits)
        return None

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def store(self, label: Label) -> None:
        """Remember a leaf label observed by a converged lookup."""
        bits = label.bits
        if bits in self._entries:
            self._entries.move_to_end(bits)
            return
        self._entries[bits] = None
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def invalidate(self, label: Label) -> bool:
        """Drop one entry (stale probe, observed removal); returns
        whether it was present."""
        return self._pop(label)

    def _pop(self, label: Label) -> bool:
        if label.bits in self._entries:
            del self._entries[label.bits]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Mutation hooks (single-writer exactness)
    # ------------------------------------------------------------------

    def on_split(self, event: SplitEvent) -> None:
        """A leaf this client knew as ``event.parent`` split in two.

        The parent label no longer names a leaf; both children do, and
        the splitting client touched both, so they enter hot.
        """
        self._pop(event.parent)
        self.store(event.local)
        self.store(event.remote)

    def on_merge(self, event: MergeEvent) -> None:
        """Two sibling leaves merged into ``event.survivor``."""
        self._pop(event.survivor.left_child)
        self._pop(event.survivor.right_child)
        self.store(event.survivor)
