"""Cache-fronted LHT-lookup: 1 validated DHT-get on a hit.

The fast path exploits the same fact Alg. 2 does — any fetched leaf
bucket whose interval covers ``δ`` *is* the covering leaf, because the
live leaves partition the key space.  So a hit needs exactly one routed
get, of ``f_n(cached label)``, and the bucket that comes back proves or
refutes the entry by geometry alone:

* the bucket covers ``δ`` — done (``cache_hits``); if a split relabelled
  the bucket in place (Theorem 2 keeps one child under the parent's
  name), the entry is refreshed to the new label in passing;
* the bucket exists but does not cover ``δ``, or the get failed — the
  entry is stale (``cache_stale``): invalidate it and fall back to the
  full binary search, whose result re-primes the cache.

Failure discipline (the resilience layer sits *below* the cache): a
typed :class:`~repro.errors.DHTError` — routing failure, open circuit
breaker — aborts the lookup without touching the cache.  An errored
probe says nothing about the entry's validity, and treating it as
evidence would let an open breaker drain (or worse, poison) the cache
the moment the substrate degrades.
"""

from __future__ import annotations

from repro.cache.leafcache import LeafCache
from repro.core.bucket import LeafBucket
from repro.core.config import IndexConfig
from repro.core.lookup import lht_lookup
from repro.core.naming import naming
from repro.core.results import LookupResult
from repro.dht.base import DHT

__all__ = ["cached_lookup"]


def cached_lookup(
    dht: DHT, config: IndexConfig, cache: LeafCache, key: float
) -> LookupResult:
    """Locate the leaf covering ``key``, consulting the leaf cache first.

    Returns the same :class:`~repro.core.results.LookupResult` contract
    as :func:`~repro.core.lookup.lht_lookup`; ``dht_lookups`` includes
    the validation probe, so a stale entry honestly costs one get more
    than an uncached lookup.
    """
    metrics = dht.metrics
    candidate = cache.lookup(key, config.max_depth)
    probes = 0
    if candidate is not None:
        name = naming(candidate)
        # May raise DHTError: propagate with the cache untouched (see
        # module docs — an errored probe is not evidence of staleness).
        bucket = dht.get(str(name))
        probes = 1
        if isinstance(bucket, LeafBucket) and bucket.contains_key(key):
            metrics.record_cache_hit()
            if bucket.label != candidate:
                # Split kept this child under the parent's name
                # (Theorem 2); adopt the current label.
                cache.invalidate(candidate)
                cache.store(bucket.label)
            return LookupResult(bucket, name, 1, (name,))
        metrics.record_cache_stale()
        cache.invalidate(candidate)
    else:
        metrics.record_cache_miss()

    result = lht_lookup(dht, config, key)
    if result.bucket is not None:
        cache.store(result.bucket.label)
    if probes:
        result = LookupResult(
            result.bucket,
            result.name,
            result.dht_lookups + probes,
            result.probed,
        )
    return result
