"""Small statistics toolkit used by experiments and tests."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["Aggregate", "aggregate", "gini_coefficient", "powers_of_two"]


@dataclass(frozen=True, slots=True)
class Aggregate:
    """Summary of repeated-trial measurements."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n > 1 else 0.0

    @property
    def ci95_half_width(self) -> float:
        """Half width of a normal-approximation 95% confidence interval."""
        return 1.96 * self.sem


def aggregate(values: Iterable[float]) -> Aggregate:
    """Summarize a sample (mean, std with Bessel correction, extremes)."""
    data = [float(v) for v in values]
    if not data:
        raise ConfigurationError("cannot aggregate an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in data) / (n - 1)
    else:
        var = 0.0
    return Aggregate(
        n=n, mean=mean, std=math.sqrt(var), minimum=min(data), maximum=max(data)
    )


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini inequality coefficient of a non-negative sample.

    0 means perfectly even (ideal storage balance); 1 means one peer holds
    everything.  Used by the load-balance experiment (E15).
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ConfigurationError("cannot compute Gini of an empty sample")
    if any(v < 0 for v in data):
        raise ConfigurationError("Gini requires non-negative values")
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    weighted = sum((idx + 1) * v for idx, v in enumerate(data))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def powers_of_two(lo_exp: int, hi_exp: int) -> list[int]:
    """``[2**lo_exp, …, 2**hi_exp]`` — the size axes of the paper's plots."""
    if lo_exp > hi_exp:
        raise ConfigurationError(f"empty exponent range [{lo_exp}, {hi_exp}]")
    return [1 << e for e in range(lo_exp, hi_exp + 1)]
