"""Statistical aggregation helpers for the experiment harness."""

from repro.analysis.stats import (
    Aggregate,
    aggregate,
    gini_coefficient,
    powers_of_two,
)

__all__ = ["Aggregate", "aggregate", "gini_coefficient", "powers_of_two"]
