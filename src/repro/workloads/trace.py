"""Operation traces: generated mixed workloads and a replayer.

The paper's motivation (§1) is that peer dynamism induces a continuous
stream of record insertions and deletions.  A :class:`WorkloadTrace` is
an explicit, replayable operation sequence — inserts, deletes, exact
matches, range queries — that experiments and tests can run against any
index implementing the common surface, with per-operation-type cost
totals collected by :func:`replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.datasets import make_keys

__all__ = ["OpType", "Operation", "WorkloadTrace", "generate_trace", "replay"]


class OpType(str, Enum):
    """Kinds of trace operations."""

    INSERT = "insert"
    DELETE = "delete"
    LOOKUP = "lookup"
    RANGE = "range"


@dataclass(frozen=True, slots=True)
class Operation:
    """One trace step.

    ``key`` is the subject key for insert/delete/lookup; range queries
    use ``key`` as the lower bound and ``hi`` as the upper bound.
    """

    op: OpType
    key: float
    hi: float | None = None


@dataclass(slots=True)
class WorkloadTrace:
    """A replayable operation sequence."""

    operations: list[Operation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def counts(self) -> dict[OpType, int]:
        """Number of operations per type."""
        out: dict[OpType, int] = {op: 0 for op in OpType}
        for operation in self.operations:
            out[operation.op] += 1
        return out


def generate_trace(
    n_ops: int,
    rng: np.random.Generator,
    distribution: str = "uniform",
    mix: dict[OpType, float] | None = None,
    range_span: float = 0.05,
) -> WorkloadTrace:
    """Generate a mixed trace.

    ``mix`` gives the probability of each operation type (defaults to a
    churn-flavoured 45% insert / 25% delete / 20% lookup / 10% range).
    Deletes and lookups target previously inserted keys where possible,
    so the trace exercises real hits, not just misses.
    """
    if n_ops < 0:
        raise ConfigurationError(f"negative trace length: {n_ops}")
    mix = mix or {
        OpType.INSERT: 0.45,
        OpType.DELETE: 0.25,
        OpType.LOOKUP: 0.20,
        OpType.RANGE: 0.10,
    }
    total = sum(mix.values())
    if total <= 0:
        raise ConfigurationError("operation mix must have positive mass")
    kinds = list(mix)
    probabilities = [mix[k] / total for k in kinds]

    fresh = iter(make_keys(distribution, n_ops, rng))
    live: list[float] = []
    operations: list[Operation] = []
    for _ in range(n_ops):
        kind = kinds[int(rng.choice(len(kinds), p=probabilities))]
        if kind is OpType.INSERT or (kind is OpType.DELETE and not live):
            key = float(next(fresh))
            live.append(key)
            operations.append(Operation(OpType.INSERT, key))
        elif kind is OpType.DELETE:
            idx = int(rng.integers(0, len(live)))
            operations.append(Operation(OpType.DELETE, live.pop(idx)))
        elif kind is OpType.LOOKUP:
            if live and rng.random() < 0.8:
                key = live[int(rng.integers(0, len(live)))]
            else:
                key = float(rng.random())
            operations.append(Operation(OpType.LOOKUP, key))
        else:
            lo = float(rng.random() * (1.0 - range_span))
            operations.append(Operation(OpType.RANGE, lo, lo + range_span))
    return WorkloadTrace(operations)


def replay(index, trace: Iterable[Operation]) -> dict[str, float]:
    """Run a trace against an LHT-like index; returns cost totals.

    The index must expose ``insert``/``delete``/``exact_match``/
    ``range_query`` (both :class:`~repro.core.index.LHTIndex` and the
    harness-facing PHT adapter qualify).  Returns a dict with per-type
    operation counts and DHT-lookup totals plus the maintenance ledger
    deltas accumulated during the replay.
    """
    lookups: dict[str, float] = {op.value: 0.0 for op in OpType}
    counts: dict[str, float] = {f"n_{op.value}": 0.0 for op in OpType}
    maint_before = index.ledger.maintenance_lookups
    moved_before = index.ledger.maintenance_records_moved
    for operation in trace:
        if operation.op is OpType.INSERT:
            result = index.insert(operation.key)
            cost = result if isinstance(result, int) else result.dht_lookups
        elif operation.op is OpType.DELETE:
            result = index.delete(operation.key)
            cost = result[1] if isinstance(result, tuple) else result.dht_lookups
        elif operation.op is OpType.LOOKUP:
            _, cost = index.exact_match(operation.key)
        else:
            if operation.hi is None:
                raise ConfigurationError(
                    f"range operation at key {operation.key} has no upper "
                    f"bound"
                )
            cost = index.range_query(operation.key, operation.hi).dht_lookups
        lookups[operation.op.value] += cost
        counts[f"n_{operation.op.value}"] += 1
    return {
        **lookups,
        **counts,
        "maintenance_lookups": index.ledger.maintenance_lookups - maint_before,
        "maintenance_records_moved": (
            index.ledger.maintenance_records_moved - moved_before
        ),
    }
