"""Workload generation: datasets and query streams (paper §9.1, §9.4)."""

from repro.workloads.datasets import (
    DATASETS,
    clustered_keys,
    gaussian_keys,
    make_keys,
    pareto_keys,
    uniform_keys,
)
from repro.workloads.queries import (
    RangeQuerySpec,
    lookup_keys,
    random_ranges,
    span_ranges,
)
from repro.workloads.trace import (
    Operation,
    OpType,
    WorkloadTrace,
    generate_trace,
    replay,
)

__all__ = [
    "DATASETS",
    "clustered_keys",
    "gaussian_keys",
    "make_keys",
    "pareto_keys",
    "uniform_keys",
    "RangeQuerySpec",
    "lookup_keys",
    "random_ranges",
    "span_ranges",
    "Operation",
    "OpType",
    "WorkloadTrace",
    "generate_trace",
    "replay",
]
