"""Dataset generators (paper §9.1).

The paper evaluates on two distributions over ``[0, 1)``:

* **uniform** — keys i.i.d. uniform;
* **gaussian** — mean ``1/2``, standard deviation ``1/6`` ("which
  guarantees that about 97% key values fall in [0, 1]"); we resample the
  out-of-range tail (truncated gaussian) so every key is indexable, which
  preserves the in-range shape the paper relies on.

Two extension distributions (``pareto``, ``clustered``) exercise heavier
skew than the paper tested.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "uniform_keys",
    "gaussian_keys",
    "pareto_keys",
    "clustered_keys",
    "make_keys",
    "DATASETS",
]

#: Keys are kept strictly below 1.0 by clipping to the nearest float.
_MAX_KEY = np.nextafter(1.0, 0.0)


def _resample_into_unit(
    draw: Callable[[int], np.ndarray], n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw until ``n`` samples land inside [0, 1)."""
    del rng  # the closure owns the generator; kept for signature symmetry
    out = np.empty(0)
    while out.size < n:
        batch = draw(2 * (n - out.size) + 16)
        batch = batch[(batch >= 0.0) & (batch < 1.0)]
        out = np.concatenate([out, batch])
    return out[:n]


def uniform_keys(n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` i.i.d. uniform keys in [0, 1)."""
    if n < 0:
        raise ConfigurationError(f"negative dataset size: {n}")
    return rng.random(n)


def gaussian_keys(
    n: int,
    rng: np.random.Generator,
    mean: float = 0.5,
    std: float = 1.0 / 6.0,
) -> np.ndarray:
    """``n`` truncated-gaussian keys (paper's μ=1/2, σ=1/6 default)."""
    if n < 0:
        raise ConfigurationError(f"negative dataset size: {n}")
    return _resample_into_unit(lambda m: rng.normal(mean, std, m), n, rng)


def pareto_keys(
    n: int, rng: np.random.Generator, shape: float = 1.5
) -> np.ndarray:
    """``n`` heavy-tailed keys: a Pareto variate folded into [0, 1).

    An extension distribution, far more skewed than the paper's gaussian
    — most mass piles up near 0.
    """
    if n < 0:
        raise ConfigurationError(f"negative dataset size: {n}")
    raw = rng.pareto(shape, n)
    return np.minimum(raw / (1.0 + raw), _MAX_KEY)


def clustered_keys(
    n: int,
    rng: np.random.Generator,
    n_clusters: int = 5,
    cluster_std: float = 0.02,
) -> np.ndarray:
    """``n`` keys from a mixture of tight gaussian clusters.

    Models hot-spot key spaces (e.g. timestamps around release events in
    the paper's MP3-sharing motivation).
    """
    if n < 0:
        raise ConfigurationError(f"negative dataset size: {n}")
    centers = rng.random(n_clusters)
    assignment = rng.integers(0, n_clusters, n)

    def draw(m: int) -> np.ndarray:
        picks = rng.integers(0, n_clusters, m)
        return rng.normal(centers[picks], cluster_std)

    del assignment
    return _resample_into_unit(draw, n, rng)


#: Registry used by the experiment harness ("uniform"/"gaussian" are the
#: paper's datasets; the rest are extensions).
DATASETS: dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "uniform": uniform_keys,
    "gaussian": gaussian_keys,
    "pareto": pareto_keys,
    "clustered": clustered_keys,
}


def make_keys(
    distribution: str, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Generate ``n`` keys from a named distribution."""
    try:
        generator = DATASETS[distribution]
    except KeyError:
        raise ConfigurationError(
            f"unknown distribution {distribution!r}; "
            f"choose from {sorted(DATASETS)}"
        ) from None
    return generator(n, rng)
