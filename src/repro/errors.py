"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LabelError(ReproError):
    """An invalid tree-node label or an illegal label operation."""


class KeyOutOfRangeError(ReproError):
    """A data key fell outside the indexable domain ``[0, 1)``."""


class DepthExceededError(ReproError):
    """A tree path grew deeper than the configured maximum depth ``D``."""


class LookupError_(ReproError):
    """An index lookup failed to converge (inconsistent index state)."""


class DHTError(ReproError):
    """Base class for DHT-substrate errors."""


class NoSuchPeerError(DHTError):
    """An operation referenced a peer that is not part of the overlay."""


class EmptyOverlayError(DHTError):
    """An operation was attempted on an overlay with no live peers."""


class RoutingError(DHTError):
    """Overlay routing failed to reach the peer responsible for a key."""


class CircuitOpenError(DHTError):
    """An operation was rejected fast because the circuit breaker is open.

    Raised by :class:`repro.resilience.ResilientDHT` while its breaker
    shields a substrate that has produced too many consecutive failures;
    no routed operation is attempted (and none is charged).
    """


class OverloadError(ReproError):
    """A request was rejected by the serving layer's admission control.

    Raised by :mod:`repro.serve` front-ends when the bounded in-flight
    window and waiting queue are both full; nothing was routed (and
    nothing is charged beyond the rejection counter), so the client may
    retry after backing off.
    """


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class SanitizerError(ReproError):
    """The runtime sanitizer observed a violated structural invariant.

    Raised by :class:`repro.devtools.sanitizer.IndexSanitizer` when a
    mutating index operation leaves the distributed state inconsistent
    with the paper's Theorems 1-2 or the §3.2 structural properties.
    """


class DeterminismError(SimulationError):
    """Two same-seed runs of a workload produced diverging event traces."""


class ConfigurationError(ReproError):
    """Invalid configuration parameters."""
