"""Instrumentation shared by all DHT substrates and index clients.

The paper's evaluation is entirely count-based (§8.1, §9): number of
DHT-lookups, number of moved records, and parallel DHT-lookup steps.  All
substrates and indexes funnel their accounting through one
:class:`MetricsRecorder`, and experiments measure operations by snapshot
difference, so the same harness works unchanged over any substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["MetricsSnapshot", "MetricsRecorder"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable counter values; supports subtraction for per-op deltas."""

    dht_lookups: int = 0
    failed_gets: int = 0
    puts: int = 0
    gets: int = 0
    removes: int = 0
    hops: int = 0
    records_moved: int = 0

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        return MetricsSnapshot(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )


class MetricsRecorder:
    """Mutable counters with snapshot/delta support.

    ``dht_lookups`` counts every routed operation (get, put, remove) once —
    the paper's unit of bandwidth for index traffic.  ``hops`` additionally
    counts the physical overlay hops each routed operation took, which
    feeds the cost-model parameter ``j``.
    """

    __slots__ = (
        "dht_lookups",
        "failed_gets",
        "puts",
        "gets",
        "removes",
        "hops",
        "records_moved",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.dht_lookups = 0
        self.failed_gets = 0
        self.puts = 0
        self.gets = 0
        self.removes = 0
        self.hops = 0
        self.records_moved = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_get(self, hops: int, found: bool) -> None:
        """Account one routed DHT-get."""
        self.dht_lookups += 1
        self.gets += 1
        self.hops += hops
        if not found:
            self.failed_gets += 1

    def record_put(self, hops: int) -> None:
        """Account one routed DHT-put."""
        self.dht_lookups += 1
        self.puts += 1
        self.hops += hops

    def record_remove(self, hops: int) -> None:
        """Account one routed DHT-remove."""
        self.dht_lookups += 1
        self.removes += 1
        self.hops += hops

    def record_moved_records(self, count: int) -> None:
        """Account records shipped between peers (cost-model unit ``i``)."""
        self.records_moved += count

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Capture current counter values."""
        return MetricsSnapshot(
            dht_lookups=self.dht_lookups,
            failed_gets=self.failed_gets,
            puts=self.puts,
            gets=self.gets,
            removes=self.removes,
            hops=self.hops,
            records_moved=self.records_moved,
        )

    def since(self, snap: MetricsSnapshot) -> MetricsSnapshot:
        """Delta between now and an earlier snapshot."""
        return self.snapshot() - snap
