"""Instrumentation shared by all DHT substrates and index clients.

The paper's evaluation is entirely count-based (§8.1, §9): number of
DHT-lookups, number of moved records, and parallel DHT-lookup steps.  All
substrates and indexes funnel their accounting through one
:class:`MetricsRecorder`, and experiments measure operations by snapshot
difference, so the same harness works unchanged over any substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

__all__ = ["MetricsSnapshot", "MetricsRecorder"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable counter values; supports subtraction for per-op deltas.

    Counters accrete over the project's life (the resilience counters
    arrived after the substrate ones, the cache counters after those), so
    snapshot arithmetic must tolerate *older* snapshots — ones captured
    before a counter existed, whether in-process (a pickled baseline, a
    subclass) or rehydrated from JSON via :meth:`from_dict`.  Any counter
    the other operand lacks reads as 0.
    """

    dht_lookups: int = 0
    failed_gets: int = 0
    failed_puts: int = 0
    failed_removes: int = 0
    puts: int = 0
    gets: int = 0
    removes: int = 0
    hops: int = 0
    records_moved: int = 0
    retries: int = 0
    breaker_trips: int = 0
    breaker_rejections: int = 0
    degraded_responses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stale: int = 0
    serve_requests: int = 0
    serve_rejections: int = 0
    serve_batches: int = 0
    serve_coalesced_gets: int = 0
    replica_probe_gets: int = 0
    replica_failovers: int = 0
    replica_divergences: int = 0

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        return MetricsSnapshot(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name, 0)
                for f in fields(self)
            }
        )

    def to_dict(self) -> dict[str, int]:
        """All counters as a plain dict (JSON-friendly)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        """Rehydrate a snapshot saved when fewer counters existed.

        Missing counters default to 0; unknown keys (counters this
        version no longer has) are ignored rather than raised, so old
        and new baselines stay mutually readable.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in known})


class MetricsRecorder:
    """Mutable counters with snapshot/delta support.

    ``dht_lookups`` counts every routed operation (get, put, remove) once —
    the paper's unit of bandwidth for index traffic.  ``hops`` additionally
    counts the physical overlay hops each routed operation took, which
    feeds the cost-model parameter ``j``.
    """

    __slots__ = (
        "dht_lookups",
        "failed_gets",
        "failed_puts",
        "failed_removes",
        "puts",
        "gets",
        "removes",
        "hops",
        "records_moved",
        "retries",
        "breaker_trips",
        "breaker_rejections",
        "degraded_responses",
        "cache_hits",
        "cache_misses",
        "cache_stale",
        "serve_requests",
        "serve_rejections",
        "serve_batches",
        "serve_coalesced_gets",
        "replica_probe_gets",
        "replica_failovers",
        "replica_divergences",
        "request_latencies",
        "queue_depth_peak",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.dht_lookups = 0
        self.failed_gets = 0
        self.failed_puts = 0
        self.failed_removes = 0
        self.puts = 0
        self.gets = 0
        self.removes = 0
        self.hops = 0
        self.records_moved = 0
        self.retries = 0
        self.breaker_trips = 0
        self.breaker_rejections = 0
        self.degraded_responses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stale = 0
        self.serve_requests = 0
        self.serve_rejections = 0
        self.serve_batches = 0
        self.serve_coalesced_gets = 0
        self.replica_probe_gets = 0
        self.replica_failovers = 0
        self.replica_divergences = 0
        #: Per-request completion latencies in simulated seconds — the
        #: raw sample behind :meth:`latency_percentiles`.  A list, not a
        #: counter: percentiles are not additive, so the serving layer
        #: keeps the sample and snapshots stay pure integer counts.
        self.request_latencies: list[float] = []
        #: High-water mark of the serving layer's waiting queue (a
        #: gauge, not a counter — excluded from snapshots for the same
        #: reason as the latency sample).
        self.queue_depth_peak = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_get(self, hops: int, found: bool) -> None:
        """Account one routed DHT-get."""
        self.dht_lookups += 1
        self.gets += 1
        self.hops += hops
        if not found:
            self.failed_gets += 1

    def record_put(self, hops: int) -> None:
        """Account one routed DHT-put."""
        self.dht_lookups += 1
        self.puts += 1
        self.hops += hops

    def record_remove(self, hops: int) -> None:
        """Account one routed DHT-remove."""
        self.dht_lookups += 1
        self.removes += 1
        self.hops += hops

    def record_failed_put(self, hops: int) -> None:
        """Account one routed DHT-put whose reply reported failure.

        The network work happened (the lookup is charged, like a dropped
        get), but the value was not stored.
        """
        self.dht_lookups += 1
        self.puts += 1
        self.hops += hops
        self.failed_puts += 1

    def record_failed_remove(self, hops: int) -> None:
        """Account one routed DHT-remove whose reply reported failure."""
        self.dht_lookups += 1
        self.removes += 1
        self.hops += hops
        self.failed_removes += 1

    def record_moved_records(self, count: int) -> None:
        """Account records shipped between peers (cost-model unit ``i``)."""
        self.records_moved += count

    # ------------------------------------------------------------------
    # Resilience-layer events (no routed traffic of their own)
    # ------------------------------------------------------------------

    def record_retry(self) -> None:
        """Account one retry attempt issued by the resilience layer.

        The retried operation itself is charged as a normal get/put/remove
        when it reaches the substrate; this counter only tracks how often
        the retry machinery fired.
        """
        self.retries += 1

    def record_breaker_trip(self) -> None:
        """Account one circuit-breaker transition to the open state."""
        self.breaker_trips += 1

    def record_breaker_rejection(self) -> None:
        """Account one operation rejected fast by an open breaker
        (no routed traffic was attempted, so nothing else is charged)."""
        self.breaker_rejections += 1

    def record_degraded(self) -> None:
        """Account one query answered with an incomplete (degraded)
        result instead of an exception or silent partial data."""
        self.degraded_responses += 1

    # ------------------------------------------------------------------
    # Replication-layer events (each probe's routed traffic is charged
    # by the substrate as usual; these count the failover machinery)
    # ------------------------------------------------------------------

    def record_replica_probe_get(self) -> None:
        """Account one replica probe issued by the replication layer.

        The probe itself is charged as a normal routed get when it
        reaches the substrate; this counter tracks how often reads had
        to look past the primary copy."""
        self.replica_probe_gets += 1

    def record_replica_failover(self) -> None:
        """Account one read answered from a replica (or a degraded query
        rescued by replica probes) after the primary path failed."""
        self.replica_failovers += 1

    def record_replica_divergence(self) -> None:
        """Account one remove that observed disagreeing replica values —
        evidence of a partial write or replica drift, surfaced instead of
        silently masked by first-non-None selection."""
        self.replica_divergences += 1

    # ------------------------------------------------------------------
    # Leaf-cache events (the validation get is charged separately as a
    # normal routed get when it reaches the substrate)
    # ------------------------------------------------------------------

    def record_cache_hit(self) -> None:
        """Account one cached leaf label validated by a single DHT-get."""
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        """Account one lookup that found no cached covering label."""
        self.cache_misses += 1

    def record_cache_stale(self) -> None:
        """Account one cached label whose validation probe no longer
        covered the key (split/merge moved the leaf, or the reply was
        dropped); the lookup fell back to the binary search."""
        self.cache_stale += 1

    # ------------------------------------------------------------------
    # Serving-layer events (the routed traffic a request causes is
    # charged by the substrate as usual; these add the request-level
    # view: completions, rejections, batching, and latency)
    # ------------------------------------------------------------------

    def record_request(self, latency: float) -> None:
        """Account one completed serve request and its end-to-end
        latency (simulated seconds, admission to completion)."""
        self.serve_requests += 1
        self.request_latencies.append(latency)

    def record_rejection(self) -> None:
        """Account one request rejected by admission control (nothing
        was routed, so nothing else is charged)."""
        self.serve_rejections += 1

    def record_batch(self, coalesced_gets: int) -> None:
        """Account one executed serve batch; ``coalesced_gets`` counts
        routed gets *saved* by deduplicating probe keys across the
        batch's concurrent lookups."""
        self.serve_batches += 1
        self.serve_coalesced_gets += coalesced_gets

    def record_queue_depth(self, depth: int) -> None:
        """Track the high-water mark of the waiting queue."""
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p90/p99 of recorded request latencies (nearest-rank).

        Returns zeros when no requests completed, so dashboards and the
        benchgate can read the dict unconditionally.
        """
        sample = sorted(self.request_latencies)
        if not sample:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0}
        last = len(sample) - 1

        def rank(q: float) -> float:
            return sample[min(last, int(q * len(sample)))]

        return {"p50": rank(0.50), "p90": rank(0.90), "p99": rank(0.99)}

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Capture current counter values.

        Counters the recorder does not carry (an older recorder pickled
        into a fixture, say) read as 0, mirroring
        :meth:`MetricsSnapshot.from_dict`.
        """
        return MetricsSnapshot(
            **{
                f.name: getattr(self, f.name, 0)
                for f in fields(MetricsSnapshot)
            }
        )

    def since(self, snap: MetricsSnapshot) -> MetricsSnapshot:
        """Delta between now and an earlier snapshot.

        The snapshot may predate counters added since it was taken
        (missing attributes subtract as 0 — see
        :meth:`MetricsSnapshot.__sub__`).
        """
        return self.snapshot() - snap

    #: Alias: ``delta`` reads better at experiment call sites.
    delta = since
