"""Instrumentation shared by all DHT substrates and index clients.

The paper's evaluation is entirely count-based (§8.1, §9): number of
DHT-lookups, number of moved records, and parallel DHT-lookup steps.  All
substrates and indexes funnel their accounting through one
:class:`MetricsRecorder`, and experiments measure operations by snapshot
difference, so the same harness works unchanged over any substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["MetricsSnapshot", "MetricsRecorder"]


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable counter values; supports subtraction for per-op deltas."""

    dht_lookups: int = 0
    failed_gets: int = 0
    failed_puts: int = 0
    failed_removes: int = 0
    puts: int = 0
    gets: int = 0
    removes: int = 0
    hops: int = 0
    records_moved: int = 0
    retries: int = 0
    breaker_trips: int = 0
    breaker_rejections: int = 0
    degraded_responses: int = 0

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        return MetricsSnapshot(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )


class MetricsRecorder:
    """Mutable counters with snapshot/delta support.

    ``dht_lookups`` counts every routed operation (get, put, remove) once —
    the paper's unit of bandwidth for index traffic.  ``hops`` additionally
    counts the physical overlay hops each routed operation took, which
    feeds the cost-model parameter ``j``.
    """

    __slots__ = (
        "dht_lookups",
        "failed_gets",
        "failed_puts",
        "failed_removes",
        "puts",
        "gets",
        "removes",
        "hops",
        "records_moved",
        "retries",
        "breaker_trips",
        "breaker_rejections",
        "degraded_responses",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.dht_lookups = 0
        self.failed_gets = 0
        self.failed_puts = 0
        self.failed_removes = 0
        self.puts = 0
        self.gets = 0
        self.removes = 0
        self.hops = 0
        self.records_moved = 0
        self.retries = 0
        self.breaker_trips = 0
        self.breaker_rejections = 0
        self.degraded_responses = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_get(self, hops: int, found: bool) -> None:
        """Account one routed DHT-get."""
        self.dht_lookups += 1
        self.gets += 1
        self.hops += hops
        if not found:
            self.failed_gets += 1

    def record_put(self, hops: int) -> None:
        """Account one routed DHT-put."""
        self.dht_lookups += 1
        self.puts += 1
        self.hops += hops

    def record_remove(self, hops: int) -> None:
        """Account one routed DHT-remove."""
        self.dht_lookups += 1
        self.removes += 1
        self.hops += hops

    def record_failed_put(self, hops: int) -> None:
        """Account one routed DHT-put whose reply reported failure.

        The network work happened (the lookup is charged, like a dropped
        get), but the value was not stored.
        """
        self.dht_lookups += 1
        self.puts += 1
        self.hops += hops
        self.failed_puts += 1

    def record_failed_remove(self, hops: int) -> None:
        """Account one routed DHT-remove whose reply reported failure."""
        self.dht_lookups += 1
        self.removes += 1
        self.hops += hops
        self.failed_removes += 1

    def record_moved_records(self, count: int) -> None:
        """Account records shipped between peers (cost-model unit ``i``)."""
        self.records_moved += count

    # ------------------------------------------------------------------
    # Resilience-layer events (no routed traffic of their own)
    # ------------------------------------------------------------------

    def record_retry(self) -> None:
        """Account one retry attempt issued by the resilience layer.

        The retried operation itself is charged as a normal get/put/remove
        when it reaches the substrate; this counter only tracks how often
        the retry machinery fired.
        """
        self.retries += 1

    def record_breaker_trip(self) -> None:
        """Account one circuit-breaker transition to the open state."""
        self.breaker_trips += 1

    def record_breaker_rejection(self) -> None:
        """Account one operation rejected fast by an open breaker
        (no routed traffic was attempted, so nothing else is charged)."""
        self.breaker_rejections += 1

    def record_degraded(self) -> None:
        """Account one query answered with an incomplete (degraded)
        result instead of an exception or silent partial data."""
        self.degraded_responses += 1

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Capture current counter values."""
        return MetricsSnapshot(
            dht_lookups=self.dht_lookups,
            failed_gets=self.failed_gets,
            failed_puts=self.failed_puts,
            failed_removes=self.failed_removes,
            puts=self.puts,
            gets=self.gets,
            removes=self.removes,
            hops=self.hops,
            records_moved=self.records_moved,
            retries=self.retries,
            breaker_trips=self.breaker_trips,
            breaker_rejections=self.breaker_rejections,
            degraded_responses=self.degraded_responses,
        )

    def since(self, snap: MetricsSnapshot) -> MetricsSnapshot:
        """Delta between now and an earlier snapshot."""
        return self.snapshot() - snap
