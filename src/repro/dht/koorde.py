"""Koorde DHT substrate (Kaashoek & Karger, IPTPS 2003).

Koorde embeds a degree-``k`` de Bruijn graph in the identifier ring:
node ``m`` keeps its ring successor plus a de Bruijn window — the
consecutive real nodes hosting the image ``(k*m, k*succ + k - 1]`` of
its imaginary arc, Θ(k) pointers in expectation.  Routing to
key ``t`` walks an *imaginary* de Bruijn node ``i``: each hop
shifts ``i`` left by ``b = log2(k)`` bits and injects the next ``b``-bit
digit of ``t`` (``i <- (i*k + digit) mod 2**id_bits``), while the real
node hosting ``i`` (its ring predecessor) jumps along its de Bruijn
window — which covers the next host by construction, so each digit
costs one hop (successor walks remain only as a defensive correction).
After all digits are injected ``i == t`` and the hosting node's
successor owns the key — ``O(log n / log log n)`` hops for degree
``k``, the
degree-vs-diameter extreme opposite :class:`~repro.dht.onehop.OneHopDHT`.

The start of the walk uses Koorde's best-entry optimization: the gateway
owns the whole interval ``(m, successor]`` of imaginary nodes, so it
picks the imaginary start ``i0`` in that interval whose low bits already
agree with ``t`` — injecting only the ``j`` lowest digits of ``t`` where
``j`` is the smallest count for which such an ``i0`` exists (roughly
``log_k n`` instead of the full digit count).

Static overlay like Kademlia/Pastry here: membership is fixed at
construction and churn is exercised through the shared fault/soak
matrices at the data layer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dht.hashing import hash_key, in_half_open_interval, ring_distance
from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError, EmptyOverlayError, RoutingError

__all__ = ["KoordeDHT", "KoordeNode"]


@dataclass(slots=True)
class KoordeNode:
    """One Koorde peer: ring successor + de Bruijn pointer window."""

    id: int
    successor: int = 0
    debruijn: list[int] = field(default_factory=list)
    store: dict[str, Any] = field(default_factory=dict)


class KoordeDHT(SubstrateBase):
    """A simulated Koorde overlay implementing the generic DHT interface.

    Args:
        n_peers: Overlay size (peer ids drawn uniformly at random).
        seed: RNG seed for peer ids and gateway selection.
        id_bits: Identifier width; must be divisible by ``log2(degree)``.
        degree: de Bruijn degree ``k`` (power of two >= 2); each node
            keeps Θ(k) expected de Bruijn pointers and routes
            in ``O(log_k n)`` digit injections.
        metrics: Optional shared recorder.
    """

    MAX_ROUTE_HOPS = 4096

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        id_bits: int = 32,
        degree: int = 16,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        b = degree.bit_length() - 1
        if degree < 2 or (1 << b) != degree:
            raise ConfigurationError(f"degree must be a power of two >= 2: {degree}")
        if id_bits % b != 0:
            raise ConfigurationError(
                f"id_bits ({id_bits}) must be divisible by log2(degree) ({b})"
            )
        self.id_bits = id_bits
        self.space = 1 << id_bits
        self.degree = degree
        self.b = b
        self.n_digits = id_bits // b
        self._rng = np.random.default_rng(seed)
        self._nodes: dict[int, KoordeNode] = {}

        ids: set[int] = set()
        while len(ids) < n_peers:
            ids.add(int(self._rng.integers(0, self.space)))
        ordered = sorted(ids)
        n = len(ordered)
        for idx, node_id in enumerate(ordered):
            successor = ordered[(idx + 1) % n]
            node = KoordeNode(
                id=node_id,
                successor=successor,
                debruijn=self._build_window(ordered, idx),
            )
            self._nodes[node_id] = node
            self.peers.add_peer(node_id, node.store)

    def _build_window(self, ordered: list[int], idx: int) -> list[int]:
        """The de Bruijn window of ``ordered[idx]``: the consecutive real
        nodes hosting its imaginary arc's image ``(k*m, k*succ + k - 1]``,
        so one de Bruijn jump always reaches the next imaginary host."""
        n = len(ordered)
        node_id = ordered[idx]
        successor = ordered[(idx + 1) % n]
        span = ring_distance(node_id, successor, self.space) if n > 1 else 0
        arc_len = self.degree * span + self.degree - 1
        base_idx = (
            bisect.bisect_left(ordered, (node_id * self.degree) % self.space) - 1
        ) % n
        if arc_len >= self.space:
            count = n
        else:
            arc_end = (node_id * self.degree + arc_len) % self.space
            end_idx = (bisect.bisect_left(ordered, arc_end) - 1) % n
            count = ((end_idx - base_idx) % n) + 1
        count = min(max(count, min(self.degree, n)), n)
        return [ordered[(base_idx + j) % n] for j in range(count)]

    # ------------------------------------------------------------------
    # Routing: imaginary de Bruijn walk
    # ------------------------------------------------------------------

    def _predecessor(self, ordered: list[int], target: int) -> int:
        """The real node ``p`` hosting imaginary id ``target``
        (``target`` lies in ``(p, successor(p)]``)."""
        return ordered[(bisect.bisect_left(ordered, target) - 1) % len(ordered)]

    def _imaginary_start(self, m: int, succ: int, t: int) -> tuple[int, list[int]]:
        """Best imaginary start in ``(m, succ]`` for key id ``t``.

        Returns ``(i0, digits)`` where injecting ``digits`` (most
        significant first) into ``i0`` lands exactly on ``t``:
        ``i0``'s low ``id_bits - j*b`` bits must equal ``t >> j*b``, and
        ``j`` is minimized subject to ``i0`` falling inside the
        gateway's imaginary interval.
        """
        span = ring_distance(m, succ, self.space)  # interval is (m, m + span]
        for j in range(self.n_digits + 1):
            shift = j * self.b
            stride = self.space >> shift
            residue = (t >> shift) % stride
            offset = (residue - (m + 1)) % stride
            if offset <= span - 1:
                i0 = (m + 1 + offset) % self.space
                digits = [
                    (t >> (shift - (d + 1) * self.b)) & (self.degree - 1)
                    for d in range(j)
                ]
                return i0, digits
        raise RoutingError(
            f"no imaginary start for key id {t} at node {m}"
        )  # pragma: no cover - j == n_digits always matches

    def route_id(self, start: int, key_id: int) -> tuple[int, int]:
        """Route from ``start`` to ``key_id``'s owner; returns (owner, hops)."""
        ids = self.peers.sorted_ids()
        if len(ids) == 1:
            return start, 1
        current = start
        node = self._nodes[current]
        i, digits = self._imaginary_start(current, node.successor, key_id)
        hops = 0
        for digit in digits:
            i = ((i << self.b) | digit) % self.space
            target = self._predecessor(ids, i)
            node = self._nodes[current]
            # De Bruijn jump: the window covers the imaginary arc's
            # image, so the hosting node is normally present; falling
            # back to the window's end costs successor corrections.
            current = target if target in node.debruijn else node.debruijn[-1]
            hops += 1
            while not in_half_open_interval(
                i, current, self._nodes[current].successor, self.space
            ):
                current = self._nodes[current].successor
                hops += 1
                if hops > self.MAX_ROUTE_HOPS:
                    raise RoutingError(
                        f"no route to key id {key_id} within "
                        f"{self.MAX_ROUTE_HOPS} hops"
                    )
        # All digits injected: i == key_id and current hosts it, except
        # in the zero-digit case where the gateway's successor already
        # owns the key — the loop below is then the delivery correction.
        while not in_half_open_interval(
            key_id, current, self._nodes[current].successor, self.space
        ):
            current = self._nodes[current].successor
            hops += 1
            if hops > self.MAX_ROUTE_HOPS:
                raise RoutingError(
                    f"no route to key id {key_id} within "
                    f"{self.MAX_ROUTE_HOPS} hops"
                )
        return self._nodes[current].successor, hops + 1

    def route(self, key: str) -> tuple[int, int]:
        if not self._nodes:
            raise EmptyOverlayError("no live peers")
        kid = hash_key(key, self.id_bits)
        ids = self.peers.sorted_ids()
        start = ids[int(self._rng.integers(0, len(ids)))]
        owner, hops = self.route_id(start, kid)
        return owner, max(hops, 1)

    def peer_of(self, key: str) -> int:
        return self.peers.successor_of(hash_key(key, self.id_bits))

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def route_hop_bound(self) -> int:
        """A sound worst-case hop bound for :meth:`route`.

        At most ``n_digits`` digit injections, each a de Bruijn jump
        plus at most a full ring of successor corrections, plus the
        final delivery walk and hop: ``(n_digits + 1) * (n + 1) + 1``.
        The expected cost is ``O(log_k n)`` — the property suite pins
        the bound, the benchgate pins the average.
        """
        n = self.n_peers
        return (self.n_digits + 1) * (n + 1) + 1

    def check_pointers(self) -> None:
        """Raise unless every node's ring/de Bruijn pointers are coherent."""
        ids = self.peers.sorted_ids()
        n = len(ids)
        for idx, node_id in enumerate(ids):
            node = self._nodes[node_id]
            if node.successor != ids[(idx + 1) % n]:
                raise RoutingError(f"peer {node_id} has a stale ring successor")
            if node.debruijn != self._build_window(ids, idx):
                raise RoutingError(f"peer {node_id} de Bruijn window incoherent")
