"""DHT substrates behind one generic put/get interface.

LHT (and the PHT baseline) run unchanged over any of these; see
:class:`repro.dht.base.DHT`.
"""

from repro.dht.accesslog import AccessLoggingDHT
from repro.dht.base import DHT
from repro.dht.can import CANDHT, CANNode, Zone
from repro.dht.chord import ChordDHT, ChordNode
from repro.dht.faulty import FaultyDHT
from repro.dht.churn import ChurnConfig, ChurnDriver
from repro.dht.hashing import ID_BITS, ID_SPACE, hash_key, ring_distance
from repro.dht.kademlia import KademliaDHT, KademliaNode
from repro.dht.kernel import (
    DelegatingDHT,
    PeerStore,
    PlacementPolicy,
    SubstrateBase,
)
from repro.dht.koorde import KoordeDHT, KoordeNode
from repro.dht.local import LocalDHT
from repro.dht.metrics import MetricsRecorder, MetricsSnapshot
from repro.dht.onehop import OneHopDHT, OneHopNode
from repro.dht.pastry import PastryDHT, PastryNode
from repro.dht.placement import (
    ClosestIdsPolicy,
    HashSaltPolicy,
    LeafSetPolicy,
    SuccessorListPolicy,
    TableSlicePolicy,
    ZoneNeighborsPolicy,
)
from repro.dht.replicated import ReplicatedDHT, replica_layer
from repro.dht.serializing import SerializingDHT
from repro.dht.tapestry import TapestryDHT, TapestryNode

__all__ = [
    "AccessLoggingDHT",
    "DHT",
    "CANDHT",
    "CANNode",
    "Zone",
    "ChordDHT",
    "ChordNode",
    "FaultyDHT",
    "ChurnConfig",
    "ChurnDriver",
    "ID_BITS",
    "ID_SPACE",
    "hash_key",
    "ring_distance",
    "KademliaDHT",
    "KademliaNode",
    "DelegatingDHT",
    "PeerStore",
    "PlacementPolicy",
    "SubstrateBase",
    "SuccessorListPolicy",
    "TableSlicePolicy",
    "LeafSetPolicy",
    "ZoneNeighborsPolicy",
    "ClosestIdsPolicy",
    "HashSaltPolicy",
    "replica_layer",
    "KoordeDHT",
    "KoordeNode",
    "LocalDHT",
    "MetricsRecorder",
    "MetricsSnapshot",
    "OneHopDHT",
    "OneHopNode",
    "PastryDHT",
    "PastryNode",
    "ReplicatedDHT",
    "SerializingDHT",
    "TapestryDHT",
    "TapestryNode",
]
