"""Access-logging wrapper: per-key and per-peer traffic accounting.

Over-DHT indexes concentrate traffic on structurally important keys —
every min query hits ``#``, every lookup's first probe hits a mid-depth
name class — so *query* load can be skewed even when *storage* load is
uniform.  This wrapper records every routed operation per DHT key (and
the responsible peer), feeding the hot-spot experiment (E21).
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.dht.base import DHT
from repro.dht.kernel import DelegatingDHT

__all__ = ["AccessLoggingDHT"]


class AccessLoggingDHT(DelegatingDHT):
    """Wrap a substrate, counting routed operations per key."""

    def __init__(self, inner: DHT) -> None:
        super().__init__(inner)
        self.key_accesses: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # DHT interface
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self.key_accesses[key] += 1
        self.inner.put(key, value)

    def get(self, key: str) -> Any | None:
        self.key_accesses[key] += 1
        return self.inner.get(key)

    def remove(self, key: str) -> Any | None:
        self.key_accesses[key] += 1
        return self.inner.remove(key)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def hottest_keys(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most-accessed DHT keys with their counts."""
        return self.key_accesses.most_common(n)

    def peer_accesses(self) -> dict[int, int]:
        """Routed operations aggregated by responsible peer."""
        loads: dict[int, int] = {}
        for key, count in self.key_accesses.items():
            peer = self.inner.peer_of(key)
            loads[peer] = loads.get(peer, 0) + count
        return loads

    def reset_log(self) -> None:
        """Clear the access counters (e.g. after the build phase)."""
        self.key_accesses.clear()
