"""Byte-store wrapper: values cross the DHT boundary as bytes.

The plain simulated substrates store Python objects by reference, which
silently lets index code depend on in-process aliasing (mutate a fetched
bucket and the "stored" copy changes too).  A deployed DHT stores bytes;
this wrapper enforces those semantics by pickling every value on
``put``/``local_write`` and unpickling a *fresh copy* on every
``get``/``peek``.

Running the full index test battery over ``SerializingDHT(LocalDHT())``
is the proof that the LHT/PHT implementations persist every mutation
through an explicit write — i.e. that they would work over a real
byte-oriented DHT such as OpenDHT.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.dht.base import DHT
from repro.dht.kernel import DelegatingDHT

__all__ = ["SerializingDHT"]


class SerializingDHT(DelegatingDHT):
    """Wrap a substrate so all values are stored in serialized form."""

    def __init__(self, inner: DHT) -> None:
        super().__init__(inner)
        self.bytes_written = 0

    def _encode(self, value: Any) -> bytes:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self.bytes_written += len(payload)
        return payload

    @staticmethod
    def _decode(payload: Any) -> Any:
        return pickle.loads(payload) if payload is not None else None

    # ------------------------------------------------------------------
    # DHT interface
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self.inner.put(key, self._encode(value))

    def get(self, key: str) -> Any | None:
        return self._decode(self.inner.get(key))

    def remove(self, key: str) -> Any | None:
        return self._decode(self.inner.remove(key))

    def local_write(self, key: str, value: Any) -> None:
        self.inner.local_write(key, self._encode(value))

    # ------------------------------------------------------------------
    # Direct peer access (replica copies are bytes like everything else)
    # ------------------------------------------------------------------

    def probe_get(self, key: str, peer_id: int) -> Any | None:
        return self._decode(self.inner.probe_get(key, peer_id))

    def put_at(self, key: str, value: Any, peer_id: int) -> None:
        self.inner.put_at(key, self._encode(value), peer_id)

    def remove_at(self, key: str, peer_id: int) -> Any | None:
        return self._decode(self.inner.remove_at(key, peer_id))

    def local_write_at(self, key: str, value: Any, peer_id: int) -> None:
        self.inner.local_write_at(key, self._encode(value), peer_id)

    # ------------------------------------------------------------------
    # Introspection (peek decodes too; the rest delegate)
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        return self._decode(self.inner.peek(key))
