"""Abstract DHT interface (the paper's "generic put/get DHT", §2).

LHT is an *over-DHT* index: it relies only on ``put``/``get``/``remove``
keyed by strings, so any substrate implementing :class:`DHT` works
unchanged.  Every routed operation counts as exactly one *DHT-lookup* —
the paper's bandwidth unit — and substrates additionally report how many
physical overlay hops the routing took.

Substrates in this package (all built on the shared peer-store kernel,
:mod:`repro.dht.kernel`):

* :class:`~repro.dht.local.LocalDHT` — hash-partitioned in-memory store
  with a synthetic ``O(log N)`` hop model; the fast backend for large
  experiments.
* :class:`~repro.dht.chord.ChordDHT` — full Chord ring.
* :class:`~repro.dht.can.CANDHT` — CAN ``d``-torus with zone splits.
* :class:`~repro.dht.kademlia.KademliaDHT` — Kademlia XOR routing.
* :class:`~repro.dht.pastry.PastryDHT` — Pastry prefix routing.
* :class:`~repro.dht.tapestry.TapestryDHT` — Tapestry surrogate routing.

A composable wrapper stack rides on top — every wrapper is itself a
:class:`DHT` (built on :class:`~repro.dht.kernel.DelegatingDHT`), so
stacks like ``Serializing(Replicated(Faulty(Chord)))`` compose freely:

* :class:`~repro.dht.faulty.FaultyDHT` — seeded probabilistic failures.
* :class:`~repro.dht.replicated.ReplicatedDHT` — k-way salted replicas.
* :class:`~repro.dht.serializing.SerializingDHT` — values cross as bytes.
* :class:`~repro.dht.accesslog.AccessLoggingDHT` — per-key traffic log.
* :class:`~repro.resilience.wrapper.ResilientDHT` — retries + breaker.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, Sequence

from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError, DHTError

__all__ = ["DHT"]


class DHT(abc.ABC):
    """A distributed hash table exposing the generic put/get interface.

    All concrete substrates share a :class:`MetricsRecorder`; index layers
    read per-operation costs from it via snapshots.
    """

    def __init__(self, metrics: MetricsRecorder | None = None) -> None:
        self.metrics = metrics or MetricsRecorder()

    # ------------------------------------------------------------------
    # Core interface (each call is one DHT-lookup)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def put(self, key: str, value: Any) -> None:
        """Store ``value`` at the peer responsible for ``hash(key)``."""

    @abc.abstractmethod
    def get(self, key: str) -> Any | None:
        """Fetch the value stored under ``key``, or ``None`` (a *failed*
        DHT-get, which the LHT lookup algorithm uses as a signal)."""

    @abc.abstractmethod
    def remove(self, key: str) -> Any | None:
        """Delete and return the value under ``key``, or ``None``."""

    def multi_get(
        self, keys: Sequence[str], *, absorb_errors: bool = False
    ) -> list[Any | None]:
        """Issue one *batched parallel round* of gets, in key order.

        The paper's range algorithm forwards all of one bucket's
        sub-queries simultaneously (§6.3), so the index layer hands a
        whole frontier to the substrate at once.  Each key is still
        charged as one DHT-lookup — batching changes latency (one
        parallel step per round), never bandwidth.

        This default issues the gets sequentially through :meth:`get`;
        substrates with genuinely concurrent transports may override it,
        preserving both the per-key accounting and the result order.

        With ``absorb_errors=True`` (degraded-mode callers), a typed
        :class:`~repro.errors.DHTError` on one key — a routing failure,
        an open circuit breaker — yields ``None`` for that key instead
        of failing the round; otherwise the error propagates and the
        round's remaining keys are not attempted.
        """
        values: list[Any | None] = []
        for key in keys:
            try:
                values.append(self.get(key))
            except DHTError:
                if not absorb_errors:
                    raise
                values.append(None)
        return values

    def multi_put(
        self,
        items: Sequence[tuple[str, Any]],
        *,
        absorb_errors: bool = False,
    ) -> list[bool]:
        """Issue one *batched parallel round* of puts, in item order.

        The write-side dual of :meth:`multi_get`: bulk loading ships one
        put per final leaf and the serving layer's write bursts hand a
        whole batch to the substrate at once.  Each item is still charged
        as one DHT-lookup — batching changes latency (one parallel step
        per round), never bandwidth — and the stored state is identical
        to issuing the same puts sequentially.

        Returns one ``bool`` per item: ``True`` when the value was
        stored.  With ``absorb_errors=True``, a typed
        :class:`~repro.errors.DHTError` on one item (an injected put
        failure, an open circuit breaker) yields ``False`` for that item
        instead of failing the round; otherwise the error propagates and
        the round's remaining items are not attempted — exactly the
        :meth:`multi_get` contract.

        This default issues the puts sequentially through :meth:`put`;
        substrates with genuinely concurrent transports may override it,
        preserving the per-item accounting and result order.
        """
        stored: list[bool] = []
        for key, value in items:
            try:
                self.put(key, value)
            except DHTError:
                if not absorb_errors:
                    raise
                stored.append(False)
            else:
                stored.append(True)
        return stored

    # ------------------------------------------------------------------
    # Direct peer access (replica placement; kernel substrates only)
    # ------------------------------------------------------------------
    #
    # Topology-aware replication (:mod:`repro.dht.placement`) stores a
    # value at *specific* peers — the owner's successors, leaf-set
    # members, zone neighbors — under the unmodified key.  These
    # operations address one peer directly (the replica holder is one
    # overlay hop from the owner, as in D1HT-style neighbor
    # replication), so only substrates built on the peer-store kernel
    # can implement them; the defaults below raise a
    # :class:`~repro.errors.ConfigurationError` (deliberately *not* a
    # ``DHTError``: an unsupported operation is a wiring mistake, never
    # a degradable network condition).  Replication over a non-kernel
    # DHT falls back to :class:`~repro.dht.placement.HashSaltPolicy`,
    # which never calls these.

    def probe_get(self, key: str, peer_id: int) -> Any | None:
        """Fetch ``key`` directly from ``peer_id``'s store (one charged
        routed get at one hop), or ``None`` if absent or the peer died."""
        raise ConfigurationError(
            f"{type(self).__name__} does not support direct replica "
            "probes; use a peer-store kernel substrate or HashSaltPolicy"
        )

    def put_at(self, key: str, value: Any, peer_id: int) -> None:
        """Store ``key`` directly at ``peer_id`` (one charged routed put
        at one hop)."""
        raise ConfigurationError(
            f"{type(self).__name__} does not support direct replica "
            "writes; use a peer-store kernel substrate or HashSaltPolicy"
        )

    def remove_at(self, key: str, peer_id: int) -> Any | None:
        """Delete ``key`` directly at ``peer_id`` (one charged routed
        remove at one hop); returns the removed value or ``None``."""
        raise ConfigurationError(
            f"{type(self).__name__} does not support direct replica "
            "removes; use a peer-store kernel substrate or HashSaltPolicy"
        )

    def local_write_at(self, key: str, value: Any, peer_id: int) -> None:
        """Persist a value at a known replica holder without routing
        (the replica's disk rewrite for Alg. 1 mutations; uncharged,
        like :meth:`local_write`).  A dead peer is skipped silently —
        the next replicated put repairs it."""
        raise ConfigurationError(
            f"{type(self).__name__} does not support direct replica "
            "writes; use a peer-store kernel substrate or HashSaltPolicy"
        )

    # ------------------------------------------------------------------
    # Local persistence (free of lookup cost)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def local_write(self, key: str, value: Any) -> None:
        """Persist a value the *holding peer* just mutated, without
        routing.

        This models Alg. 1's "write ``b`` back to the local disk": after
        a split (or an in-bucket insert/delete) the peer already holds
        the object and rewrites it locally — no overlay traffic, hence
        no DHT-lookup is charged.  Object-store backends are free to
        treat this as a no-op when values are shared by reference;
        byte-store backends (:class:`~repro.dht.serializing.SerializingDHT`)
        re-encode here, which is what keeps the index correct without
        relying on in-process aliasing.
        """

    # ------------------------------------------------------------------
    # Introspection (free of lookup cost; used by tests and experiments)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def peek(self, key: str) -> Any | None:
        """Read a value without routing (oracle access for tests)."""

    @abc.abstractmethod
    def keys(self) -> Iterable[str]:
        """All stored keys (oracle access for tests)."""

    @abc.abstractmethod
    def peer_of(self, key: str) -> int:
        """Identifier of the peer currently responsible for ``key``."""

    @abc.abstractmethod
    def peer_loads(self) -> dict[int, int]:
        """Number of stored keys per peer (for load-balance studies)."""

    @property
    @abc.abstractmethod
    def n_peers(self) -> int:
        """Number of live peers in the overlay."""

    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not None
