"""Topology-aware replica placement policies, one per substrate family.

Replication used to be a hash accident: :class:`ReplicatedDHT` salted
the key (``k##r1``, ``k##r2``) and let the substrate route each salt to
whatever peer the hash landed on.  Real single-hop systems do the
opposite — D1HT replicates onto the owner's *successors*, Pastry onto
the *leaf set*, CAN onto *zone neighbors* — because a replica holder
that is a topology neighbor of the owner is exactly where routing
converges after the owner fails, so a failed lookup can be rescued by
probing a known peer one hop away instead of re-routing a salted alias.

Each policy here implements the :class:`~repro.dht.kernel.PlacementPolicy`
contract (pure, owner-first, distinct live peers, graceful degradation;
enforced by flow rule LHT013 and the conformance matrix in
``tests/test_placement.py``) for one substrate family:

========================  =============================================
policy                    substrate family (registry enrollment)
========================  =============================================
:class:`SuccessorListPolicy`  Chord, Koorde, Local — ring successors
:class:`TableSlicePolicy`     OneHop — slice of the full routing table
:class:`LeafSetPolicy`        Pastry — numerically closest (leaf set)
:class:`ZoneNeighborsPolicy`  CAN — zone adjacency, widened breadth-first
:class:`ClosestIdsPolicy`     Kademlia, Tapestry — XOR-closest ids
:class:`HashSaltPolicy`       fallback: any DHT, salted aliases
========================  =============================================

Policies are enrolled through
:class:`~repro.dht.registry.SubstrateSpec` so the registry stays the
single enrollment point; :func:`repro.dht.registry.placement_for`
resolves the policy for a (possibly wrapped) overlay instance.

This module lives in ``repro.dht`` — not the kernel — because policies
read the *membership* surface (``peers.sorted_ids()``), which the
LHT008 layering rule reserves for this package.  They never touch the
storage surface: placement decides *where* copies go, the replication
wrapper moves the bytes through the kernel choke point.
"""

from __future__ import annotations

import bisect

from repro.dht.base import DHT
from repro.dht.hashing import hash_key
from repro.dht.kernel import PlacementPolicy

__all__ = [
    "SuccessorListPolicy",
    "TableSlicePolicy",
    "LeafSetPolicy",
    "ZoneNeighborsPolicy",
    "ClosestIdsPolicy",
    "HashSaltPolicy",
]


class SuccessorListPolicy(PlacementPolicy):
    """Replicas on the owner's ring successors (Chord, Koorde, Local).

    The D1HT/DHash placement: copies live on the ``k - 1`` peers that
    immediately follow the owner on the identifier ring.  When the
    owner fails, Chord-style stabilization promotes exactly its first
    live successor to own the key range — which already holds the first
    replica — so post-crash routing converges on a peer that has the
    data without any repair traffic.
    """

    def replicas_for(self, key: str, owner: int, k: int) -> list[int]:
        ring = self.substrate.peers.sorted_ids()
        n = len(ring)
        idx = bisect.bisect_left(ring, owner)
        return [ring[(idx + i) % n] for i in range(min(k, n))]


class TableSlicePolicy(SuccessorListPolicy):
    """Replicas on a slice of the full routing table (OneHop).

    In a one-hop overlay every peer already holds the complete sorted
    membership table, so the ``k``-entry slice starting at the owner's
    table index is known to *every* peer locally — replica holders can
    be addressed without any routing state beyond what one-hop lookup
    already maintains.  Mechanically this is the successor slice of the
    shared table, so the ring arithmetic is inherited.
    """


class LeafSetPolicy(PlacementPolicy):
    """Replicas on the numerically closest ids (Pastry's leaf set).

    PAST replicates onto the ``k`` nodes whose ids are numerically
    closest to the key's root — the owner's leaf-set members.  Pastry's
    leaf-set shortcut delivers any key that falls inside leaf-set
    coverage to the numerically closest live member, so after the owner
    fails, routing lands on precisely the next-closest id: the first
    replica below.
    """

    def replicas_for(self, key: str, owner: int, k: int) -> list[int]:
        substrate = self.substrate
        space = 1 << substrate.id_bits
        ids = substrate.peers.sorted_ids()

        def circular(nid: int) -> tuple[int, int]:
            d = abs(nid - owner)
            return (min(d, space - d), nid)

        # The owner is at circular distance 0, hence first.
        return sorted(ids, key=circular)[: min(k, len(ids))]


class ZoneNeighborsPolicy(PlacementPolicy):
    """Replicas on zone-adjacent peers (CAN).

    CAN's overlay neighbors are the peers whose coordinate zones abut
    the owner's zone — the peers a takeover merges with when the owner
    leaves, so a copy on a zone neighbor sits exactly where the key's
    zone migrates.  Adjacency is widened breadth-first (neighbors, then
    neighbors-of-neighbors, in sorted-id order for determinism) so the
    policy degrades gracefully when the owner has fewer than ``k - 1``
    direct neighbors; the torus is connected, so every live peer is
    eventually reachable.
    """

    def replicas_for(self, key: str, owner: int, k: int) -> list[int]:
        substrate = self.substrate
        alive = substrate.peers.is_live
        chosen = [owner]
        seen = {owner}
        frontier = [owner]
        while frontier and len(chosen) < k:
            next_frontier: list[int] = []
            for nid in frontier:
                for neighbor in sorted(substrate.zone_neighbors(nid)):
                    if neighbor in seen or not alive(neighbor):
                        continue
                    seen.add(neighbor)
                    chosen.append(neighbor)
                    next_frontier.append(neighbor)
                    if len(chosen) == k:
                        return chosen
            frontier = next_frontier
        return chosen


class ClosestIdsPolicy(PlacementPolicy):
    """Replicas on the XOR-closest ids to the key (Kademlia, Tapestry).

    Kademlia's STORE places values on the ``k`` nodes closest to the
    key in XOR metric; a reader's iterative lookup converges on that
    same closest set, so any live member answers.  Tapestry's surrogate
    root is its deterministic stand-in for "closest", so the same
    ordering serves both — with the routed owner pinned first, since
    the surrogate may differ from the strict XOR minimum.
    """

    def replicas_for(self, key: str, owner: int, k: int) -> list[int]:
        substrate = self.substrate
        target = hash_key(key, substrate.id_bits)
        ids = substrate.peers.sorted_ids()
        ordered = sorted(ids, key=lambda nid: (nid ^ target, nid))
        return [owner, *(nid for nid in ordered if nid != owner)][
            : min(k, len(ids))
        ]


class HashSaltPolicy(PlacementPolicy):
    """Fallback: replica ``i`` lives wherever ``key##r{i}`` hashes.

    The pre-refactor behavior, kept as the explicit fallback for
    overlays that cannot expose kernel peer access (a remote transport,
    a third-party :class:`~repro.dht.base.DHT`).  Placement is a hash
    accident: replica holders are whatever peers the salted aliases
    route to, so they carry no topology guarantee and may *collide*
    with the owner — the one policy exempt from the distinct-peers
    clause of the contract.  :class:`~repro.dht.replicated.ReplicatedDHT`
    detects this policy and moves bytes by routed puts/gets on the
    salted keys instead of direct peer access.
    """

    #: Salted aliases route through the public interface, so this
    #: policy binds any DHT, not just kernel substrates.
    substrate: DHT  # type: ignore[assignment]

    def bind(self, substrate: DHT) -> "HashSaltPolicy":  # type: ignore[override]
        self.substrate = substrate
        return self

    @staticmethod
    def salted(key: str, index: int) -> str:
        """The alias key whose hash places replica ``index`` (>= 1)."""
        return f"{key}##r{index}"

    def replicas_for(self, key: str, owner: int, k: int) -> list[int]:
        dht = self.substrate
        return [
            owner,
            *(dht.peer_of(self.salted(key, i)) for i in range(1, k)),
        ]
