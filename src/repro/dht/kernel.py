"""Shared peer-store kernel under every DHT substrate and wrapper.

The paper's whole point is that LHT runs unchanged over *any* generic
put/get DHT — so the only thing that should vary between substrates is
**topology**: how a key routes to its owning peer, and how the overlay
repairs itself.  Everything else — per-peer key/value storage, liveness,
the array-backed sorted-id index and its maintenance protocol, owner-first local
writes, oracle reads, and all :class:`~repro.dht.metrics.MetricsRecorder`
charging — is substrate-independent and lives here, exactly once.

Three classes:

* :class:`PeerStore` — the storage/membership kernel.  Owns one
  ``dict[str, Any]`` store per live peer (registration order is
  preserved, which pins oracle-scan order), and an array-backed
  sorted-id index maintained incrementally on every membership change
  — the single maintenance protocol that PR 4 previously had to wire
  into four substrates by hand.
* :class:`SubstrateBase` — a :class:`~repro.dht.base.DHT` whose routed
  operations (``put``/``get``/``remove``) are implemented once against
  the peer store; a concrete substrate shrinks to its essence: a
  :meth:`SubstrateBase.route` implementation (``key -> (owner_id,
  hops)``), a :meth:`SubstrateBase.peer_of` placement rule, and its
  topology-maintenance methods (finger repair, zone split, k-bucket
  construction, surrogate resolution).  Lint rule LHT006 keeps concrete
  substrates from re-growing overrides of the kernel-owned methods.
* :class:`DelegatingDHT` — the base for the wrapper stack
  (:class:`~repro.dht.faulty.FaultyDHT`,
  :class:`~repro.dht.replicated.ReplicatedDHT`,
  :class:`~repro.dht.serializing.SerializingDHT`,
  :class:`~repro.dht.accesslog.AccessLoggingDHT`,
  :class:`~repro.resilience.wrapper.ResilientDHT`).  It shares the inner
  recorder (costs add up across a stack) and delegates the full
  interface, so each wrapper overrides only the operations it actually
  changes.
"""

from __future__ import annotations

import abc
import bisect
from typing import Any, Iterable, Iterator, Sequence

from repro.dht.base import DHT
from repro.dht.metrics import MetricsRecorder
from repro.errors import DHTError, NoSuchPeerError

__all__ = ["PeerStore", "PlacementPolicy", "SubstrateBase", "DelegatingDHT"]


class PeerStore:
    """Per-peer key/value stores, liveness, and the sorted-id index.

    Peers register in overlay-construction order and that order is
    preserved (Python dicts keep insertion order through deletions), so
    holder scans — the fallback path of :meth:`SubstrateBase.peek` and
    :meth:`SubstrateBase.local_write` — visit peers exactly as the
    pre-kernel substrates visited their node dicts.

    The sorted-id view is an *array-backed index maintained
    incrementally*: :meth:`add_peer` splices the id in with
    ``bisect.insort`` and :meth:`remove_peer` deletes by bisected
    position, so a membership event costs ``O(log n)`` search plus one
    ``O(n)`` memmove instead of the full ``O(n log n)`` ``sorted()``
    rebuild the lazy-invalidation protocol used to pay.  All substrates
    share this one index through :meth:`sorted_ids` /
    :meth:`successor_of`; none keeps a private copy of the membership.
    """

    __slots__ = ("_stores", "_sorted_ids")

    def __init__(self) -> None:
        self._stores: dict[int, dict[str, Any]] = {}
        self._sorted_ids: list[int] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_peer(
        self, peer_id: int, store: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Register a live peer; returns its (possibly shared) store.

        Substrates whose node records expose a public ``store`` field
        pass that dict in, so node objects and the kernel always view
        the same storage.
        """
        if peer_id in self._stores:
            raise NoSuchPeerError(f"peer {peer_id} already registered")
        self._stores[peer_id] = store if store is not None else {}
        bisect.insort(self._sorted_ids, peer_id)
        return self._stores[peer_id]

    def remove_peer(self, peer_id: int) -> dict[str, Any]:
        """Deregister a peer (leave/crash); returns its orphaned store
        so graceful departures can hand the keys to a successor."""
        try:
            store = self._stores.pop(peer_id)
        except KeyError:
            raise NoSuchPeerError(f"peer {peer_id} is not registered") from None
        del self._sorted_ids[bisect.bisect_left(self._sorted_ids, peer_id)]
        return store

    def is_live(self, peer_id: int | None) -> bool:
        """Whether ``peer_id`` names a live peer."""
        return peer_id is not None and peer_id in self._stores

    def __len__(self) -> int:
        return len(self._stores)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._stores

    # ------------------------------------------------------------------
    # Sorted-id index (single maintenance protocol)
    # ------------------------------------------------------------------

    def sorted_ids(self) -> list[int]:
        """Sorted live-peer ids, maintained incrementally across
        membership changes (callers must not mutate the returned list)."""
        return self._sorted_ids

    def successor_of(self, point: int) -> int:
        """The live peer owning ring point ``point``: the first id
        ``>= point``, wrapping to the smallest id — the successor rule
        every ring substrate's ``peer_of`` reduces to."""
        ids = self._sorted_ids
        if not ids:
            raise NoSuchPeerError("no live peers")
        idx = bisect.bisect_left(ids, point)
        return ids[0] if idx == len(ids) else ids[idx]

    # ------------------------------------------------------------------
    # Storage access
    # ------------------------------------------------------------------

    def store_of(self, peer_id: int) -> dict[str, Any]:
        """The key/value store of one live peer."""
        try:
            return self._stores[peer_id]
        except KeyError:
            raise NoSuchPeerError(f"peer {peer_id} is not registered") from None

    def find_holder(self, key: str) -> int | None:
        """First peer (registration order) whose store holds ``key``."""
        for peer_id, store in self._stores.items():
            if key in store:
                return peer_id
        return None

    def all_keys(self) -> Iterator[str]:
        """Every stored key, grouped by peer in registration order."""
        for store in self._stores.values():
            yield from store

    def loads(self) -> dict[int, int]:
        """Stored-key count per peer, in registration order."""
        return {peer_id: len(store) for peer_id, store in self._stores.items()}


class PlacementPolicy(abc.ABC):
    """Replica placement rule: where the copies of a key's value live.

    The kernel hook behind topology-aware replication
    (:class:`~repro.dht.replicated.ReplicatedDHT`): a policy maps
    ``(key, owner, k)`` to the ordered list of peers that should hold
    the value — owner first, then the ``k - 1`` topology-derived backup
    holders (successor list, leaf set, zone neighbors, closest ids,
    table slice).  Concrete policies live in
    :mod:`repro.dht.placement` and are enrolled per substrate through
    :class:`~repro.dht.registry.SubstrateSpec`.

    Contract (checked by the placement conformance matrix and flow rule
    LHT013):

    * **pure** — ``replicas_for`` reads membership/topology state only:
      no :class:`~repro.dht.metrics.MetricsRecorder` charging, no peer
      store mutation, no wall clock, no randomness.  Placement is a
      deterministic *guarantee* derived from the overlay, never a hash
      accident or a sampled choice.
    * **owner-first** — ``result[0] == owner`` always.
    * **distinct and live** — no peer appears twice; every returned
      peer is live at call time.
    * **graceful degradation** — when fewer than ``k`` live peers
      exist, every live peer is returned (length ``min(k, n_live)``).
    """

    #: The overlay this policy reads topology from; set by :meth:`bind`.
    substrate: "SubstrateBase"

    def bind(self, substrate: "SubstrateBase") -> "PlacementPolicy":
        """Attach the policy to one overlay instance; returns ``self``."""
        self.substrate = substrate
        return self

    @abc.abstractmethod
    def replicas_for(self, key: str, owner: int, k: int) -> list[int]:
        """Ordered distinct live peers to hold ``key``, owner first."""


class SubstrateBase(DHT):
    """A DHT substrate built on the shared :class:`PeerStore` kernel.

    Concrete substrates implement exactly two placement methods —
    :meth:`route` (the routed path, charged) and :meth:`peer_of` (the
    oracle placement rule, free) — plus whatever topology maintenance
    their overlay needs.  The kernel implements every storage-facing
    method of the :class:`~repro.dht.base.DHT` interface against
    ``self.peers`` and funnels all metrics charging through one place.
    """

    #: Read/repair order for the un-routed paths (``peek``,
    #: ``local_write``).  Owner-first is right whenever computing the
    #: owner is cheaper than scanning every peer (all ring/XOR/prefix
    #: overlays); Tapestry flips it because surrogate resolution is
    #: ``O(digits · N)`` — more than the holder scan it would save.
    OWNER_FIRST_READS = True

    def __init__(self, metrics: MetricsRecorder | None = None) -> None:
        super().__init__(metrics)
        self.peers = PeerStore()

    # ------------------------------------------------------------------
    # Substrate essence
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def route(self, key: str) -> tuple[int, int]:
        """Route to the peer responsible for ``key``.

        Returns ``(owner_peer_id, hops)``; the kernel charges the hops
        to the shared recorder.  Implementations draw their gateway from
        their own seeded generator, so routed-operation RNG streams are
        substrate-local.
        """

    @abc.abstractmethod
    def peer_of(self, key: str) -> int:
        """Placement oracle: the peer currently responsible for ``key``
        (free of lookup cost; must agree with :meth:`route` on a
        converged overlay)."""

    # ------------------------------------------------------------------
    # Routed operations (each is one DHT-lookup, charged here)
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        owner, hops = self.route(key)
        self.metrics.record_put(hops)
        self.peers.store_of(owner)[key] = value

    def get(self, key: str) -> Any | None:
        owner, hops = self.route(key)
        value = self.peers.store_of(owner).get(key)
        self.metrics.record_get(hops, found=value is not None)
        return value

    def remove(self, key: str) -> Any | None:
        owner, hops = self.route(key)
        self.metrics.record_remove(hops)
        return self.peers.store_of(owner).pop(key, None)

    def multi_get(
        self, keys: Sequence[str], *, absorb_errors: bool = False
    ) -> list[Any | None]:
        """One batched routed round of gets against the peer store.

        Read-side dual of :meth:`multi_put`: every key is routed and
        charged individually (``record_get`` per key, so counts and
        found-flags are byte-identical to sequential :meth:`get`
        calls), but the round runs entirely inside the kernel — no
        per-key virtual dispatch through the public ``get`` — which is
        what coalesced serving rounds and range frontiers actually pay
        at 2^20-key scale.  ``absorb_errors`` keeps the
        :meth:`~repro.dht.base.DHT.multi_get` contract: a typed
        :class:`~repro.errors.DHTError` while routing one key yields
        ``None`` for that key instead of failing the round.
        """
        if type(self).get is not SubstrateBase.get:
            # A subclass customized the single-key read path (test
            # fixtures may gate or instrument it; LHT006 bars concrete
            # substrates from doing so) — batched rounds must observe
            # those semantics, so fall back to the sequential default.
            return super().multi_get(keys, absorb_errors=absorb_errors)
        peers = self.peers
        metrics = self.metrics
        values: list[Any | None] = []
        for key in keys:
            try:
                owner, hops = self.route(key)
            except DHTError:
                if not absorb_errors:
                    raise
                values.append(None)
                continue
            value = peers.store_of(owner).get(key)
            metrics.record_get(hops, found=value is not None)
            values.append(value)
        return values

    def multi_put(
        self,
        items: Sequence[tuple[str, Any]],
        *,
        absorb_errors: bool = False,
    ) -> list[bool]:
        """One batched routed round of puts against the peer store.

        The kernel-level write batch: every item is routed and charged
        individually (``record_put`` per item, so counts are
        byte-identical to sequential :meth:`put` calls), but the whole
        batch crosses the overlay as a single parallel round — the
        latency model the serving layer and ``bulk_load`` fast path
        bill as one step.  ``absorb_errors`` keeps the
        :meth:`~repro.dht.base.DHT.multi_put` contract: a typed
        :class:`~repro.errors.DHTError` raised while routing one item
        (possible mid-churn) marks that item ``False`` instead of
        failing the round.
        """
        stored: list[bool] = []
        for key, value in items:
            try:
                owner, hops = self.route(key)
            except DHTError:
                if not absorb_errors:
                    raise
                stored.append(False)
                continue
            self.metrics.record_put(hops)
            self.peers.store_of(owner)[key] = value
            stored.append(True)
        return stored

    # ------------------------------------------------------------------
    # Direct peer access (replica placement choke point)
    # ------------------------------------------------------------------
    #
    # Replica traffic goes through the same kernel accounting as routed
    # operations: each charged op is one DHT-lookup at one overlay hop,
    # because the caller (the replication layer) already knows the
    # replica holder — it is a topology neighbor of the owner, one
    # forward away, exactly the D1HT/successor-list replication model.
    # A probe of a *dead* peer is a failed get (the network work
    # happened, nobody answered), never an exception: replica probing
    # is the degraded path and must degrade, not raise.

    def probe_get(self, key: str, peer_id: int) -> Any | None:
        if not self.peers.is_live(peer_id):
            self.metrics.record_get(1, found=False)
            return None
        value = self.peers.store_of(peer_id).get(key)
        self.metrics.record_get(1, found=value is not None)
        return value

    def put_at(self, key: str, value: Any, peer_id: int) -> None:
        if not self.peers.is_live(peer_id):
            self.metrics.record_failed_put(1)
            raise NoSuchPeerError(
                f"replica write of {key!r} to dead peer {peer_id}"
            )
        self.metrics.record_put(1)
        self.peers.store_of(peer_id)[key] = value

    def remove_at(self, key: str, peer_id: int) -> Any | None:
        if not self.peers.is_live(peer_id):
            self.metrics.record_failed_remove(1)
            return None
        self.metrics.record_remove(1)
        return self.peers.store_of(peer_id).pop(key, None)

    def local_write_at(self, key: str, value: Any, peer_id: int) -> None:
        # The replica holder rewrites its own disk (Alg. 1): free of
        # lookup cost, skipped silently when the holder has crashed —
        # the next replicated put re-establishes the copy.
        if self.peers.is_live(peer_id):
            self.peers.store_of(peer_id)[key] = value

    # ------------------------------------------------------------------
    # Local persistence (free of lookup cost)
    # ------------------------------------------------------------------

    def local_write(self, key: str, value: Any) -> None:
        # The holding peer rewrites its own disk (Alg. 1): update the
        # key wherever it currently lives — the responsible peer on any
        # converged overlay, possibly a stale holder under churn — and
        # place fresh keys at the responsible peer.
        if self.OWNER_FIRST_READS:
            owner_store = self.peers.store_of(self.peer_of(key))
            if key in owner_store:
                owner_store[key] = value
                return
            holder = self.peers.find_holder(key)
            if holder is not None:
                self.peers.store_of(holder)[key] = value
                return
            owner_store[key] = value
        else:
            holder = self.peers.find_holder(key)
            if holder is not None:
                self.peers.store_of(holder)[key] = value
                return
            self.peers.store_of(self.peer_of(key))[key] = value

    # ------------------------------------------------------------------
    # Introspection (free of lookup cost)
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        if not len(self.peers):
            return None
        if self.OWNER_FIRST_READS:
            value = self.peers.store_of(self.peer_of(key)).get(key)
            if value is not None:
                return value
        holder = self.peers.find_holder(key)
        if holder is None:
            return None
        return self.peers.store_of(holder).get(key)

    def keys(self) -> Iterable[str]:
        return self.peers.all_keys()

    def peer_loads(self) -> dict[int, int]:
        return self.peers.loads()

    @property
    def n_peers(self) -> int:
        return len(self.peers)

    @property
    def node_ids(self) -> list[int]:
        """Sorted identifiers of all live peers."""
        return list(self.peers.sorted_ids())


class DelegatingDHT(DHT):
    """Base for wrapper DHTs: share the recorder, delegate everything.

    A wrapper overrides only the operations whose semantics it changes;
    the rest fall through to ``inner`` here, so cross-cutting plumbing
    (metrics pass-through, oracle delegation, error typing via the
    inherited :meth:`~repro.dht.base.DHT.multi_get`) lives in exactly
    one place.

    ``multi_get`` and ``multi_put`` are deliberately *not* forwarded to
    ``inner.multi_get`` / ``inner.multi_put``: the inherited sequential
    defaults issue each key through the **wrapper's own** ``get`` /
    ``put``, so per-key semantics (fault injection, retries, replica
    fan-out, serialization, access logging, breaker gating) apply to
    batched rounds exactly as to single operations, and a typed
    :class:`~repro.errors.DHTError` per key is absorbed or propagated
    by the one implementation in the abstract base.  Forwarding either
    batch to ``inner`` would silently skip every wrapper between the
    caller and the substrate — a wrapper that *does* need batch-level
    behaviour must override the method explicitly and route each item
    through its own single-key path (the rule
    ``tests/test_substrate_conformance.py`` pins per wrapper).
    """

    def __init__(self, inner: DHT) -> None:
        super().__init__(inner.metrics)  # share the recorder: costs add up
        self.inner = inner

    # ------------------------------------------------------------------
    # Routed operations (delegated; wrappers override selectively)
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self.inner.put(key, value)

    def get(self, key: str) -> Any | None:
        return self.inner.get(key)

    def remove(self, key: str) -> Any | None:
        return self.inner.remove(key)

    def local_write(self, key: str, value: Any) -> None:
        self.inner.local_write(key, value)

    # Direct peer access forwards like the single-key operations: a
    # wrapper that changes per-operation semantics (fault injection,
    # byte encoding) overrides these alongside put/get/remove.

    def probe_get(self, key: str, peer_id: int) -> Any | None:
        return self.inner.probe_get(key, peer_id)

    def put_at(self, key: str, value: Any, peer_id: int) -> None:
        self.inner.put_at(key, value, peer_id)

    def remove_at(self, key: str, peer_id: int) -> Any | None:
        return self.inner.remove_at(key, peer_id)

    def local_write_at(self, key: str, value: Any, peer_id: int) -> None:
        self.inner.local_write_at(key, value, peer_id)

    # ------------------------------------------------------------------
    # Introspection (oracle access: never wrapped, never charged)
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        return self.inner.peek(key)

    def keys(self) -> Iterable[str]:
        return self.inner.keys()

    def peer_of(self, key: str) -> int:
        return self.inner.peer_of(key)

    def peer_loads(self) -> dict[int, int]:
        return self.inner.peer_loads()

    @property
    def n_peers(self) -> int:
        return self.inner.n_peers
