"""Kademlia DHT substrate (Maymounkov & Mazières, IPTPS 2002).

XOR-metric routing with per-node k-buckets and the iterative
``FIND_NODE`` procedure: each lookup keeps a shortlist of the ``k``
closest known contacts and queries the ``α`` closest not-yet-queried ones
per round until the closest node stops improving.

Keys live on the single node whose identifier is XOR-closest to
``hash(key)`` (replication factor 1 — the index layers treat the DHT as a
non-replicated put/get store, as the paper does; replication is an
orthogonal substrate concern).

The overlay is built statically from the global membership (each node's
buckets are populated with up to ``k`` contacts per distance range),
which models a converged network — the regime in which the paper
measures.  Hop accounting counts every ``FIND_NODE`` message of the
iterative lookup, Kademlia's natural bandwidth unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dht.hashing import hash_key
from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError, RoutingError

__all__ = ["KademliaDHT", "KademliaNode"]


@dataclass(slots=True)
class KademliaNode:
    """One Kademlia peer: identifier, k-buckets, and key store."""

    id: int
    buckets: list[list[int]] = field(default_factory=list)
    store: dict[str, Any] = field(default_factory=dict)

    def contacts(self) -> list[int]:
        """All known contacts across buckets."""
        return [c for bucket in self.buckets for c in bucket]


class KademliaDHT(SubstrateBase):
    """A simulated Kademlia overlay implementing the generic DHT interface."""

    MAX_ROUNDS = 64

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        id_bits: int = 32,
        k: int = 8,
        alpha: int = 3,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        if k < 1 or alpha < 1:
            raise ConfigurationError(f"k and alpha must be >= 1: k={k}, alpha={alpha}")
        self.id_bits = id_bits
        self.k = k
        self.alpha = alpha
        self._rng = np.random.default_rng(seed)
        ids: set[int] = set()
        while len(ids) < n_peers:
            ids.add(int(self._rng.integers(0, 1 << id_bits)))
        self._nodes: dict[int, KademliaNode] = {}
        for nid in ids:
            node = KademliaNode(id=nid)
            self._nodes[nid] = node
            self.peers.add_peer(nid, node.store)
        self._build_buckets()

    # ------------------------------------------------------------------
    # Static overlay construction
    # ------------------------------------------------------------------

    def _bucket_index(self, node_id: int, other: int) -> int:
        """Bucket index = position of the highest differing bit."""
        return (node_id ^ other).bit_length() - 1

    def _build_buckets(self) -> None:
        all_ids = sorted(self._nodes)
        for node in self._nodes.values():
            node.buckets = [[] for _ in range(self.id_bits)]
            for other in all_ids:
                if other == node.id:
                    continue
                idx = self._bucket_index(node.id, other)
                if len(node.buckets[idx]) < self.k:
                    node.buckets[idx].append(other)

    # ------------------------------------------------------------------
    # Iterative lookup
    # ------------------------------------------------------------------

    def _node_closest_contacts(self, node_id: int, target: int) -> list[int]:
        """A node's answer to FIND_NODE: its k known contacts closest to
        ``target`` (itself included, as real implementations do)."""
        node = self._nodes[node_id]
        candidates = node.contacts() + [node_id]
        candidates.sort(key=lambda c: c ^ target)
        return candidates[: self.k]

    def iterative_find(self, start: int, target: int) -> tuple[int, int]:
        """Locate the globally XOR-closest node to ``target``.

        Returns ``(closest_node_id, messages_sent)``.
        """
        queried: set[int] = set()
        shortlist = sorted(
            self._node_closest_contacts(start, target), key=lambda c: c ^ target
        )
        messages = 0
        for _ in range(self.MAX_ROUNDS):
            pending = [c for c in shortlist[: self.k] if c not in queried]
            if not pending:
                break
            best_before = shortlist[0] ^ target
            for contact in pending[: self.alpha]:
                queried.add(contact)
                messages += 1
                learned = self._node_closest_contacts(contact, target)
                shortlist = sorted(
                    set(shortlist) | set(learned), key=lambda c: c ^ target
                )
            if shortlist[0] ^ target == best_before and all(
                c in queried for c in shortlist[: self.k]
            ):
                break
        else:
            raise RoutingError(f"Kademlia lookup did not converge on {target}")
        return shortlist[0], max(messages, 1)

    def route(self, key: str) -> tuple[int, int]:
        target = hash_key(key, self.id_bits)
        ids = self.peers.sorted_ids()
        start = ids[int(self._rng.integers(0, len(ids)))]
        return self.iterative_find(start, target)

    # ------------------------------------------------------------------
    # Placement oracle
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> int:
        target = hash_key(key, self.id_bits)
        return min(self._nodes, key=lambda nid: nid ^ target)
