"""Fast hash-partitioned DHT backend with a synthetic hop model.

Functionally a consistent-hash ring collapsed into one process: keys map
to the successor peer of their SHA-1 identifier, exactly like Chord's
placement rule, but routing is not simulated — each operation charges a
deterministic ``⌈log2 N⌉`` hops, the textbook Chord bound.

This is the default backend for the paper-scale experiments (up to 2^20
records): the index-level metrics (DHT-lookup counts, moved records,
parallel steps) are *identical* to those over the routed substrates —
paper footnote 5 makes the same observation — while running orders of
magnitude faster.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dht.hashing import ID_SPACE, hash_key
from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError

__all__ = ["LocalDHT"]


class LocalDHT(SubstrateBase):
    """In-process DHT with consistent-hash placement over virtual peers.

    Args:
        n_peers: Number of virtual peers on the ring.
        seed: Seed for drawing peer identifiers.
        metrics: Optional shared recorder.
    """

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        rng = np.random.default_rng(seed)
        ids: set[int] = set()
        while len(ids) < n_peers:
            # Compose a full 160-bit identifier from three 64-bit draws.
            pid = 0
            for _ in range(3):
                pid = (pid << 64) | int(rng.integers(0, 1 << 63))
            ids.add(pid % ID_SPACE)
        for pid in sorted(ids):
            self.peers.add_peer(pid)
        self._hop_cost = max(1, math.ceil(math.log2(n_peers)))

    # ------------------------------------------------------------------
    # Placement (the substrate essence: a static ring, no real routing)
    # ------------------------------------------------------------------

    def route(self, key: str) -> tuple[int, int]:
        """Synthetic routing: the responsible peer at ``⌈log2 N⌉`` hops."""
        return self.peer_of(key), self._hop_cost

    def peer_of(self, key: str) -> int:
        """Successor peer of ``hash(key)`` on the ring."""
        return self.peers.successor_of(hash_key(key))
