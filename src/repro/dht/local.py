"""Fast hash-partitioned DHT backend with a synthetic hop model.

Functionally a consistent-hash ring collapsed into one process: keys map
to the successor peer of their SHA-1 identifier, exactly like Chord's
placement rule, but routing is not simulated — each operation charges a
deterministic ``⌈log2 N⌉`` hops, the textbook Chord bound.

This is the default backend for the paper-scale experiments (up to 2^20
records): the index-level metrics (DHT-lookup counts, moved records,
parallel steps) are *identical* to those over the routed substrates —
paper footnote 5 makes the same observation — while running orders of
magnitude faster.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable

import numpy as np

from repro.dht.base import DHT
from repro.dht.hashing import ID_SPACE, hash_key
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError

__all__ = ["LocalDHT"]


class LocalDHT(DHT):
    """In-process DHT with consistent-hash placement over virtual peers.

    Args:
        n_peers: Number of virtual peers on the ring.
        seed: Seed for drawing peer identifiers.
        metrics: Optional shared recorder.
    """

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        rng = np.random.default_rng(seed)
        ids: set[int] = set()
        while len(ids) < n_peers:
            # Compose a full 160-bit identifier from three 64-bit draws.
            pid = 0
            for _ in range(3):
                pid = (pid << 64) | int(rng.integers(0, 1 << 63))
            ids.add(pid % ID_SPACE)
        self._peer_ids = sorted(ids)
        self._store: dict[str, Any] = {}
        self._hop_cost = max(1, math.ceil(math.log2(n_peers)))

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _responsible(self, key: str) -> int:
        """Successor peer of ``hash(key)`` on the ring."""
        kid = hash_key(key)
        idx = bisect.bisect_left(self._peer_ids, kid)
        return self._peer_ids[idx % len(self._peer_ids)]

    # ------------------------------------------------------------------
    # DHT interface
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self.metrics.record_put(self._hop_cost)
        self._store[key] = value

    def get(self, key: str) -> Any | None:
        value = self._store.get(key)
        self.metrics.record_get(self._hop_cost, found=value is not None)
        return value

    def remove(self, key: str) -> Any | None:
        self.metrics.record_remove(self._hop_cost)
        return self._store.pop(key, None)

    def local_write(self, key: str, value: Any) -> None:
        self._store[key] = value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        return self._store.get(key)

    def keys(self) -> Iterable[str]:
        return self._store.keys()

    def peer_of(self, key: str) -> int:
        return self._responsible(key)

    def peer_loads(self) -> dict[int, int]:
        loads: dict[int, int] = {pid: 0 for pid in self._peer_ids}
        for key in self._store:
            loads[self._responsible(key)] += 1
        return loads

    @property
    def n_peers(self) -> int:
        return len(self._peer_ids)
