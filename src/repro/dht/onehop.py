"""Single-hop DHT substrate (D1HT-style; Monnerat & Amorim, IPDPS 2006).

Every live peer maintains the complete sorted peer-id table, so a routed
operation on a converged overlay is exactly **one hop**: the gateway
computes the key's owner from its own table and contacts it directly.
What a single-hop DHT buys with that table it pays in maintenance —
membership events must reach every peer — and D1HT disseminates them in
batched event rounds (EDRA).  This simulation models that dissemination
explicitly rather than assuming instant global knowledge:

* a **joining** peer takes over its key range immediately (it is live
  and responsible from the moment it joins) but spends a *quarantine
  window* of ``quarantine_rounds`` dissemination rounds outside other
  peers' tables — until the join event lands, lookups for its keys still
  contact the previous owner, which forwards them: one extra hop,
  D1HT's bounded-staleness guarantee;
* **leave/crash** events propagate on the next round; a stale table may
  still name a dead peer, costing one timed-out probe per dead entry
  until the event lands.

:meth:`disseminate` advances the event horizon one round at a time (the
churn soak interleaves it with traffic so stale-table corrections are
actually exercised), :meth:`settle` drains every pending event, and
:meth:`check_tables` raises if table coherence is not restored once the
overlay has quiesced.  The benchgate metric ``hops_per_op_onehop`` pins
the converged cost at exactly 1.0.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dht.hashing import hash_key, in_half_open_interval
from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError, EmptyOverlayError, RoutingError

__all__ = ["OneHopDHT", "OneHopNode"]


@dataclass(slots=True)
class OneHopNode:
    """One single-hop peer: identifier, full table view, key store."""

    id: int
    table: list[int] = field(default_factory=list)
    store: dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class _Event:
    """A membership event awaiting dissemination to every table."""

    kind: str  # "join" | "leave"
    peer_id: int
    rounds_left: int


class OneHopDHT(SubstrateBase):
    """A simulated single-hop overlay implementing the generic DHT interface.

    Args:
        n_peers: Initial overlay size (peer ids drawn uniformly at random).
        seed: RNG seed for peer ids and gateway selection.
        id_bits: Identifier width (ring size ``2**id_bits``).
        quarantine_rounds: Dissemination rounds a join event waits before
            the joiner becomes routable in other peers' tables.
        metrics: Optional shared recorder.
    """

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        id_bits: int = 32,
        quarantine_rounds: int = 2,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        if quarantine_rounds < 1:
            raise ConfigurationError(
                f"quarantine_rounds must be >= 1: {quarantine_rounds}"
            )
        self.id_bits = id_bits
        self.space = 1 << id_bits
        self.quarantine_rounds = quarantine_rounds
        self._rng = np.random.default_rng(seed)
        self._nodes: dict[int, OneHopNode] = {}
        self._pending: list[_Event] = []
        self.keys_transferred = 0
        ids = self._draw_ids(n_peers)
        full_table = sorted(ids)
        for node_id in ids:
            node = OneHopNode(id=node_id, table=list(full_table))
            self._nodes[node_id] = node
            self.peers.add_peer(node_id, node.store)

    def _draw_ids(self, count: int) -> list[int]:
        ids: set[int] = set(self._nodes)
        fresh: list[int] = []
        while len(fresh) < count:
            candidate = int(self._rng.integers(0, self.space))
            if candidate not in ids:
                ids.add(candidate)
                fresh.append(candidate)
        return fresh

    @staticmethod
    def _successor_in(ordered: list[int], target: int) -> int:
        idx = bisect.bisect_left(ordered, target)
        return ordered[idx % len(ordered)]

    # ------------------------------------------------------------------
    # Routing: direct owner computation from the gateway's table
    # ------------------------------------------------------------------

    def route(self, key: str) -> tuple[int, int]:
        if not self._nodes:
            raise EmptyOverlayError("no live peers")
        kid = hash_key(key, self.id_bits)
        ids = self.peers.sorted_ids()
        gateway_id = ids[int(self._rng.integers(0, len(ids)))]
        owner = self._successor_in(ids, kid)
        if not self._pending:
            # Converged fast path: every table equals the membership
            # (the invariant ``check_tables`` pins once dissemination
            # quiesces), so the table walk below would find the live
            # owner on its first probe — exactly one hop, no staleness
            # forward.  The gateway draw above stays, keeping the RNG
            # stream byte-identical to the general path.
            return owner, 1
        view = self._nodes[gateway_id].table
        hops = 1  # direct contact with the owner candidate
        idx = bisect.bisect_left(view, kid)
        candidate = owner
        for probe in range(len(view)):
            candidate = view[(idx + probe) % len(view)]
            if self.peers.is_live(candidate):
                break
            hops += 1  # timed-out probe of a dead table entry
        if candidate != owner:
            hops += 1  # stale view: the contacted peer forwards to the owner
        return owner, hops

    def peer_of(self, key: str) -> int:
        return self.peers.successor_of(hash_key(key, self.id_bits))

    # ------------------------------------------------------------------
    # Membership protocol (event dissemination with join quarantine)
    # ------------------------------------------------------------------

    def join(self, node_id: int | None = None) -> int:
        """Join a new peer; returns its id.

        The joiner copies the current global table (its successor hands
        it over, as D1HT's join does), takes over its key range, and
        queues a join event that other peers only apply once the
        quarantine window has elapsed.
        """
        if node_id is None:
            node_id = self._draw_ids(1)[0]
        if node_id in self._nodes:
            raise ConfigurationError(f"node id already present: {node_id}")
        ids = self.peers.sorted_ids()
        succ_id = self._successor_in(ids, node_id)
        pred_id = ids[(bisect.bisect_left(ids, node_id) - 1) % len(ids)]
        node = OneHopNode(id=node_id, table=sorted([*ids, node_id]))
        self._nodes[node_id] = node
        self.peers.add_peer(node_id, node.store)

        succ = self._nodes[succ_id]
        moved = [
            k
            for k in succ.store
            if in_half_open_interval(
                hash_key(k, self.id_bits), pred_id, node_id, self.space
            )
        ]
        for k in moved:
            node.store[k] = succ.store.pop(k)
        self.keys_transferred += len(moved)
        self._pending.append(_Event("join", node_id, self.quarantine_rounds))
        return node_id

    def leave(self, node_id: int, graceful: bool = True) -> None:
        """Remove a peer; graceful leaves hand their keys to the successor."""
        node = self._nodes.get(node_id)
        if node is None:
            return
        if len(self._nodes) == 1:
            raise EmptyOverlayError("cannot remove the last peer")
        del self._nodes[node_id]
        self.peers.remove_peer(node_id)
        if graceful:
            succ_id = self.peers.successor_of(node_id)
            self._nodes[succ_id].store.update(node.store)
            self.keys_transferred += len(node.store)
        self._pending.append(_Event("leave", node_id, 1))

    def fail(self, node_id: int) -> None:
        """Crash a peer without key handoff (keys are lost until re-put)."""
        self.leave(node_id, graceful=False)

    # ------------------------------------------------------------------
    # Event dissemination (the maintenance protocol)
    # ------------------------------------------------------------------

    def disseminate(self, rounds: int = 1) -> None:
        """Advance the event horizon ``rounds`` dissemination rounds.

        Events whose delay has elapsed are applied to *every* live
        peer's table in one batch — the single-round stand-in for
        D1HT's log-time event-propagation trees.
        """
        for _ in range(rounds):
            if not self._pending:
                return
            for event in self._pending:
                event.rounds_left -= 1
            ready = [e for e in self._pending if e.rounds_left <= 0]
            self._pending = [e for e in self._pending if e.rounds_left > 0]
            for event in ready:
                # A joiner that already left/crashed must not re-enter.
                add = event.kind == "join" and self.peers.is_live(event.peer_id)
                for node in self._nodes.values():
                    pos = bisect.bisect_left(node.table, event.peer_id)
                    present = (
                        pos < len(node.table) and node.table[pos] == event.peer_id
                    )
                    if add and not present:
                        node.table.insert(pos, event.peer_id)
                    elif not add and present:
                        del node.table[pos]

    def settle(self) -> int:
        """Disseminate until no events are pending; returns rounds spent."""
        rounds = 0
        while self._pending:
            self.disseminate()
            rounds += 1
        return rounds

    @property
    def converged(self) -> bool:
        """Whether every table equals the live membership."""
        if self._pending:
            return False
        ids = self.peers.sorted_ids()
        return all(node.table == ids for node in self._nodes.values())

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def check_tables(self) -> None:
        """Raise unless tables are well-formed (and, once the overlay
        has quiesced, exactly equal to the live membership)."""
        ids = self.peers.sorted_ids()
        for node in self._nodes.values():
            if node.table != sorted(set(node.table)):
                raise RoutingError(f"peer {node.id} table unsorted or duplicated")
            pos = bisect.bisect_left(node.table, node.id)
            if pos >= len(node.table) or node.table[pos] != node.id:
                raise RoutingError(f"peer {node.id} is missing from its own table")
            if not self._pending and node.table != ids:
                raise RoutingError(
                    f"peer {node.id} table diverges from membership after "
                    "dissemination quiesced"
                )
