"""The substrate registry: one enrollment point for every overlay.

Every concrete :class:`~repro.dht.kernel.SubstrateBase` subclass in
``repro.dht`` is registered here by name, and every suite that iterates
"all substrates" — the conformance matrix, the churn soak, the fault
matrix, the determinism gate, the benchgate hop metrics, and the
experiment runner's ``SUBSTRATES`` — draws its list from this module
instead of a hand-maintained copy.  Adding a substrate therefore means
adding exactly one :func:`register` call below; forgetting it is caught
twice, by lint rule LHT012 (static) and by the registry-completeness
test in ``tests/test_registry.py`` (runtime ``__subclasses__`` walk).

Factories take ``(n_peers, seed)`` and build an isolated overlay with
default routing parameters, which is the contract the experiment layer
(`repro.experiments.common.make_dht`) and all test matrices rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dht.can import CANDHT
from repro.dht.chord import ChordDHT
from repro.dht.base import DHT
from repro.dht.kademlia import KademliaDHT
from repro.dht.kernel import PlacementPolicy, SubstrateBase
from repro.dht.koorde import KoordeDHT
from repro.dht.local import LocalDHT
from repro.dht.onehop import OneHopDHT
from repro.dht.pastry import PastryDHT
from repro.dht.placement import (
    ClosestIdsPolicy,
    HashSaltPolicy,
    LeafSetPolicy,
    SuccessorListPolicy,
    TableSlicePolicy,
    ZoneNeighborsPolicy,
)
from repro.dht.tapestry import TapestryDHT
from repro.errors import ConfigurationError

__all__ = [
    "SubstrateSpec",
    "register",
    "names",
    "spec",
    "specs",
    "factories",
    "make",
    "placement_for",
]


@dataclass(frozen=True)
class SubstrateSpec:
    """One registered substrate.

    Attributes:
        name: Registry key (the ``--substrate`` / experiment name).
        cls: The concrete :class:`SubstrateBase` subclass.
        factory: ``(n_peers, seed) -> DHT`` building a fresh overlay.
        dynamic: Whether the overlay supports membership churn
            (``join``/``leave``/``fail``) after construction.
        placement: Factory for the substrate's topology-aware
            :class:`PlacementPolicy` (successor list, leaf set, zone
            neighbors, ...), or ``None`` to fall back to salted
            hashing.  A factory — not an instance — because policies
            bind to one overlay and specs are process-global.
    """

    name: str
    cls: type[SubstrateBase]
    factory: Callable[[int, int], DHT]
    dynamic: bool
    placement: Callable[[], PlacementPolicy] | None = None


_REGISTRY: dict[str, SubstrateSpec] = {}


def register(
    name: str,
    cls: type[SubstrateBase],
    factory: Callable[[int, int], DHT] | None = None,
    dynamic: bool = False,
    placement: Callable[[], PlacementPolicy] | None = None,
) -> None:
    """Enroll a substrate under ``name``; duplicate names are rejected."""
    if name in _REGISTRY:
        raise ConfigurationError(f"substrate already registered: {name!r}")
    if factory is None:
        factory = lambda n_peers, seed: cls(n_peers=n_peers, seed=seed)  # noqa: E731
    _REGISTRY[name] = SubstrateSpec(
        name=name, cls=cls, factory=factory, dynamic=dynamic,
        placement=placement,
    )


def names() -> list[str]:
    """All registered substrate names, sorted."""
    return sorted(_REGISTRY)


def spec(name: str) -> SubstrateSpec:
    """The spec registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown substrate {name!r}; expected one of {names()}"
        ) from None


def specs() -> list[SubstrateSpec]:
    """All registered specs in name order."""
    return [_REGISTRY[name] for name in names()]


def factories() -> dict[str, Callable[[int, int], DHT]]:
    """Name -> factory map (a fresh dict; mutating it cannot unregister)."""
    return {name: _REGISTRY[name].factory for name in names()}


def make(name: str, n_peers: int, seed: int) -> DHT:
    """Build a fresh overlay of the named substrate."""
    return spec(name).factory(n_peers, seed)


def placement_for(dht: DHT) -> PlacementPolicy:
    """Resolve the placement policy for a (possibly wrapped) overlay.

    Walks the wrapper stack to its base substrate and returns that
    substrate's registered topology-aware policy, bound to the base.
    Overlays without kernel peer access — or substrates enrolled
    without a policy — fall back to :class:`HashSaltPolicy` bound to
    the *outermost* layer, so salted aliases route through the full
    wrapper stack exactly as the pre-placement ``ReplicatedDHT`` did.
    """
    base = dht
    while (inner := getattr(base, "inner", None)) is not None:
        base = inner
    for registered in _REGISTRY.values():
        if type(base) is registered.cls and registered.placement is not None:
            return registered.placement().bind(base)
    return HashSaltPolicy().bind(dht)


register("can", CANDHT, dynamic=True, placement=ZoneNeighborsPolicy)
register("chord", ChordDHT, dynamic=True, placement=SuccessorListPolicy)
register("kademlia", KademliaDHT, placement=ClosestIdsPolicy)
register("koorde", KoordeDHT, placement=SuccessorListPolicy)
register("local", LocalDHT, placement=SuccessorListPolicy)
register("onehop", OneHopDHT, dynamic=True, placement=TableSlicePolicy)
register("pastry", PastryDHT, placement=LeafSetPolicy)
register("tapestry", TapestryDHT, placement=ClosestIdsPolicy)
