"""CAN DHT substrate (Ratnasamy et al., SIGCOMM 2001).

The Content-Addressable Network is the paper's §1 example of a
non-ring DHT: the identifier space is a ``d``-dimensional unit torus,
each node owns a hyper-rectangular *zone*, and keys hash to points.
Joins split the zone owning a random point in half (cycling through
dimensions); routing greedily forwards to the neighbor zone closest to
the target point, giving ``O(d · n^{1/d})`` hops.

Zone bounds are halved on split, so every coordinate is a dyadic float —
exact, like the LHT tree geometry.  Graceful departure uses CAN's *buddy
merge*: a node may leave when its zone's split partner is whole (the two
halves reunite); otherwise the caller must retry later (real CAN runs a
takeover protocol that leaves a node managing two zones — out of scope
here, and irrelevant to the index layers above).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import (
    ConfigurationError,
    EmptyOverlayError,
    NoSuchPeerError,
    RoutingError,
)

__all__ = ["CANDHT", "CANNode", "Zone"]


@dataclass(frozen=True, slots=True)
class Zone:
    """A half-open hyper-rectangle ``[lows, highs)`` of the unit torus."""

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    @property
    def dims(self) -> int:
        return len(self.lows)

    def contains(self, point: tuple[float, ...]) -> bool:
        return all(
            lo <= c < hi for c, lo, hi in zip(point, self.lows, self.highs)
        )

    def volume(self) -> float:
        out = 1.0
        for lo, hi in zip(self.lows, self.highs):
            out *= hi - lo
        return out

    def split(self, dim: int) -> tuple["Zone", "Zone"]:
        """Halve along ``dim``; returns (lower half, upper half)."""
        mid = (self.lows[dim] + self.highs[dim]) / 2.0
        lower = Zone(
            self.lows,
            tuple(mid if i == dim else h for i, h in enumerate(self.highs)),
        )
        upper = Zone(
            tuple(mid if i == dim else lo for i, lo in enumerate(self.lows)),
            self.highs,
        )
        return lower, upper

    def distance_to(self, point: tuple[float, ...]) -> float:
        """Squared torus distance from ``point`` to this zone."""
        total = 0.0
        for c, lo, hi in zip(point, self.lows, self.highs):
            if lo <= c < hi:
                continue
            # distance to the nearer edge, allowing wraparound
            direct = min(abs(c - lo), abs(c - hi))
            wrapped = min(abs(c - lo + 1), abs(c - hi - 1),
                          abs(c - lo - 1), abs(c - hi + 1))
            gap = min(direct, wrapped)
            total += gap * gap
        return total

    def adjacent(self, other: "Zone") -> bool:
        """Whether two zones share a (d-1)-dimensional face on the torus."""
        touching_dims = 0
        for lo_a, hi_a, lo_b, hi_b in zip(
            self.lows, self.highs, other.lows, other.highs
        ):
            overlaps = lo_a < hi_b and lo_b < hi_a
            touches = (
                hi_a == lo_b
                or hi_b == lo_a
                or (hi_a == 1.0 and lo_b == 0.0)
                or (hi_b == 1.0 and lo_a == 0.0)
            )
            if overlaps:
                continue
            if touches:
                touching_dims += 1
            else:
                return False
        return touching_dims == 1


@dataclass(slots=True)
class CANNode:
    """One CAN peer: identifier, owned zone, neighbor set, key store."""

    id: int
    zone: Zone
    neighbors: set[int] = field(default_factory=set)
    store: dict[str, Any] = field(default_factory=dict)
    next_split_dim: int = 0


class CANDHT(SubstrateBase):
    """A simulated CAN overlay implementing the generic DHT interface."""

    #: Finding the owning zone is itself an O(N) scan, so owner-first
    #: reads would cost a full pass before the holder scan they are
    #: meant to short-circuit.
    OWNER_FIRST_READS = False

    MAX_ROUTE_HOPS = 512

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        dims: int = 2,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        if dims < 1:
            raise ConfigurationError(f"dims must be >= 1: {dims}")
        self.dims = dims
        self._rng = np.random.default_rng(seed)
        self._next_id = 0
        self._nodes: dict[int, CANNode] = {}
        first = CANNode(
            id=self._take_id(),
            zone=Zone((0.0,) * dims, (1.0,) * dims),
        )
        self._register(first)
        self.keys_transferred = 0
        for _ in range(n_peers - 1):
            self.join()

    def _register(self, node: CANNode) -> None:
        """Add a node to the topology and its store to the kernel."""
        self._nodes[node.id] = node
        self.peers.add_peer(node.id, node.store)

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id - 1

    # ------------------------------------------------------------------
    # Key → point mapping
    # ------------------------------------------------------------------

    def key_point(self, key: str) -> tuple[float, ...]:
        """Hash a key to a point on the ``d``-torus."""
        digest = hashlib.sha1(key.encode()).digest()
        coords = []
        for d in range(self.dims):
            chunk = digest[4 * d : 4 * d + 4]
            coords.append(int.from_bytes(chunk, "big") / 2**32)
        return tuple(coords)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route_point(
        self, start: int, point: tuple[float, ...]
    ) -> tuple[int, int]:
        """Greedy-forward from ``start`` to the zone owning ``point``."""
        current = start
        hops = 0
        for _ in range(self.MAX_ROUTE_HOPS):
            node = self._nodes[current]
            if node.zone.contains(point):
                return current, hops
            best = None
            best_distance = node.zone.distance_to(point)
            for neighbor_id in node.neighbors:
                neighbor = self._nodes.get(neighbor_id)
                if neighbor is None:
                    continue
                distance = neighbor.zone.distance_to(point)
                if best is None or distance < best_distance:
                    best = neighbor_id
                    best_distance = distance
            if best is None:
                raise RoutingError(
                    f"CAN greedy routing stalled at node {current}"
                )
            current = best
            hops += 1
        raise RoutingError(f"CAN routing exceeded {self.MAX_ROUTE_HOPS} hops")

    def _gateway(self) -> int:
        if not self._nodes:
            raise EmptyOverlayError("no live peers")
        ids = self.peers.sorted_ids()
        return ids[int(self._rng.integers(0, len(ids)))]

    def route(self, key: str) -> tuple[int, int]:
        owner, hops = self.route_point(self._gateway(), self.key_point(key))
        return owner, max(hops, 1)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _refresh_neighbors(self, around: Iterable[int]) -> None:
        """Recompute adjacency for the given nodes and their vicinity."""
        affected = set(around)
        for node_id in list(affected):
            affected.update(self._nodes[node_id].neighbors)
        for node_id in affected:
            node = self._nodes.get(node_id)
            if node is None:
                continue
            node.neighbors = {
                other.id
                for other in self._nodes.values()
                if other.id != node.id and node.zone.adjacent(other.zone)
            }

    def join(self) -> int:
        """A new node joins at a random point, splitting the owner's zone."""
        point = tuple(float(c) for c in self._rng.random(self.dims))
        owner_id, _ = self.route_point(self._gateway(), point)
        owner = self._nodes[owner_id]

        dim = owner.next_split_dim % self.dims
        lower, upper = owner.zone.split(dim)
        # The joiner takes the half containing its join point.
        if lower.contains(point):
            give, keep = lower, upper
        else:
            give, keep = upper, lower

        joiner = CANNode(
            id=self._take_id(), zone=give, next_split_dim=dim + 1
        )
        owner.zone = keep
        owner.next_split_dim = dim + 1
        self._register(joiner)

        moved = [
            key
            for key in owner.store
            if give.contains(self.key_point(key))
        ]
        for key in moved:
            joiner.store[key] = owner.store.pop(key)
        self.keys_transferred += len(moved)
        self._refresh_neighbors([owner.id, joiner.id])
        return joiner.id

    def leave(self, node_id: int) -> bool:
        """Graceful departure via buddy merge.

        Succeeds only when the zone's split partner is currently owned
        whole by a single node (then the halves reunite and keys move to
        the buddy); returns ``False`` otherwise.
        """
        node = self._nodes.get(node_id)
        if node is None:
            return False
        if len(self._nodes) == 1:
            raise EmptyOverlayError("cannot remove the last peer")
        for other in self._nodes.values():
            if other.id == node_id:
                continue
            merged = _try_merge(node.zone, other.zone)
            if merged is None:
                continue
            other.zone = merged
            other.store.update(node.store)
            self.keys_transferred += len(node.store)
            del self._nodes[node_id]
            self.peers.remove_peer(node_id)
            # Refresh around the leaver's former neighbors too: they must
            # drop the dead edge and may gain the merged zone as a new
            # neighbor, but need not be anywhere near the buddy.
            self._refresh_neighbors(
                [other.id, *(n for n in node.neighbors if n in self._nodes)]
            )
            return True
        return False

    # ------------------------------------------------------------------
    # Placement oracle and diagnostics
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> int:
        point = self.key_point(key)
        for node in self._nodes.values():
            if node.zone.contains(point):
                return node.id
        raise RoutingError(f"no zone contains point {point}")

    def zone_neighbors(self, peer_id: int) -> frozenset[int]:
        """Ids of the peers whose zones abut ``peer_id``'s zone.

        The topology surface behind
        :class:`~repro.dht.placement.ZoneNeighborsPolicy`: replica
        placement reads adjacency, it never reaches into zone geometry.
        """
        node = self._nodes.get(peer_id)
        if node is None:
            raise NoSuchPeerError(f"no such peer: {peer_id}")
        return frozenset(node.neighbors)

    def check_partition(self) -> None:
        """Assert zones tile the whole torus exactly once."""
        total = sum(node.zone.volume() for node in self._nodes.values())
        if abs(total - 1.0) > 1e-9:
            raise RoutingError(f"zone volumes sum to {total}, expected 1")
        probes = np.random.default_rng(0).random((200, self.dims))
        for probe in probes:
            point = tuple(float(c) for c in probe)
            owners = [
                n.id for n in self._nodes.values() if n.zone.contains(point)
            ]
            if len(owners) != 1:
                raise RoutingError(
                    f"point {point} owned by {len(owners)} zones"
                )


def _try_merge(a: Zone, b: Zone) -> Zone | None:
    """The union of two zones if it is a hyper-rectangle, else ``None``."""
    differing = [
        i
        for i in range(a.dims)
        if (a.lows[i], a.highs[i]) != (b.lows[i], b.highs[i])
    ]
    if len(differing) != 1:
        return None
    d = differing[0]
    if a.highs[d] == b.lows[d]:
        lo, hi = a, b
    elif b.highs[d] == a.lows[d]:
        lo, hi = b, a
    else:
        return None
    return Zone(
        lo.lows,
        tuple(hi.highs[i] if i == d else lo.highs[i] for i in range(a.dims)),
    )
