"""Replication wrapper: k-way replica placement over any substrate.

The churn experiment (E14) shows that with single-replica storage a
crashing peer takes its leaf buckets with it.  Real deployments (e.g.
OpenDHT, which the paper's Bamboo testbed powers) replicate each value
on several peers.  This wrapper adds that behaviour above any
:class:`~repro.dht.base.DHT` — but *where* the copies live is decided
by a :class:`~repro.dht.kernel.PlacementPolicy`, resolved through the
substrate registry: successors on Chord/Koorde, the leaf set on Pastry,
zone neighbors on CAN, XOR-closest ids on Kademlia/Tapestry, a table
slice on OneHop.  Topology-aware placement is what makes failover
*work*: the backup holders are exactly the peers post-crash routing
converges on, and a degraded read can probe them directly
(:meth:`ReplicatedDHT.failover_get`) instead of reporting UNREACHABLE.

Overlays without kernel peer access fall back to the original salted
aliasing (:class:`~repro.dht.placement.HashSaltPolicy`): replica ``i``
is a routed put/get of ``key##r{i}``, hashing to an arbitrary peer.

Cost accounting is honest either way: a put writes every replica
(``k`` routed operations, so put amplification is visible), a get
probes copies in order until one answers, and every failover probe is
charged as a normal routed get plus a ``replica_probe_gets`` tick.
With ``n_replicas=1`` the wrapper is a pure pass-through — the policy
is never consulted and the operation stream is byte-identical to the
unwrapped substrate.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.dht.base import DHT
from repro.dht.kernel import DelegatingDHT, PlacementPolicy
from repro.dht.placement import HashSaltPolicy
from repro.errors import ConfigurationError

__all__ = ["ReplicatedDHT", "replica_layer"]


def replica_layer(dht: DHT) -> "ReplicatedDHT | None":
    """The replication layer inside a wrapper stack, if failover exists.

    Walks the stack outside-in and returns the first
    :class:`ReplicatedDHT` carrying more than one replica — the layer
    whose :meth:`~ReplicatedDHT.failover_get` a degraded read can
    consult — or ``None`` when the stack has no replicas to offer
    (including ``n_replicas=1``, where failover could only repeat the
    primary read).
    """
    layer: DHT | None = dht
    while layer is not None:
        if isinstance(layer, ReplicatedDHT) and layer.n_replicas > 1:
            return layer
        layer = getattr(layer, "inner", None)
    return None


class ReplicatedDHT(DelegatingDHT):
    """Store each value on ``n_replicas`` peers chosen by a placement
    policy.

    The primary copy always lives where the unwrapped substrate routes
    the key (replica 0 *is* the normal put), so with ``n_replicas=1``
    the wrapper changes nothing.  Backup copies go to the policy's
    peers via the kernel's direct peer access — or, under
    :class:`~repro.dht.placement.HashSaltPolicy`, to wherever the
    salted aliases ``key##r{i}`` hash.
    """

    def __init__(
        self,
        inner: DHT,
        n_replicas: int = 3,
        policy: PlacementPolicy | None = None,
    ) -> None:
        if n_replicas < 1:
            raise ConfigurationError(f"n_replicas must be >= 1: {n_replicas}")
        super().__init__(inner)
        self.n_replicas = n_replicas
        if policy is None:
            # Function-level import: the registry imports placement
            # policies for its default enrollments, so importing it at
            # module top would cycle.
            from repro.dht.registry import placement_for

            policy = placement_for(inner)
        elif not hasattr(policy, "substrate"):
            policy.bind(self._base_substrate(inner))
        self.policy = policy
        self._salted = isinstance(policy, HashSaltPolicy)
        #: Removes that observed disagreeing replica values (satellite
        #: counter mirrored into ``metrics.replica_divergences``).
        self.divergent_removes = 0

    @staticmethod
    def _base_substrate(dht: DHT) -> DHT:
        base = dht
        while (inner := getattr(base, "inner", None)) is not None:
            base = inner
        return base

    def _targets(self, key: str) -> list[int]:
        """Ordered replica holders for ``key`` (owner first, live)."""
        owner = self.inner.peer_of(key)
        return self.policy.replicas_for(key, owner, self.n_replicas)

    # ------------------------------------------------------------------
    # DHT interface
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        self.inner.put(key, value)
        if self.n_replicas == 1:
            return
        if self._salted:
            for i in range(1, self.n_replicas):
                self.inner.put(HashSaltPolicy.salted(key, i), value)
        else:
            for peer in self._targets(key)[1:]:
                self.inner.put_at(key, value, peer)

    def get(self, key: str) -> Any | None:
        value = self.inner.get(key)
        if value is not None or self.n_replicas == 1:
            return value
        # The primary read came back empty — a dropped reply or a key
        # that simply is not stored; only the replicas can tell.
        if self._salted:
            for i in range(1, self.n_replicas):
                self.metrics.record_replica_probe_get()
                value = self.inner.get(HashSaltPolicy.salted(key, i))
                if value is not None:
                    self.metrics.record_replica_failover()
                    return value
        else:
            for peer in self._targets(key)[1:]:
                self.metrics.record_replica_probe_get()
                value = self.inner.probe_get(key, peer)
                if value is not None:
                    self.metrics.record_replica_failover()
                    return value
        return None

    def remove(self, key: str) -> Any | None:
        if self._salted:
            removed = [self.inner.remove(key)] + [
                self.inner.remove(HashSaltPolicy.salted(key, i))
                for i in range(1, self.n_replicas)
            ]
        else:
            removed = [self.inner.remove(key)] + [
                self.inner.remove_at(key, peer)
                for peer in self._targets(key)[1:]
            ]
        present = [value for value in removed if value is not None]
        if present and any(value != present[0] for value in present[1:]):
            # Divergent replicas: surface the drift instead of silently
            # answering with whichever copy happened to come back first.
            self.divergent_removes += 1
            self.metrics.record_replica_divergence()
        if removed[0] is not None:
            return removed[0]  # the primary copy is authoritative
        return present[0] if present else None

    def local_write(self, key: str, value: Any) -> None:
        if self._salted:
            self.inner.local_write(key, value)
            for i in range(1, self.n_replicas):
                self.inner.local_write(HashSaltPolicy.salted(key, i), value)
        elif self.n_replicas == 1:
            self.inner.local_write(key, value)
        else:
            # Every holder — owner included — rewrites its own copy;
            # addressing them explicitly keeps replicas from shadowing
            # the owner in the kernel's holder scan.
            for peer in self._targets(key):
                self.inner.local_write_at(key, value, peer)

    # ------------------------------------------------------------------
    # Degraded-read failover (consulted by repro.core before declaring
    # a query UNREACHABLE; see docs/resilience.md)
    # ------------------------------------------------------------------

    def failover_get(self, key: str) -> Any | None:
        """Probe every replica holder of ``key`` directly.

        The degraded-read escape hatch: when the routed path has
        already failed, this asks each holder — primary included, since
        a direct probe is a different channel than the failed routed
        lookup — for its copy.  Every probe is charged as a routed get
        plus a ``replica_probe_gets`` tick; the *caller* records the
        failover once the rescued value actually rescues its query.
        Returns ``None`` when no live holder has the key.
        """
        if self.n_replicas == 1:
            return None
        if self._salted:
            for i in range(self.n_replicas):
                self.metrics.record_replica_probe_get()
                probe = key if i == 0 else HashSaltPolicy.salted(key, i)
                value = self.inner.get(probe)
                if value is not None:
                    return value
        else:
            for peer in self._targets(key):
                self.metrics.record_replica_probe_get()
                value = self.inner.probe_get(key, peer)
                if value is not None:
                    return value
        return None

    # ------------------------------------------------------------------
    # Introspection (delegates; replica copies are deduplicated)
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        value = self.inner.peek(key)
        if value is not None or not self._salted:
            return value
        for i in range(1, self.n_replicas):
            value = self.inner.peek(HashSaltPolicy.salted(key, i))
            if value is not None:
                return value
        return None

    def keys(self) -> Iterable[str]:
        # Placement-mode replicas repeat the key at several peers;
        # salted-mode replicas append ``##r{i}``.  Both collapse here.
        seen: set[str] = set()
        for key in self.inner.keys():
            base = key.split("##r")[0]
            if base not in seen:
                seen.add(base)
                yield base

    def replica_peers(self, key: str) -> list[int]:
        """Peers holding each replica of ``key``, owner first."""
        return self._targets(key)
