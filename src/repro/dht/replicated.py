"""Replication wrapper: k-way replica placement over any substrate.

The churn experiment (E14) shows that with single-replica storage a
crashing peer takes its leaf buckets with it.  Real deployments (e.g.
OpenDHT, which the paper's Bamboo testbed powers) replicate each value on
several peers; this wrapper adds that behaviour *above* any
:class:`~repro.dht.base.DHT`, staying inside the over-DHT philosophy —
no substrate modification, only salted keys.

Cost accounting is honest: a put writes every replica (``r`` routed
operations) and a get probes replicas in order until one answers, so the
availability/maintenance trade-off shows up directly in the metrics.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.dht.base import DHT
from repro.dht.kernel import DelegatingDHT
from repro.errors import ConfigurationError

__all__ = ["ReplicatedDHT"]


class ReplicatedDHT(DelegatingDHT):
    """Store each value under ``n_replicas`` salted keys of an inner DHT.

    Replica ``0`` uses the unmodified key (so peer placement of the
    primary matches the unwrapped substrate); replicas ``1 … r-1`` use
    ``key##i`` salts, which hash to unrelated peers.
    """

    def __init__(self, inner: DHT, n_replicas: int = 3) -> None:
        if n_replicas < 1:
            raise ConfigurationError(f"n_replicas must be >= 1: {n_replicas}")
        super().__init__(inner)
        self.n_replicas = n_replicas

    def _replica_keys(self, key: str) -> list[str]:
        return [key] + [f"{key}##r{i}" for i in range(1, self.n_replicas)]

    # ------------------------------------------------------------------
    # DHT interface
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        for replica_key in self._replica_keys(key):
            self.inner.put(replica_key, value)

    def get(self, key: str) -> Any | None:
        for replica_key in self._replica_keys(key):
            value = self.inner.get(replica_key)
            if value is not None:
                return value
        return None

    def remove(self, key: str) -> Any | None:
        removed = None
        for replica_key in self._replica_keys(key):
            value = self.inner.remove(replica_key)
            removed = removed if removed is not None else value
        return removed

    def local_write(self, key: str, value: Any) -> None:
        for replica_key in self._replica_keys(key):
            self.inner.local_write(replica_key, value)

    # ------------------------------------------------------------------
    # Introspection (delegates; replica salts are stripped)
    # ------------------------------------------------------------------

    def peek(self, key: str) -> Any | None:
        for replica_key in self._replica_keys(key):
            value = self.inner.peek(replica_key)
            if value is not None:
                return value
        return None

    def keys(self) -> Iterable[str]:
        seen: set[str] = set()
        for key in self.inner.keys():
            base = key.split("##r")[0]
            if base not in seen:
                seen.add(base)
                yield base

    def replica_peers(self, key: str) -> list[int]:
        """Peers holding each replica of ``key``."""
        return [self.inner.peer_of(rk) for rk in self._replica_keys(key)]
