"""Churn driver: a Poisson join/leave process over a Chord overlay.

Models the peer dynamism the paper motivates LHT with (§1): peers arrive
and depart continuously while the index keeps serving queries.  The driver
schedules joins, graceful leaves, and crashes through the discrete-event
simulator and interleaves Chord's periodic stabilization, so the overlay
is repaired the way a deployed ring would be.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.chord import ChordDHT
from repro.errors import ConfigurationError
from repro.sim.events import Simulator
from repro.sim.trace import TraceLog

__all__ = ["ChurnConfig", "ChurnDriver"]


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Churn process parameters.

    Attributes:
        join_rate: Poisson rate of node arrivals (events per sim second).
        leave_rate: Poisson rate of departures.
        crash_fraction: Fraction of departures that are crashes (no key
            handoff) rather than graceful leaves.
        stabilize_period: Period of each node's stabilization tick.
        min_peers: Floor below which departures are suppressed.
    """

    join_rate: float = 0.1
    leave_rate: float = 0.1
    crash_fraction: float = 0.5
    stabilize_period: float = 1.0
    min_peers: int = 4

    def __post_init__(self) -> None:
        if self.join_rate < 0 or self.leave_rate < 0:
            raise ConfigurationError("churn rates must be non-negative")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ConfigurationError("crash_fraction must be in [0, 1]")


class ChurnDriver:
    """Drives joins/leaves/crashes and stabilization on a Chord overlay."""

    def __init__(
        self,
        dht: ChordDHT,
        simulator: Simulator,
        rng: np.random.Generator,
        config: ChurnConfig | None = None,
        trace: TraceLog | None = None,
    ) -> None:
        self.dht = dht
        self.simulator = simulator
        self.rng = rng
        self.config = config or ChurnConfig()
        # Explicit None check: an empty TraceLog is falsy (it has __len__).
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.joins = 0
        self.leaves = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def start(self, until: float) -> None:
        """Schedule the churn process and stabilization up to ``until``."""
        if self.config.join_rate > 0:
            self._schedule_next_join(until)
        if self.config.leave_rate > 0:
            self._schedule_next_leave(until)
        self.simulator.schedule_every(
            self.config.stabilize_period, self._stabilize_tick, until=until
        )

    def _schedule_next_join(self, until: float) -> None:
        delay = float(self.rng.exponential(1.0 / self.config.join_rate))
        when = self.simulator.now + delay
        if when <= until:
            self.simulator.schedule_at(when, lambda: self._join(until))

    def _schedule_next_leave(self, until: float) -> None:
        delay = float(self.rng.exponential(1.0 / self.config.leave_rate))
        when = self.simulator.now + delay
        if when <= until:
            self.simulator.schedule_at(when, lambda: self._leave(until))

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def _join(self, until: float) -> None:
        node_id = self.dht.join()
        self.joins += 1
        self.trace.record(self.simulator.now, "join", node=node_id)
        self._schedule_next_join(until)

    def _leave(self, until: float) -> None:
        if self.dht.n_peers > self.config.min_peers:
            ids = self.dht.node_ids
            victim = ids[int(self.rng.integers(0, len(ids)))]
            if float(self.rng.random()) < self.config.crash_fraction:
                self.dht.fail(victim)
                self.crashes += 1
                self.trace.record(self.simulator.now, "crash", node=victim)
            else:
                self.dht.leave(victim, graceful=True)
                self.leaves += 1
                self.trace.record(self.simulator.now, "leave", node=victim)
        self._schedule_next_leave(until)

    def _stabilize_tick(self) -> None:
        self.dht.stabilize_all(rounds=1, fingers_per_round=2)
