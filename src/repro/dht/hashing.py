"""Consistent hashing primitives (Karger et al., paper §1).

All substrates identify peers and keys on a ``2**bits`` circular identifier
space using SHA-1, exactly as Chord/Pastry/Bamboo do.  Helper functions
implement modular ring arithmetic.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "hash_key",
    "ring_distance",
    "in_open_interval",
    "in_half_open_interval",
]

#: Identifier width in bits (SHA-1, as in Chord and Bamboo).
ID_BITS = 160

#: Size of the identifier space.
ID_SPACE = 1 << ID_BITS


@lru_cache(maxsize=1 << 17)
def _digest_of(key: str) -> int:
    """Full 160-bit SHA-1 digest of ``key``, memoized.

    Coalesced ``multi_get``/``multi_put`` rounds and the LHT lookup's
    binary search hash the same name-class keys over and over; caching
    the full-width digest lets every truncation width share one SHA-1
    evaluation.  SHA-1 is a pure function of the key, so memoization
    cannot change any result.
    """
    return int.from_bytes(hashlib.sha1(key.encode()).digest(), "big")


def hash_key(key: str, bits: int = ID_BITS) -> int:
    """SHA-1 hash of a string key, truncated to ``bits`` bits."""
    value = _digest_of(key)
    return value >> (160 - bits) if bits < 160 else value


def ring_distance(a: int, b: int, space: int = ID_SPACE) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) % space


def in_open_interval(x: int, lo: int, hi: int, space: int = ID_SPACE) -> bool:
    """Whether ``x ∈ (lo, hi)`` on the ring (both endpoints excluded).

    An empty interval (``lo == hi``) wraps the whole ring, matching Chord's
    convention for a ring with a single node.
    """
    return ring_distance(lo, x, space) != 0 and ring_distance(lo, x, space) < (
        ring_distance(lo, hi, space) or space
    )


def in_half_open_interval(x: int, lo: int, hi: int, space: int = ID_SPACE) -> bool:
    """Whether ``x ∈ (lo, hi]`` on the ring."""
    if lo == hi:
        return True
    return 0 < ring_distance(lo, x, space) <= ring_distance(lo, hi, space)
