"""Chord DHT substrate (Stoica et al., SIGCOMM 2001).

A faithful single-process simulation of the Chord ring the paper's
"generic DHT" abstracts over: ``m``-bit identifiers, finger tables,
successor lists, predecessor pointers, iterative routing with
closest-preceding-finger forwarding, node join/leave with key transfer,
and the periodic ``stabilize``/``fix_fingers`` protocol that repairs the
ring under churn.

Routing is executed synchronously (a routed operation returns its result
and hop count immediately); the *maintenance* protocol is driven either
manually (:meth:`ChordDHT.stabilize_all`) or by the discrete-event churn
driver in :mod:`repro.dht.churn`.

Storage, metrics charging, and the array-backed sorted-ring index live
in the shared peer-store kernel (:mod:`repro.dht.kernel`); this module
contains only what is Chord: the routing geometry and the
membership/stabilization protocol.  Join and leave cost one incremental
index splice (``bisect.insort`` / positional delete) in the kernel, not
a full ring re-sort.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dht.hashing import hash_key, in_half_open_interval, in_open_interval
from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError, EmptyOverlayError, RoutingError

__all__ = ["ChordDHT", "ChordNode"]


@dataclass(slots=True)
class ChordNode:
    """One Chord peer: identifier, pointers, finger table, and key store."""

    id: int
    successors: list[int] = field(default_factory=list)
    predecessor: int | None = None
    fingers: list[int | None] = field(default_factory=list)
    store: dict[str, Any] = field(default_factory=dict)
    _next_finger: int = 0

    @property
    def successor(self) -> int | None:
        """First entry of the successor list (may be stale under churn)."""
        return self.successors[0] if self.successors else None


class ChordDHT(SubstrateBase):
    """A simulated Chord overlay implementing the generic DHT interface.

    Args:
        n_peers: Initial ring size (peer ids drawn uniformly at random).
        seed: RNG seed for peer ids and gateway selection.
        id_bits: Identifier width ``m`` (ring size ``2**m``).
        successor_list_len: Length of each node's successor list (fault
            tolerance under churn).
        metrics: Optional shared recorder.

    The initial ring is built with exact pointers; subsequent joins and
    leaves go through the real protocol (route-to-successor, key transfer,
    stabilization).
    """

    MAX_ROUTE_HOPS = 256

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        id_bits: int = 32,
        successor_list_len: int = 4,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        if not 8 <= id_bits <= 160:
            raise ConfigurationError(f"id_bits must be in [8, 160]: {id_bits}")
        self.id_bits = id_bits
        self.space = 1 << id_bits
        self.successor_list_len = successor_list_len
        self._rng = np.random.default_rng(seed)
        self._nodes: dict[int, ChordNode] = {}
        self.keys_transferred = 0
        for node_id in self._draw_ids(n_peers):
            self._register(ChordNode(id=node_id))
        self.build_ring()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _register(self, node: ChordNode) -> None:
        """Add a node to the topology and its store to the kernel."""
        self._nodes[node.id] = node
        self.peers.add_peer(node.id, node.store)

    def _unregister(self, node_id: int) -> None:
        del self._nodes[node_id]
        self.peers.remove_peer(node_id)

    def _draw_ids(self, count: int) -> list[int]:
        ids: set[int] = set(self._nodes)
        fresh: list[int] = []
        while len(fresh) < count:
            candidate = int(self._rng.integers(0, self.space))
            if candidate not in ids:
                ids.add(candidate)
                fresh.append(candidate)
        return fresh

    def build_ring(self) -> None:
        """(Re)compute exact successors, predecessors and fingers globally.

        Used for initial construction and by tests that need a converged
        ring without running stabilization rounds.
        """
        ordered = self.peers.sorted_ids()
        n = len(ordered)
        for idx, node_id in enumerate(ordered):
            node = self._nodes[node_id]
            node.successors = [
                ordered[(idx + k + 1) % n]
                for k in range(min(self.successor_list_len, n))
            ]
            node.predecessor = ordered[(idx - 1) % n]
            node.fingers = [
                self._exact_successor(ordered, (node_id + (1 << i)) % self.space)
                for i in range(self.id_bits)
            ]

    @staticmethod
    def _exact_successor(ordered: list[int], target: int) -> int:
        idx = bisect.bisect_left(ordered, target)
        return ordered[idx % len(ordered)]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _alive(self, node_id: int | None) -> bool:
        return node_id is not None and node_id in self._nodes

    def _live_successor(self, node: ChordNode) -> int:
        """First alive successor-list entry; prunes dead ones."""
        node.successors = [s for s in node.successors if self._alive(s)]
        if not node.successors:
            if len(self._nodes) == 1:
                return node.id
            raise RoutingError(f"node {node.id} lost its entire successor list")
        return node.successors[0]

    def _closest_preceding(self, node: ChordNode, key_id: int) -> int:
        """Best alive finger strictly between ``node`` and ``key_id``."""
        for finger in reversed(node.fingers):
            if (
                self._alive(finger)
                and in_open_interval(finger, node.id, key_id, self.space)
            ):
                return finger  # type: ignore[return-value]
        for succ in reversed(node.successors):
            if self._alive(succ) and in_open_interval(
                succ, node.id, key_id, self.space
            ):
                return succ
        return node.id

    def find_successor(self, start: int, key_id: int) -> tuple[int, int]:
        """Iteratively route from ``start`` to the successor of ``key_id``.

        Returns ``(responsible_node_id, hop_count)``.
        """
        current = start
        hops = 0
        for _ in range(self.MAX_ROUTE_HOPS):
            node = self._nodes[current]
            succ = self._live_successor(node)
            hops += 1
            if succ == current or in_half_open_interval(
                key_id, current, succ, self.space
            ):
                return succ, hops
            nxt = self._closest_preceding(node, key_id)
            current = succ if nxt == current else nxt
        raise RoutingError(f"routing to {key_id} exceeded {self.MAX_ROUTE_HOPS} hops")

    def _gateway(self) -> int:
        """A random live node to originate a routed operation from."""
        if not self._nodes:
            raise EmptyOverlayError("no live peers")
        ids = self.peers.sorted_ids()
        return ids[int(self._rng.integers(0, len(ids)))]

    def route(self, key: str) -> tuple[int, int]:
        kid = hash_key(key, self.id_bits)
        return self.find_successor(self._gateway(), kid)

    def peer_of(self, key: str) -> int:
        return self.peers.successor_of(hash_key(key, self.id_bits))

    # ------------------------------------------------------------------
    # Membership protocol
    # ------------------------------------------------------------------

    def join(self, node_id: int | None = None) -> int:
        """Join a new node through the real protocol; returns its id.

        The joiner routes to its successor, splices in, and takes over the
        keys it is now responsible for.
        """
        if node_id is None:
            node_id = self._draw_ids(1)[0]
        if node_id in self._nodes:
            raise ConfigurationError(f"node id already present: {node_id}")
        succ_id, _ = self.find_successor(self._gateway(), node_id)
        succ = self._nodes[succ_id]
        node = ChordNode(id=node_id)
        node.successors = ([succ_id] + succ.successors)[: self.successor_list_len]
        node.fingers = [succ_id] * self.id_bits
        self._register(node)

        # Take over keys in (predecessor(succ), node_id].
        pred = succ.predecessor if self._alive(succ.predecessor) else succ_id
        moved = [
            k
            for k in succ.store
            if in_half_open_interval(
                hash_key(k, self.id_bits), pred, node_id, self.space
            )
        ]
        for k in moved:
            node.store[k] = succ.store.pop(k)
        self.keys_transferred += len(moved)

        # Splice pointers immediately (stabilization would also converge).
        node.predecessor = pred if pred != succ_id else succ.predecessor
        succ.predecessor = node_id
        if self._alive(node.predecessor):
            pred_node = self._nodes[node.predecessor]  # type: ignore[index]
            pred_node.successors = ([node_id] + pred_node.successors)[
                : self.successor_list_len
            ]
        return node_id

    def leave(self, node_id: int, graceful: bool = True) -> None:
        """Remove a node; graceful leaves hand their keys to the successor."""
        node = self._nodes.get(node_id)
        if node is None:
            return
        if len(self._nodes) == 1:
            raise EmptyOverlayError("cannot remove the last peer")
        if graceful:
            self._unregister(node_id)  # successor search must skip the leaver
            succ_id = next((s for s in node.successors if self._alive(s)), None)
            if succ_id is None:
                succ_id = self.peers.successor_of(node_id)
            succ = self._nodes[succ_id]
            succ.store.update(node.store)
            self.keys_transferred += len(node.store)
            if self._alive(node.predecessor):
                pred = self._nodes[node.predecessor]  # type: ignore[index]
                pred.successors = [s for s in pred.successors if s != node_id]
                pred.successors = ([succ_id] + pred.successors)[
                    : self.successor_list_len
                ]
            if succ.predecessor == node_id:
                succ.predecessor = node.predecessor
        else:
            # Crash: keys stored there are lost until re-published.
            self._unregister(node_id)

    def fail(self, node_id: int) -> None:
        """Crash a node without key handoff (shorthand for ungraceful leave)."""
        self.leave(node_id, graceful=False)

    # ------------------------------------------------------------------
    # Stabilization (Chord's periodic maintenance)
    # ------------------------------------------------------------------

    def stabilize(self, node_id: int) -> None:
        """One stabilization round for one node (successor + notify)."""
        node = self._nodes.get(node_id)
        if node is None:
            return
        succ_id = self._live_successor(node)
        succ = self._nodes[succ_id]
        candidate = succ.predecessor
        if (
            self._alive(candidate)
            and candidate != node_id
            and in_open_interval(candidate, node_id, succ_id, self.space)  # type: ignore[arg-type]
        ):
            node.successors = ([candidate] + node.successors)[  # type: ignore[list-item]
                : self.successor_list_len
            ]
            succ_id = candidate  # type: ignore[assignment]
            succ = self._nodes[succ_id]
        # notify
        if (
            succ.predecessor is None
            or not self._alive(succ.predecessor)
            or in_open_interval(node_id, succ.predecessor, succ_id, self.space)
        ):
            succ.predecessor = node_id
        # refresh successor list from the (possibly new) successor
        node.successors = ([succ_id] + [s for s in succ.successors if s != node_id])[
            : self.successor_list_len
        ]

    def fix_fingers(self, node_id: int, count: int = 1) -> None:
        """Refresh ``count`` finger-table entries of a node via routing."""
        node = self._nodes.get(node_id)
        if node is None:
            return
        if not node.fingers:
            node.fingers = [None] * self.id_bits
        for _ in range(count):
            i = node._next_finger
            node._next_finger = (node._next_finger + 1) % self.id_bits
            target = (node.id + (1 << i)) % self.space
            try:
                owner, _ = self.find_successor(node.id, target)
            except RoutingError:
                continue
            node.fingers[i] = owner

    def stabilize_all(self, rounds: int = 1, fingers_per_round: int = 4) -> None:
        """Run stabilization + finger repair for every node, ``rounds`` times."""
        for _ in range(rounds):
            for node_id in sorted(self._nodes):
                if node_id in self._nodes:
                    self.stabilize(node_id)
                    self.fix_fingers(node_id, fingers_per_round)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def check_ring(self) -> None:
        """Assert the successor pointers form a single cycle over all nodes."""
        if not self._nodes:
            raise EmptyOverlayError("empty overlay")
        start = min(self._nodes)
        seen = {start}
        current = start
        for _ in range(len(self._nodes)):
            current = self._live_successor(self._nodes[current])
            if current == start:
                break
            if current in seen:
                raise RoutingError(f"successor cycle does not include all nodes")
            seen.add(current)
        if len(seen) != len(self._nodes):
            raise RoutingError(
                f"ring covers {len(seen)} of {len(self._nodes)} nodes"
            )
