"""Fault-injection wrapper: probabilistic operation failures.

Over-DHT indexes interpret a failed DHT-get *structurally* (Alg. 2 treats
it as "this internal node does not exist"), so transient routing failures
are a genuine hazard for the whole scheme family.  This wrapper makes
that hazard testable: it drops a configurable fraction of gets (returning
``None`` as a lossy network would) and optionally fails puts and removes.

Failure semantics, per operation:

* ``get`` — a dropped get returns ``None`` silently (the reply was lost;
  the caller cannot distinguish it from a genuinely absent key).  Charged
  as a failed get in the shared :class:`~repro.dht.metrics.MetricsRecorder`.
* ``put`` / ``remove`` — an injected failure raises the typed
  :class:`repro.errors.DHTError` (never a bare exception) and is charged
  as a ``failed_puts`` / ``failed_removes`` metric, so lost mutations are
  counted rather than silently vanishing from the cost ledgers.

The failure-injection test suite uses it to pin down the safety
contract: under dropped gets an index operation may return an *explicit*
miss, raise, or flag itself degraded, but it must never return wrong
data silently.  The resilience layer (:mod:`repro.resilience`) stacks on
top to recover from these injected faults.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dht.base import DHT
from repro.dht.kernel import DelegatingDHT
from repro.errors import ConfigurationError, DHTError

__all__ = ["FaultyDHT"]


class FaultyDHT(DelegatingDHT):
    """Wrap a substrate with seeded, probabilistic operation failures."""

    def __init__(
        self,
        inner: DHT,
        get_drop_rate: float = 0.0,
        put_fail_rate: float = 0.0,
        remove_fail_rate: float = 0.0,
        seed: int = 0,
        probe_drop_rate: float | None = None,
    ) -> None:
        rates = (get_drop_rate, put_fail_rate, remove_fail_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ConfigurationError("failure rates must be in [0, 1]")
        if probe_drop_rate is not None and not 0.0 <= probe_drop_rate <= 1.0:
            raise ConfigurationError("failure rates must be in [0, 1]")
        super().__init__(inner)
        self.get_drop_rate = get_drop_rate
        self.put_fail_rate = put_fail_rate
        self.remove_fail_rate = remove_fail_rate
        #: Drop rate for direct replica probes; ``None`` means probes
        #: share ``get_drop_rate`` (they are gets on the same lossy
        #: network).  Setting 0.0 makes failover deterministic in
        #: tests: every routed get drops, every probe answers.
        self.probe_drop_rate = probe_drop_rate
        self._rng = np.random.default_rng(seed)
        self.dropped_gets = 0
        self.failed_puts = 0
        self.failed_removes = 0

    # ------------------------------------------------------------------
    # DHT interface
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        if self.put_fail_rate and self._rng.random() < self.put_fail_rate:
            self.failed_puts += 1
            # Charge the lookup: the request was routed, the store failed.
            self.metrics.record_failed_put(1)
            raise DHTError(f"injected put failure for {key!r}")
        self.inner.put(key, value)

    def get(self, key: str) -> Any | None:
        if self.get_drop_rate and self._rng.random() < self.get_drop_rate:
            self.dropped_gets += 1
            # Charge the lookup: the network work happened, the reply
            # was lost.
            self.metrics.record_get(1, found=False)
            return None
        return self.inner.get(key)

    def remove(self, key: str) -> Any | None:
        if self.remove_fail_rate and self._rng.random() < self.remove_fail_rate:
            self.failed_removes += 1
            self.metrics.record_failed_remove(1)
            raise DHTError(f"injected remove failure for {key!r}")
        return self.inner.remove(key)

    # ------------------------------------------------------------------
    # Direct peer access (replica traffic crosses the same lossy network)
    # ------------------------------------------------------------------

    def probe_get(self, key: str, peer_id: int) -> Any | None:
        rate = (
            self.get_drop_rate
            if self.probe_drop_rate is None
            else self.probe_drop_rate
        )
        if rate and self._rng.random() < rate:
            self.dropped_gets += 1
            self.metrics.record_get(1, found=False)
            return None
        return self.inner.probe_get(key, peer_id)

    def put_at(self, key: str, value: Any, peer_id: int) -> None:
        if self.put_fail_rate and self._rng.random() < self.put_fail_rate:
            self.failed_puts += 1
            self.metrics.record_failed_put(1)
            raise DHTError(
                f"injected put failure for {key!r} at peer {peer_id}"
            )
        self.inner.put_at(key, value, peer_id)

    def remove_at(self, key: str, peer_id: int) -> Any | None:
        if self.remove_fail_rate and self._rng.random() < self.remove_fail_rate:
            self.failed_removes += 1
            self.metrics.record_failed_remove(1)
            raise DHTError(
                f"injected remove failure for {key!r} at peer {peer_id}"
            )
        return self.inner.remove_at(key, peer_id)

    # ``local_write``/``local_write_at`` and all introspection delegate
    # via DelegatingDHT: fault injection models the routed network path
    # only.
