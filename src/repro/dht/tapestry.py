"""Tapestry DHT substrate (Zhao, Kubiatowicz & Joseph, 2002).

The fourth substrate the paper's §1 names.  Like Pastry, Tapestry routes
by resolving one identifier digit per hop through per-level neighbor
tables; its distinguishing mechanism is **surrogate routing**: when the
exact next-digit entry is missing, the message deterministically takes
the next existing digit at that level (wrapping), so every identifier
resolves to a unique *surrogate root* without leaf sets or numeric
distance.  A key is stored at its surrogate root.

Built statically from global membership, like the other
prefix/XOR-routing substrates; Chord and CAN are the dynamic-membership
overlays in this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dht.hashing import hash_key
from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError, RoutingError

__all__ = ["TapestryDHT", "TapestryNode"]


@dataclass(slots=True)
class TapestryNode:
    """One Tapestry peer: identifier, per-level routing table, store.

    ``table[level][digit]`` holds a node whose identifier matches this
    node's first ``level`` digits and continues with ``digit`` — or
    ``None`` when no such node exists (surrogate routing skips it).
    """

    id: int
    table: list[list[int | None]] = field(default_factory=list)
    store: dict[str, Any] = field(default_factory=dict)


class TapestryDHT(SubstrateBase):
    """A simulated Tapestry overlay implementing the generic DHT API."""

    #: Audit note (cf. the kernel's owner-first default): surrogate
    #: resolution is O(digits · N) here — *more* than the O(N) holder
    #: scan — so the scan-first read order is kept deliberately.
    OWNER_FIRST_READS = False

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        id_bits: int = 32,
        b: int = 4,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        if id_bits % b != 0:
            raise ConfigurationError(
                f"id_bits ({id_bits}) must be a multiple of b ({b})"
            )
        self.id_bits = id_bits
        self.b = b
        self.n_digits = id_bits // b
        self.digit_base = 1 << b
        self._rng = np.random.default_rng(seed)
        ids: set[int] = set()
        while len(ids) < n_peers:
            ids.add(int(self._rng.integers(0, 1 << id_bits)))
        self._nodes: dict[int, TapestryNode] = {}
        for nid in ids:
            node = TapestryNode(id=nid)
            self._nodes[nid] = node
            self.peers.add_peer(nid, node.store)
        self._build_tables()

    # ------------------------------------------------------------------
    # Digits and surrogate resolution
    # ------------------------------------------------------------------

    def _digit(self, node_id: int, position: int) -> int:
        shift = self.id_bits - (position + 1) * self.b
        return (node_id >> shift) & (self.digit_base - 1)

    def _shared_prefix_len(self, a: int, c: int) -> int:
        for pos in range(self.n_digits):
            if self._digit(a, pos) != self._digit(c, pos):
                return pos
        return self.n_digits

    def _build_tables(self) -> None:
        ordered = sorted(self._nodes)
        for node in self._nodes.values():
            node.table = [
                [None] * self.digit_base for _ in range(self.n_digits)
            ]
            for other in ordered:
                if other == node.id:
                    continue
                level = self._shared_prefix_len(node.id, other)
                if level >= self.n_digits:
                    continue
                digit = self._digit(other, level)
                current = node.table[level][digit]
                # Prefer the entry whose remaining digits are smallest —
                # deterministic, so all nodes agree on surrogate roots.
                if current is None or other < current:
                    node.table[level][digit] = other

    def surrogate_root(self, key_id: int) -> int:
        """The unique node that owns ``key_id`` under surrogate routing.

        Resolves digits left to right over the *global* membership: at
        each level take the smallest present digit ≥ the key's digit
        (wrapping to 0), among nodes matching the prefix chosen so far.
        """
        candidates = list(self.peers.sorted_ids())
        prefix_choice: list[int] = []
        for level in range(self.n_digits):
            present = sorted(
                {self._digit(nid, level) for nid in candidates}
            )
            want = self._digit(key_id, level)
            chosen = next((d for d in present if d >= want), present[0])
            candidates = [
                nid for nid in candidates if self._digit(nid, level) == chosen
            ]
            prefix_choice.append(chosen)
            if len(candidates) == 1:
                return candidates[0]
        return candidates[0]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route_id(self, start: int, key_id: int) -> tuple[int, int]:
        """Digit-by-digit forwarding with surrogate fallback."""
        current = start
        hops = 0
        for level in range(self.n_digits):
            node = self._nodes[current]
            if self._digit(current, level) == self._digit(key_id, level):
                continue  # this digit already matches; resolve the next
            row = node.table[level]
            want = self._digit(key_id, level)
            nxt = None
            for offset in range(self.digit_base):
                candidate_digit = (want + offset) % self.digit_base
                if candidate_digit == self._digit(current, level):
                    # staying at the current node resolves this level
                    nxt = current
                    break
                if row[candidate_digit] is not None:
                    nxt = row[candidate_digit]
                    break
            if nxt is None or nxt == current:
                continue  # surrogate: keep our own digit at this level
            current = nxt
            hops += 1
        return current, hops

    def route(self, key: str) -> tuple[int, int]:
        key_id = hash_key(key, self.id_bits)
        ids = self.peers.sorted_ids()
        start = ids[int(self._rng.integers(0, len(ids)))]
        owner, hops = self.route_id(start, key_id)
        return owner, max(hops, 1)

    # ------------------------------------------------------------------
    # Placement oracle
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> int:
        return self.surrogate_root(hash_key(key, self.id_bits))
