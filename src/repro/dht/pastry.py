"""Pastry DHT substrate (Rowstron & Druschel, Middleware 2001).

Prefix routing over base-``2**b`` digit identifiers with a routing table
(one row per shared-prefix length, one column per next digit) and a leaf
set of the ``L`` numerically closest peers.  Routing forwards to a peer
whose identifier shares a strictly longer prefix with the key — or, when
the key falls inside the leaf-set range, directly to the numerically
closest leaf — giving ``O(log_{2^b} N)`` hops.

Like :class:`~repro.dht.kademlia.KademliaDHT`, the overlay is built
statically from global membership (a converged network); Chord is the
substrate used for dynamic churn studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.dht.hashing import hash_key
from repro.dht.kernel import SubstrateBase
from repro.dht.metrics import MetricsRecorder
from repro.errors import ConfigurationError, RoutingError

__all__ = ["PastryDHT", "PastryNode"]


@dataclass(slots=True)
class PastryNode:
    """One Pastry peer: identifier, routing table, leaf set, key store."""

    id: int
    routing_table: list[list[int | None]] = field(default_factory=list)
    leaf_set: list[int] = field(default_factory=list)
    store: dict[str, Any] = field(default_factory=dict)


class PastryDHT(SubstrateBase):
    """A simulated Pastry overlay implementing the generic DHT interface."""

    MAX_ROUTE_HOPS = 128

    def __init__(
        self,
        n_peers: int = 64,
        seed: int = 0,
        id_bits: int = 32,
        b: int = 4,
        leaf_set_size: int = 8,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        super().__init__(metrics)
        if n_peers < 1:
            raise ConfigurationError(f"n_peers must be >= 1: {n_peers}")
        if id_bits % b != 0:
            raise ConfigurationError(f"id_bits ({id_bits}) must be a multiple of b ({b})")
        self.id_bits = id_bits
        self.b = b
        self.n_digits = id_bits // b
        self.digit_base = 1 << b
        self.leaf_set_size = leaf_set_size
        self._rng = np.random.default_rng(seed)
        ids: set[int] = set()
        while len(ids) < n_peers:
            ids.add(int(self._rng.integers(0, 1 << id_bits)))
        self._nodes: dict[int, PastryNode] = {}
        for nid in ids:
            node = PastryNode(id=nid)
            self._nodes[nid] = node
            self.peers.add_peer(nid, node.store)
        self._build_tables()

    # ------------------------------------------------------------------
    # Identifier digit helpers
    # ------------------------------------------------------------------

    def _digit(self, node_id: int, position: int) -> int:
        """The ``position``-th digit (most significant first)."""
        shift = self.id_bits - (position + 1) * self.b
        return (node_id >> shift) & (self.digit_base - 1)

    def shared_prefix_len(self, a: int, c: int) -> int:
        """Number of leading digits ``a`` and ``c`` share."""
        for pos in range(self.n_digits):
            if self._digit(a, pos) != self._digit(c, pos):
                return pos
        return self.n_digits

    # ------------------------------------------------------------------
    # Static overlay construction
    # ------------------------------------------------------------------

    def _build_tables(self) -> None:
        ordered = sorted(self._nodes)
        n = len(ordered)
        index_of = {nid: i for i, nid in enumerate(ordered)}
        half = self.leaf_set_size // 2
        for node in self._nodes.values():
            i = index_of[node.id]
            node.leaf_set = sorted(
                {
                    ordered[(i + off) % n]
                    for off in range(-half, half + 1)
                    if off != 0 and n > 1
                }
            )
            node.routing_table = [
                [None] * self.digit_base for _ in range(self.n_digits)
            ]
            for other in ordered:
                if other == node.id:
                    continue
                row = self.shared_prefix_len(node.id, other)
                if row >= self.n_digits:
                    continue
                col = self._digit(other, row)
                if node.routing_table[row][col] is None:
                    node.routing_table[row][col] = other

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @staticmethod
    def _circular_diff(a: int, c: int, space: int) -> int:
        d = abs(a - c)
        return min(d, space - d)

    def _numerically_closest(self, candidates: Iterable[int], key_id: int) -> int:
        space = 1 << self.id_bits
        return min(candidates, key=lambda c: (self._circular_diff(c, key_id, space), c))

    def route_id(self, start: int, key_id: int) -> tuple[int, int]:
        """Route from ``start`` towards ``key_id``; returns (owner, hops)."""
        current = start
        hops = 0
        space = 1 << self.id_bits
        for _ in range(self.MAX_ROUTE_HOPS):
            node = self._nodes[current]
            candidates = set(node.leaf_set) | {current}
            # Leaf-set shortcut: if the key falls within leaf-set coverage,
            # deliver to the numerically closest member.
            closest = self._numerically_closest(candidates, key_id)
            if closest == current:
                return current, hops
            row = self.shared_prefix_len(current, key_id)
            nxt: int | None = None
            if row < self.n_digits:
                nxt = node.routing_table[row][self._digit(key_id, row)]
            if nxt is None:
                # Rare case: fall back to any known node strictly closer.
                better = [
                    c
                    for c in candidates
                    if self._circular_diff(c, key_id, space)
                    < self._circular_diff(current, key_id, space)
                ]
                if not better:
                    return current, hops
                nxt = self._numerically_closest(better, key_id)
            current = nxt
            hops += 1
        raise RoutingError(f"Pastry routing exceeded {self.MAX_ROUTE_HOPS} hops")

    def route(self, key: str) -> tuple[int, int]:
        key_id = hash_key(key, self.id_bits)
        ids = self.peers.sorted_ids()
        start = ids[int(self._rng.integers(0, len(ids)))]
        owner, hops = self.route_id(start, key_id)
        return owner, max(hops, 1)

    # ------------------------------------------------------------------
    # Placement oracle
    # ------------------------------------------------------------------

    def peer_of(self, key: str) -> int:
        key_id = hash_key(key, self.id_bits)
        return self._numerically_closest(self._nodes, key_id)
