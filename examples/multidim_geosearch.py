#!/usr/bin/env python3
"""Geospatial search over LHT via a space-filling curve (footnote 1).

The paper notes that a one-dimensional over-DHT index can host
multi-dimensional data through an SFC.  This example indexes 2-D
points of interest (longitude/latitude normalized to the unit square)
under their z-order keys and answers bounding-box queries with a handful
of LHT range queries.

Run:
    python examples/multidim_geosearch.py
"""

from __future__ import annotations

import numpy as np

from repro import LocalDHT, MultiDimIndex
from repro.multidim import decompose_rectangle, zorder_encode

CITIES = {
    "cafe": 4000,
    "fuel": 1500,
    "museum": 500,
}


def main() -> None:
    rng = np.random.default_rng(11)
    index = MultiDimIndex(LocalDHT(n_peers=64, seed=0), n_dims=2, bits_per_dim=12)

    print("indexing points of interest ...")
    total = 0
    for kind, count in CITIES.items():
        # clustered around a few town centers, like real POI data
        centers = rng.random((6, 2))
        for _ in range(count):
            center = centers[rng.integers(0, len(centers))]
            point = np.clip(center + rng.normal(0, 0.05, 2), 0, 1 - 1e-9)
            index.insert((float(point[0]), float(point[1])), kind)
            total += 1
    print(f"  {total} points in {index.index.leaf_count} leaf buckets\n")

    # A bounding-box query: "everything in this map tile".
    lows, highs = (0.40, 0.40), (0.55, 0.50)
    cells = decompose_rectangle(lows, highs, bits_per_dim=12)
    print(f"bounding box {lows} - {highs}")
    print(f"  decomposes into {len(cells)} z-order key ranges")

    result = index.rectangle_query(lows, highs)
    kinds: dict[str, int] = {}
    for _, kind in result.points:
        kinds[kind] = kinds.get(kind, 0) + 1
    print(f"  {len(result.points)} points found: "
          + ", ".join(f"{v} {k}s" for k, v in sorted(kinds.items())))
    print(f"  cost: {result.dht_lookups} DHT-lookups over "
          f"{result.component_ranges} component range queries, "
          f"{result.parallel_steps} parallel steps\n")

    # Show the curve keeping nearby points nearby.
    a = zorder_encode((0.41, 0.41), 12)
    b = zorder_encode((0.42, 0.42), 12)
    c = zorder_encode((0.90, 0.10), 12)
    print("z-order locality: neighbors map to nearby keys")
    print(f"  (0.41, 0.41) -> {a:.6f}")
    print(f"  (0.42, 0.42) -> {b:.6f}   (|delta| = {abs(b - a):.6f})")
    print(f"  (0.90, 0.10) -> {c:.6f}   (far away, |delta| = {abs(c - a):.6f})")


if __name__ == "__main__":
    main()
