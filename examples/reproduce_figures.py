#!/usr/bin/env python3
"""One-command reproduction: regenerate paper figures into a report.

Runs a fast subset of the paper's experiments (Fig. 6b, Fig. 7, Eq. 3,
Theorem 3) at CI scale, saves the JSON artefacts, and renders a single
Markdown report — the same pipeline `lht-experiments` + the report tool
use for the full paper-scale record in EXPERIMENTS.md.

Run:
    python examples/reproduce_figures.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.report import load_directory, to_markdown
from repro.experiments.runner import run_experiments


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results/demo")
    print(f"regenerating Fig. 6b / Fig. 7 / Eq. 3 / Thm. 3 into {out_dir}/ ...\n")
    results = run_experiments(
        ["fig6", "fig7", "eq3", "minmax"], scale="ci", seed=0, out=str(out_dir)
    )

    report_path = out_dir / "report.md"
    report_path.write_text(to_markdown(load_directory(out_dir)))
    print(f"report written: {report_path}")

    # A one-paragraph human summary of what was just verified.
    by_id = {r.experiment_id: r for r in results}
    e4 = by_id["E4"]
    lht = e4.series_by_label("lht/uniform").y[-1]
    pht = e4.series_by_label("pht/uniform").y[-1]
    e11 = by_id["E11"]
    measured = e11.series_by_label("measured")
    print("\nsummary of this run:")
    print(f"  maintenance DHT-lookups at the largest size: "
          f"LHT {lht:.0f} vs PHT {pht:.0f} (ratio {lht / pht:.2f}; paper: ~0.25)")
    print(f"  Eq. 3 saving ratio across gamma: "
          f"{min(measured.y):.1%} .. {max(measured.y):.1%} (paper: 50%..75%)")
    e12 = by_id["E12"]
    assert all(y == 1 for y in e12.series_by_label("lht-min").y)
    print("  min/max queries: 1 DHT-lookup at every size (Theorem 3)")


if __name__ == "__main__":
    main()
