#!/usr/bin/env python3
"""Index availability while peers churn — the problem LHT is built for.

The paper motivates low-maintenance indexing with P2P peer dynamism
(§1).  This example keeps an LHT serving queries while a Poisson
join/leave process reshapes the Chord ring underneath it, with the
overlay's stabilization protocol running in simulated time.  Two phases:

1. graceful churn — peers announce departure and hand their keys to the
   successor: availability stays at 100%;
2. crash churn — peers vanish (single-replica buckets die with them):
   the printout quantifies the loss, i.e. how much replication a real
   deployment should add.

Run:
    python examples/churn_resilience.py
"""

from __future__ import annotations

import numpy as np

from repro import ChordDHT, IndexConfig, LHTIndex
from repro.dht import ChurnConfig, ChurnDriver
from repro.errors import ReproError
from repro.sim import Simulator, TraceLog


def availability(index: LHTIndex, keys: np.ndarray, sample: int = 300) -> float:
    rng = np.random.default_rng(0)
    probes = rng.choice(keys, size=min(sample, len(keys)), replace=False)
    hits = 0
    for key in probes:
        try:
            record, _ = index.exact_match(float(key))
        except ReproError:
            continue
        hits += record is not None
    return hits / len(probes)


def run_phase(crash_fraction: float, label: str) -> None:
    dht = ChordDHT(n_peers=48, seed=1)
    index = LHTIndex(dht, IndexConfig(theta_split=25, max_depth=20))
    keys = np.random.default_rng(2).random(3_000)
    for key in keys:
        index.insert(float(key))

    simulator = Simulator()
    trace = TraceLog()
    driver = ChurnDriver(
        dht,
        simulator,
        np.random.default_rng(3),
        ChurnConfig(
            join_rate=1.0,
            leave_rate=1.0,
            crash_fraction=crash_fraction,
            stabilize_period=0.5,
            min_peers=16,
        ),
        trace=trace,
    )
    print(f"--- {label} ---")
    print(f"{'sim time':>9} {'peers':>6} {'avail':>7} {'events':>22}")
    driver.start(until=60.0)
    for checkpoint in (0.0, 15.0, 30.0, 45.0, 60.0):
        simulator.run_until(checkpoint)
        avail = availability(index, keys)
        events = (
            f"{driver.joins}j/{driver.leaves}l/{driver.crashes}c"
        )
        print(f"{checkpoint:>9.0f} {dht.n_peers:>6} {avail:>6.1%} {events:>22}")
    dht.check_ring()
    print(f"ring integrity after churn: OK "
          f"({dht.keys_transferred} keys handed off)\n")


def main() -> None:
    run_phase(crash_fraction=0.0, label="graceful churn (keys handed off)")
    run_phase(crash_fraction=0.8, label="crash churn (80% of departures crash)")
    print("takeaway: the index structure needs no repair under churn — the")
    print("DHT's own stabilization suffices (paper §8.2, 'no periodical")
    print("maintenance'); only crash-lost replicas need application-level")
    print("replication, an orthogonal substrate concern.")


if __name__ == "__main__":
    main()
