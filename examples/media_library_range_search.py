#!/usr/bin/env python3
"""P2P media library: the paper's §1 motivating workload.

"Find all MP3 files published between Jan. 1, 2007 and now" — a range
query over publication timestamps.  This example publishes a media
catalog into three systems over identically sized overlays:

* a raw DHT (keys hashed directly — no locality: range queries must
  broadcast to every peer),
* a PHT (the prior state of the art),
* an LHT,

and compares both query cost and the maintenance cost of building the
index, reproducing the paper's story end to end.

Run:
    python examples/media_library_range_search.py
"""

from __future__ import annotations

import datetime as dt

import numpy as np

from repro import IndexConfig, LHTIndex, LocalDHT, NaiveIndex, PHTIndex

EPOCH = dt.datetime(2000, 1, 1)
HORIZON = dt.datetime(2008, 1, 1)
SPAN = (HORIZON - EPOCH).total_seconds()


def timestamp_to_key(when: dt.datetime) -> float:
    """Normalize a publication timestamp into the unit key space."""
    return min(max((when - EPOCH).total_seconds() / SPAN, 0.0), 1.0 - 1e-12)


def key_to_timestamp(key: float) -> dt.datetime:
    return EPOCH + dt.timedelta(seconds=key * SPAN)


def make_catalog(n: int, seed: int) -> list[tuple[float, dict]]:
    """Synthesize a catalog with a release-rush near the horizon (new
    files dominate, like a real sharing network)."""
    rng = np.random.default_rng(seed)
    # mixture: 70% recent (last year), 30% uniform history
    recent = rng.random(int(n * 0.7)) * (1 / 8) + 7 / 8
    old = rng.random(n - len(recent))
    keys = np.concatenate([recent, old])
    catalog = []
    for i, key in enumerate(keys):
        catalog.append(
            (
                float(key),
                {
                    "title": f"track-{i:05d}.mp3",
                    "published": key_to_timestamp(float(key)).isoformat(),
                },
            )
        )
    return catalog


def main() -> None:
    n_peers, n_files = 128, 20_000
    catalog = make_catalog(n_files, seed=7)
    config = IndexConfig(theta_split=100, max_depth=20)

    print(f"publishing {n_files} files to {n_peers} peers ...\n")
    raw = NaiveIndex(LocalDHT(n_peers, seed=1))
    pht = PHTIndex(LocalDHT(n_peers, seed=1), config)
    lht = LHTIndex(LocalDHT(n_peers, seed=1), config)
    for key, meta in catalog:
        raw.insert(key, meta)
    pht.bulk_load(catalog)
    lht.bulk_load(catalog)

    # --- the paper's query -------------------------------------------------
    lo = timestamp_to_key(dt.datetime(2007, 1, 1))
    hi = timestamp_to_key(dt.datetime(2008, 1, 1))
    print('query: "all MP3s published between Jan 1, 2007 and now"')
    print(f"  -> range [{lo:.4f}, {hi:.4f}) over the key space\n")

    _, raw_cost = raw.range_query(lo, hi)
    seq = pht.range_query_sequential(lo, hi)
    par = pht.range_query_parallel(lo, hi)
    res = lht.range_query(lo, hi)
    assert res.keys == seq.keys == par.keys

    print(f"matching files: {len(res.records)}")
    print(f"{'system':>16} {'DHT-lookups':>12} {'parallel steps':>15}")
    print(f"{'raw DHT':>16} {raw_cost:>12} {'(broadcast)':>15}")
    print(f"{'PHT sequential':>16} {seq.dht_lookups:>12} {seq.parallel_steps:>15}")
    print(f"{'PHT parallel':>16} {par.dht_lookups:>12} {par.parallel_steps:>15}")
    print(f"{'LHT':>16} {res.dht_lookups:>12} {res.parallel_steps:>15}")

    sample = res.records[0]
    print(f"\nfirst hit: {sample.value['title']} "
          f"(published {sample.value['published'][:10]})")

    # --- what it cost to *build* the indexes -------------------------------
    print("\nindex construction maintenance (the paper's Fig. 7):")
    print(f"{'system':>16} {'splits':>8} {'maint lookups':>14} {'records moved':>14}")
    for name, ledger in (("PHT", pht.ledger), ("LHT", lht.ledger)):
        print(f"{name:>16} {ledger.split_count:>8} "
              f"{ledger.maintenance_lookups:>14} "
              f"{ledger.maintenance_records_moved:>14}")
    saving = 1 - lht.ledger.maintenance_lookups / pht.ledger.maintenance_lookups
    print(f"\nLHT saves {saving:.0%} of maintenance DHT-lookups vs PHT")


if __name__ == "__main__":
    main()
