#!/usr/bin/env python3
"""Quickstart: build an LHT over a simulated DHT and run every query type.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import IndexConfig, LHTIndex, LocalDHT


def main() -> None:
    # An LHT needs nothing from the DHT but put/get: here, 64 simulated
    # peers with consistent-hash placement.
    dht = LocalDHT(n_peers=64, seed=0)
    index = LHTIndex(dht, IndexConfig(theta_split=20, max_depth=20))

    # Insert 5,000 records with keys in [0, 1).
    rng = np.random.default_rng(42)
    keys = rng.random(5_000)
    for key in keys:
        index.insert(float(key), value=f"record@{key:.6f}")
    print(f"inserted {len(index)} records into {index.leaf_count} leaf buckets")
    print(f"tree depth: {index.depth} (max configured: {index.config.max_depth})")

    # Exact-match query (an LHT-lookup, Alg. 2).
    probe = float(keys[123])
    record, cost = index.exact_match(probe)
    print(f"\nexact-match {probe:.6f}: value={record.value!r} "
          f"({cost} DHT-lookups)")

    # Range query (Algs. 3-4): near-optimal — about one DHT-lookup per
    # result bucket, never more than B + 3.
    result = index.range_query(0.25, 0.30)
    print(f"\nrange [0.25, 0.30): {len(result.records)} records from "
          f"{result.buckets_visited} buckets")
    print(f"  bandwidth: {result.dht_lookups} DHT-lookups "
          f"(optimal would be {result.buckets_visited})")
    print(f"  latency:   {result.parallel_steps} parallel DHT-lookup steps")

    # Min/max queries (Theorem 3): one DHT-lookup each, any index size.
    mn, mx = index.min_query(), index.max_query()
    print(f"\nmin key: {mn.record.key:.6f} ({mn.dht_lookups} DHT-lookup)")
    print(f"max key: {mx.record.key:.6f} ({mx.dht_lookups} DHT-lookup)")

    # Maintenance accounting — the paper's headline.
    ledger = index.ledger
    print(f"\nmaintenance so far: {ledger.split_count} splits, "
          f"{ledger.maintenance_lookups} DHT-lookups, "
          f"{ledger.maintenance_records_moved} records moved")
    print(f"average split fraction alpha = {ledger.average_alpha:.4f} "
          f"(paper's closed form: {0.5 + 1 / (2 * index.config.theta_split):.4f})")


if __name__ == "__main__":
    main()
