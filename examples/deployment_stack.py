#!/usr/bin/env python3
"""Composing a deployment-grade stack from the substrate wrappers.

The over-DHT philosophy means production concerns compose *underneath*
the index without touching it.  This example assembles

    LHT
     └─ SerializingDHT      (values cross the boundary as bytes)
         └─ ReplicatedDHT   (3 replicas per key)
             └─ ChordDHT    (routed overlay, 48 peers)

then crashes a fifth of the ring and shows the index still answering —
while the exact same LHT code, pointed at a bare CAN overlay, produces
identical index-level costs (the paper's footnote 5, live).

Run:
    python examples/deployment_stack.py
"""

from __future__ import annotations

import numpy as np

from repro import CANDHT, ChordDHT, IndexConfig, LHTIndex
from repro.dht import ReplicatedDHT, SerializingDHT
from repro.errors import ReproError


def main() -> None:
    rng = np.random.default_rng(17)
    keys = [float(k) for k in rng.random(4_000)]
    config = IndexConfig(theta_split=50, max_depth=20)

    print("building the deployment stack: "
          "Serializing ∘ Replicated(3) ∘ Chord(48) ...")
    ring = ChordDHT(n_peers=48, seed=0)
    stack = SerializingDHT(ReplicatedDHT(ring, n_replicas=3))
    index = LHTIndex(stack, config)
    for key in keys:
        index.insert(key)
    print(f"  {len(index)} records, {index.leaf_count} buckets, "
          f"{stack.bytes_written / 1e6:.1f} MB shipped as bytes\n")

    # Crash a fifth of the ring, stabilize, and query on.
    victims = ring.node_ids[::5]
    for victim in victims:
        if ring.n_peers > 16:
            ring.fail(victim)
    ring.stabilize_all(rounds=3)
    ring.check_ring()
    print(f"crashed {len(victims)} of 48 peers; ring repaired by "
          f"stabilization")

    probes = rng.choice(keys, size=400, replace=False)
    hits = 0
    for probe in probes:
        try:
            record, _ = index.exact_match(float(probe))
        except ReproError:
            continue
        hits += record is not None
    print(f"exact-match availability after the crashes: {hits / len(probes):.1%}")
    result = index.range_query(0.4, 0.45)
    print(f"range [0.40, 0.45): {len(result.records)} records, "
          f"{result.dht_lookups} DHT-lookups\n")

    # The same index code over a completely different overlay geometry.
    print("same code over CAN (2-d coordinate space, zone routing):")
    can_index = LHTIndex(CANDHT(n_peers=48, seed=0), config)
    for key in keys:
        can_index.insert(key)
    print(f"  maintenance lookups — stack: {index.ledger.maintenance_lookups}, "
          f"CAN: {can_index.ledger.maintenance_lookups} (identical: "
          f"{index.ledger.maintenance_lookups == can_index.ledger.maintenance_lookups})")
    lookup_stack = index.lookup(keys[0]).dht_lookups
    lookup_can = can_index.lookup(keys[0]).dht_lookups
    print(f"  lookup cost for the same key — stack: {lookup_stack}, "
          f"CAN: {lookup_can}")
    print("\nthe index never noticed any of it — that is the over-DHT "
          "paradigm the paper argues for.")


if __name__ == "__main__":
    main()
