#!/usr/bin/env python3
"""P2P database over a *routed* Chord overlay: min/max and cost model.

The paper's §3.1 frames records as database tuples indexed by a candidate
key.  Here a marketplace's ask-price table lives in an LHT over a real
simulated Chord ring (finger tables, iterative routing), and we run the
database-style queries §7 motivates — "cheapest ask", "highest ask",
point lookups — then check the measured maintenance costs against the
§8 cost model (Eqs. 1 and 3).

Run:
    python examples/p2p_database_minmax.py
"""

from __future__ import annotations

import numpy as np

from repro import ChordDHT, IndexConfig, LHTIndex, LinearCostModel, PHTIndex, LocalDHT
from repro.costmodel import saving_ratio


def main() -> None:
    rng = np.random.default_rng(3)
    config = IndexConfig(theta_split=50, max_depth=20)

    # Ask prices in dollars, normalized into [0, 1) by a $1000 cap.
    prices = np.clip(rng.lognormal(mean=3.5, sigma=0.8, size=8_000), 0, 999.99)
    keys = prices / 1000.0

    print("building the order book over a 64-node Chord ring ...")
    dht = ChordDHT(n_peers=64, seed=0)
    book = LHTIndex(dht, config)
    for i, key in enumerate(keys):
        book.insert(float(key), value={"order_id": i, "price": float(prices[i])})

    mean_hops = dht.metrics.hops / dht.metrics.dht_lookups
    print(f"  {len(book)} asks in {book.leaf_count} buckets; "
          f"routing averaged {mean_hops:.2f} hops per DHT-lookup\n")

    # --- database queries ---------------------------------------------------
    cheapest = book.min_query()
    dearest = book.max_query()
    print(f"SELECT MIN(price):  ${cheapest.record.value['price']:.2f} "
          f"({cheapest.dht_lookups} DHT-lookup)")
    print(f"SELECT MAX(price):  ${dearest.record.value['price']:.2f} "
          f"({dearest.dht_lookups} DHT-lookup)")

    band = book.range_query(50 / 1000, 60 / 1000)
    print(f"SELECT * WHERE price in [$50, $60): {len(band.records)} rows "
          f"({band.dht_lookups} DHT-lookups, {band.parallel_steps} steps)")

    probe = float(keys[42])
    row, cost = book.exact_match(probe)
    print(f"point lookup of order #42: ${row.value['price']:.2f} "
          f"({cost} DHT-lookups)\n")

    # --- cost-model cross-check (§8) ----------------------------------------
    print("cost-model cross-check (Eq. 1 vs measured):")
    splits = book.ledger.split_count
    measured_moved = book.ledger.maintenance_records_moved / splits
    measured_lookups = book.ledger.maintenance_lookups / splits
    print(f"  per split: {measured_moved:.1f} records moved "
          f"(Eq. 1 predicts ~{config.theta_split / 2:.0f}), "
          f"{measured_lookups:.0f} DHT-lookup (Eq. 1 predicts 1)")

    # Compare against PHT under the paper's γ sweep (Eq. 3).
    pht = PHTIndex(LocalDHT(64, 0), config)
    lht2 = LHTIndex(LocalDHT(64, 0), config)
    pht.bulk_load(float(k) for k in keys)
    lht2.bulk_load(float(k) for k in keys)
    print("\nmaintenance saving vs PHT across record sizes (Eq. 3):")
    print(f"{'gamma':>8} {'analytic':>9} {'measured':>9}")
    for gamma in (0.1, 1.0, 10.0, 100.0):
        model = LinearCostModel(
            record_move_cost=gamma / config.theta_split, lookup_cost=1.0
        )
        measured = model.measured_saving_ratio(lht2.ledger, pht.ledger)
        print(f"{gamma:>8} {saving_ratio(gamma):>9.1%} {measured:>9.1%}")
    print("\n(the paper's claim: between 50% and 75% everywhere)")


if __name__ == "__main__":
    main()
