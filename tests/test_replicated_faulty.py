"""Tests for the replication and fault-injection DHT wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, LHTIndex
from repro.dht import (
    ChordDHT,
    FaultyDHT,
    HashSaltPolicy,
    LocalDHT,
    ReplicatedDHT,
)
from repro.errors import ConfigurationError, DHTError, ReproError


class TestReplicatedDHT:
    def test_put_writes_all_replicas(self):
        inner = LocalDHT(16, 0)
        dht = ReplicatedDHT(inner, n_replicas=3)
        dht.put("k", "v")
        assert inner.metrics.puts == 3  # put amplification is charged
        assert inner.peek("k") == "v"
        # Every placement target holds its own copy under the plain key.
        for peer in dht.replica_peers("k"):
            assert inner.probe_get("k", peer) == "v"

    def test_salted_fallback_writes_aliases(self):
        inner = LocalDHT(16, 0)
        dht = ReplicatedDHT(inner, n_replicas=3, policy=HashSaltPolicy())
        dht.put("k", "v")
        assert inner.metrics.puts == 3
        assert inner.peek("k") == "v"
        assert inner.peek("k##r1") == "v"
        assert inner.peek("k##r2") == "v"

    def test_get_prefers_primary(self):
        inner = LocalDHT(16, 0)
        dht = ReplicatedDHT(inner, n_replicas=3)
        dht.put("k", "v")
        before = inner.metrics.snapshot()
        assert dht.get("k") == "v"
        assert inner.metrics.since(before).gets == 1

    def test_get_fails_over(self):
        inner = LocalDHT(16, 0)
        dht = ReplicatedDHT(inner, n_replicas=3)
        dht.put("k", "v")
        inner.remove("k")  # primary copy lost at the owner
        assert dht.get("k") == "v"  # served by a replica holder
        assert inner.metrics.replica_failovers == 1
        assert inner.metrics.replica_probe_gets >= 1

    def test_remove_clears_all(self):
        inner = LocalDHT(16, 0)
        dht = ReplicatedDHT(inner, n_replicas=2)
        dht.put("k", "v")
        assert dht.remove("k") == "v"
        assert dht.get("k") is None
        assert list(dht.keys()) == []

    def test_keys_deduplicated(self):
        dht = ReplicatedDHT(LocalDHT(16, 0), n_replicas=3)
        dht.put("a", 1)
        dht.put("b", 2)
        assert sorted(dht.keys()) == ["a", "b"]

    def test_replica_peers_distinct(self):
        dht = ReplicatedDHT(LocalDHT(64, 0), n_replicas=3)
        peers = dht.replica_peers("some-key")
        assert len(set(peers)) == 3  # placement guarantees distinctness

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicatedDHT(LocalDHT(4, 0), n_replicas=0)

    @staticmethod
    def _availability_after_crashes(n_replicas: int) -> float:
        inner = ChordDHT(n_peers=24, seed=0)
        dht = ReplicatedDHT(inner, n_replicas=n_replicas)
        index = LHTIndex(dht, IndexConfig(theta_split=10, max_depth=20))
        keys = [float(k) for k in np.random.default_rng(0).random(300)]
        for key in keys:
            index.insert(key)
        # crash a quarter of the ring (same victims for both runs)
        for victim in inner.node_ids[::4]:
            if inner.n_peers > 8:
                inner.fail(victim)
        inner.stabilize_all(rounds=3)
        inner.check_ring()
        hits = 0
        for key in keys:
            try:
                record, _ = index.exact_match(key)
            except ReproError:
                continue
            hits += record is not None
        return hits / len(keys)

    def test_replication_restores_availability_under_crashes(self):
        """The E14 story with the fix applied: after crashing a quarter
        of the ring, 3-way replication recovers most of what a
        single-replica index loses."""
        single = self._availability_after_crashes(n_replicas=1)
        triple = self._availability_after_crashes(n_replicas=3)
        assert triple > single
        assert triple > 0.8
        assert single < 0.8  # the problem actually existed


class TestFaultyDHT:
    def test_no_faults_is_transparent(self):
        dht = FaultyDHT(LocalDHT(8, 0), get_drop_rate=0.0)
        dht.put("k", 1)
        assert dht.get("k") == 1

    def test_drops_are_counted(self):
        dht = FaultyDHT(LocalDHT(8, 0), get_drop_rate=1.0, seed=1)
        dht.put("k", 1)
        assert dht.get("k") is None
        assert dht.dropped_gets == 1
        assert dht.peek("k") == 1  # oracle access is never faulty

    def test_put_failures_raise(self):
        dht = FaultyDHT(LocalDHT(8, 0), put_fail_rate=1.0)
        with pytest.raises(DHTError):
            dht.put("k", 1)
        assert dht.failed_puts == 1

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FaultyDHT(LocalDHT(4, 0), get_drop_rate=1.5)

    def test_lookup_never_returns_wrong_bucket(self):
        """The safety contract under lossy gets: an LHT lookup may fail
        to converge, but any bucket it does return covers the key."""
        inner = LocalDHT(16, 0)
        index = LHTIndex(inner, IndexConfig(theta_split=4, max_depth=20))
        keys = [float(k) for k in np.random.default_rng(2).random(300)]
        for key in keys:
            index.insert(key)
        flaky = FaultyDHT(inner, get_drop_rate=0.3, seed=3)
        flaky_index = LHTIndex.__new__(LHTIndex)  # reuse stored state
        flaky_index.dht = flaky
        flaky_index.config = index.config
        converged = failed = 0
        from repro.core import lht_lookup

        for probe in np.random.default_rng(4).random(200):
            result = lht_lookup(flaky, index.config, float(probe))
            if result.found:
                converged += 1
                assert result.bucket.contains_key(float(probe))
            else:
                failed += 1
        assert converged > 0 and failed > 0  # both regimes exercised

    def test_range_query_fails_loudly_not_wrongly(self):
        """Under dropped gets a range query either raises or returns a
        subset of the true answer — never invented records."""
        inner = LocalDHT(16, 0)
        index = LHTIndex(inner, IndexConfig(theta_split=4, max_depth=20))
        keys = [float(k) for k in np.random.default_rng(5).random(400)]
        for key in keys:
            index.insert(key)
        from repro.core.range_query import RangeQueryExecutor
        from repro.core.interval import Range

        flaky = FaultyDHT(inner, get_drop_rate=0.2, seed=6)
        executor = RangeQueryExecutor(flaky, index.config)
        truth = sorted(k for k in keys if 0.2 <= k < 0.6)
        outcomes = {"ok": 0, "partial": 0, "raised": 0}
        for _ in range(50):
            try:
                result = executor.run(Range(0.2, 0.6))
            except ReproError:
                outcomes["raised"] += 1
                continue
            got = result.keys
            assert set(got) <= set(truth)
            outcomes["ok" if got == truth else "partial"] += 1
        assert outcomes["raised"] + outcomes["partial"] > 0
