"""Tests for the Kademlia and Pastry substrates."""

from __future__ import annotations

import math

import pytest

from repro.dht.kademlia import KademliaDHT
from repro.dht.hashing import hash_key
from repro.dht.pastry import PastryDHT
from repro.errors import ConfigurationError


class TestKademlia:
    def test_bucket_index_is_highest_differing_bit(self):
        dht = KademliaDHT(n_peers=4, seed=0, id_bits=16)
        assert dht._bucket_index(0b0000, 0b0001) == 0
        assert dht._bucket_index(0b0000, 0b1000) == 3
        assert dht._bucket_index(0b0101, 0b0100) == 0

    def test_iterative_find_reaches_global_closest(self):
        dht = KademliaDHT(n_peers=60, seed=1)
        for i in range(200):
            target = hash_key(f"t{i}", dht.id_bits)
            start = dht.peer_of(f"s{i}")
            found, messages = dht.iterative_find(start, target)
            assert found == min(dht._nodes, key=lambda n: n ^ target)
            assert messages >= 1

    def test_put_get_remove(self):
        dht = KademliaDHT(n_peers=30, seed=0)
        dht.put("a", "x")
        assert dht.get("a") == "x"
        assert dht.get("nope") is None
        assert dht.remove("a") == "x"

    def test_owner_matches_placement_oracle(self):
        dht = KademliaDHT(n_peers=40, seed=2)
        for i in range(100):
            owner, _ = dht.route(f"k{i}")
            assert owner == dht.peer_of(f"k{i}")

    def test_messages_scale_logarithmically(self):
        dht = KademliaDHT(n_peers=256, seed=3)
        total = 0
        for i in range(100):
            _, messages = dht.route(f"k{i}")
            total += messages
        assert total / 100 <= 4 * math.log2(256)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KademliaDHT(n_peers=0)
        with pytest.raises(ConfigurationError):
            KademliaDHT(n_peers=4, k=0)

    def test_single_node(self):
        dht = KademliaDHT(n_peers=1, seed=0)
        dht.put("a", 1)
        assert dht.get("a") == 1


class TestPastry:
    def test_digits(self):
        dht = PastryDHT(n_peers=4, seed=0, id_bits=16, b=4)
        assert dht._digit(0xABCD, 0) == 0xA
        assert dht._digit(0xABCD, 3) == 0xD

    def test_shared_prefix_len(self):
        dht = PastryDHT(n_peers=4, seed=0, id_bits=16, b=4)
        assert dht.shared_prefix_len(0xAB00, 0xABFF) == 2
        assert dht.shared_prefix_len(0x1234, 0x1234) == 4
        assert dht.shared_prefix_len(0xF000, 0x0000) == 0

    def test_route_reaches_numerically_closest(self):
        dht = PastryDHT(n_peers=60, seed=1)
        for i in range(200):
            key = f"k{i}"
            owner, _ = dht.route(key)
            assert owner == dht.peer_of(key)

    def test_put_get_remove(self):
        dht = PastryDHT(n_peers=30, seed=0)
        dht.put("a", "x")
        assert dht.get("a") == "x"
        assert dht.remove("a") == "x"
        assert dht.get("a") is None

    def test_hops_logarithmic(self):
        dht = PastryDHT(n_peers=256, seed=2)
        total = 0
        for i in range(100):
            _, hops = dht.route(f"k{i}")
            total += hops
        # Pastry: O(log_16 N) ≈ 2 for 256 nodes; be generous.
        assert total / 100 <= 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PastryDHT(n_peers=0)
        with pytest.raises(ConfigurationError):
            PastryDHT(n_peers=4, id_bits=30, b=4)  # not a multiple

    def test_single_node(self):
        dht = PastryDHT(n_peers=1, seed=0)
        dht.put("a", 1)
        assert dht.get("a") == 1
