"""Unit tests for result types and the maintenance cost ledger."""

from __future__ import annotations

import math

from repro.core import Label
from repro.core.results import (
    CostLedger,
    MergeEvent,
    RangeQueryResult,
    SplitEvent,
)


def _split(parent: str, lookups: int = 1, moved: int = 5) -> SplitEvent:
    label = Label.parse(parent)
    return SplitEvent(
        parent=label,
        local=label.left_child,
        remote=label.right_child,
        alpha=0.5,
        records_moved=moved,
        dht_lookups=lookups,
    )


class TestCostLedger:
    def test_empty_ledger(self):
        ledger = CostLedger()
        assert ledger.split_count == 0
        assert ledger.maintenance_lookups == 0
        assert math.isnan(ledger.average_alpha)

    def test_record_split_accumulates(self):
        ledger = CostLedger()
        ledger.record_split(_split("#00", lookups=1, moved=5))
        ledger.record_split(_split("#01", lookups=1, moved=7))
        assert ledger.split_count == 2
        assert ledger.maintenance_lookups == 2
        assert ledger.maintenance_records_moved == 12
        assert ledger.average_alpha == 0.5

    def test_record_merge_accumulates(self):
        ledger = CostLedger()
        ledger.record_merge(
            MergeEvent(
                survivor=Label.parse("#00"),
                absorbed=Label.parse("#001"),
                records_moved=3,
                dht_lookups=2,
            )
        )
        assert ledger.maintenance_lookups == 2
        assert ledger.maintenance_records_moved == 3
        assert len(ledger.merges) == 1

    def test_average_alpha_weighting(self):
        ledger = CostLedger()
        for alpha in (0.4, 0.6):
            event = _split("#00")
            object.__setattr__(event, "alpha", alpha)
            ledger.record_split(event)
        assert ledger.average_alpha == 0.5


class TestRangeQueryResult:
    def test_keys_property_sorted(self):
        from repro.core import Record

        result = RangeQueryResult(
            records=(Record(0.1), Record(0.2)),
            dht_lookups=3,
            failed_lookups=0,
            parallel_steps=2,
            buckets_visited=2,
        )
        assert result.keys == [0.1, 0.2]
        assert result.collect_calls == 0  # default for baseline results
