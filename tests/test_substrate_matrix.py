"""The LHT correctness battery over every substrate and wrapper stack.

One parametrized suite, many backends: the four routed overlays, the
fast local store, and composed wrapper stacks (serialization over
replication over Chord, fault-free wrapper chains, access logging).
This is the breadth test for the paper's "adaptable to any DHT
substrate" claim — and for the wrappers' claim of transparency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, IndexInspector, LHTIndex
from repro.dht import (
    AccessLoggingDHT,
    CANDHT,
    ChordDHT,
    FaultyDHT,
    KademliaDHT,
    LocalDHT,
    PastryDHT,
    ReplicatedDHT,
    SerializingDHT,
    TapestryDHT,
)

BACKENDS = {
    "local": lambda: LocalDHT(16, 0),
    "chord": lambda: ChordDHT(n_peers=16, seed=0),
    "can": lambda: CANDHT(n_peers=16, seed=0),
    "kademlia": lambda: KademliaDHT(n_peers=16, seed=0),
    "pastry": lambda: PastryDHT(n_peers=16, seed=0),
    "tapestry": lambda: TapestryDHT(n_peers=16, seed=0),
    "serializing(local)": lambda: SerializingDHT(LocalDHT(16, 0)),
    "replicated(chord)": lambda: ReplicatedDHT(ChordDHT(n_peers=16, seed=0), 2),
    "faulty-0(local)": lambda: FaultyDHT(LocalDHT(16, 0), get_drop_rate=0.0),
    "logging(local)": lambda: AccessLoggingDHT(LocalDHT(16, 0)),
    "serializing(replicated(chord))": lambda: SerializingDHT(
        ReplicatedDHT(ChordDHT(n_peers=16, seed=0), 2)
    ),
}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def backend(request):
    return BACKENDS[request.param]()


@pytest.fixture(scope="module")
def keys() -> list[float]:
    return [float(k) for k in np.random.default_rng(7).random(400)]


class TestMatrix:
    def test_full_battery(self, backend, keys):
        config = IndexConfig(theta_split=10, max_depth=20, merge_enabled=True)
        index = LHTIndex(backend, config)
        for key in keys:
            index.insert(key)

        # structural integrity
        IndexInspector(backend).verify()

        # exact match
        for key in keys[:40]:
            record, _ = index.exact_match(key)
            assert record is not None and record.key == key

        # range queries
        for lo, hi in ((0.0, 0.2), (0.3, 0.65), (0.9, 1.0)):
            expect = sorted(k for k in keys if lo <= k < hi)
            assert index.range_query(lo, hi).keys == expect

        # min/max in one lookup
        assert index.min_query().record.key == min(keys)
        assert index.max_query().record.key == max(keys)

        # scan and kNN
        assert [r.key for r in index.scan()] == sorted(keys)
        nearest = index.knn_query(0.5, 3)
        expect_nn = sorted(keys, key=lambda k: (abs(k - 0.5), k))[:3]
        assert [r.key for r in nearest.records] == expect_nn

        # deletion with merges
        for key in keys[:200]:
            assert index.delete(key).deleted
        IndexInspector(backend).verify()
        assert index.range_query(0.0, 1.0).keys == sorted(keys[200:])

    def test_index_costs_identical_everywhere(self, keys):
        """The same workload yields identical index-level counters on
        every backend — the strongest form of footnote 5."""
        ledgers = []
        lookup_costs = []
        for name in sorted(BACKENDS):
            index = LHTIndex(
                BACKENDS[name](), IndexConfig(theta_split=10, max_depth=20)
            )
            for key in keys:
                index.insert(key)
            ledgers.append(
                (
                    index.ledger.maintenance_lookups,
                    index.ledger.maintenance_records_moved,
                    index.ledger.split_count,
                )
            )
            lookup_costs.append(
                [index.lookup(k).dht_lookups for k in keys[:50]]
            )
        assert all(l == ledgers[0] for l in ledgers[1:])
        assert all(c == lookup_costs[0] for c in lookup_costs[1:])
