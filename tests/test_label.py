"""Unit tests for tree-node labels (paper §3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.label import Label, ROOT, VIRTUAL_ROOT
from repro.errors import LabelError

label_bits = st.one_of(
    st.just(""),
    st.text(alphabet="01", min_size=1, max_size=16).map(lambda s: "0" + s[1:]),
)


class TestConstruction:
    def test_virtual_root(self):
        assert VIRTUAL_ROOT.bits == ""
        assert VIRTUAL_ROOT.is_virtual_root
        assert not VIRTUAL_ROOT.is_root
        assert str(VIRTUAL_ROOT) == "#"

    def test_root(self):
        assert ROOT.bits == "0"
        assert ROOT.is_root
        assert not ROOT.is_virtual_root
        assert str(ROOT) == "#0"

    def test_parse_roundtrip(self):
        for text in ("#", "#0", "#0110", "#01011"):
            assert str(Label.parse(text)) == text

    def test_parse_requires_hash(self):
        with pytest.raises(LabelError):
            Label.parse("0110")

    def test_invalid_bits_rejected(self):
        with pytest.raises(LabelError):
            Label("01x0")

    def test_first_bit_must_be_zero(self):
        # The edge from the virtual root to the regular root is labelled 0.
        with pytest.raises(LabelError):
            Label("10")

    def test_repr_contains_text(self):
        assert "#0110" in repr(Label("0110"))


class TestStructure:
    def test_depth_and_length(self):
        # The paper's "length" counts the '#': λ's length = depth + 1.
        assert VIRTUAL_ROOT.depth == 0 and VIRTUAL_ROOT.length == 1
        assert ROOT.depth == 1 and ROOT.length == 2
        lab = Label.parse("#00110")
        assert lab.depth == 5 and lab.length == 6

    def test_last_bit(self):
        assert Label.parse("#0110").last_bit == "0"
        assert Label.parse("#011").last_bit == "1"

    def test_virtual_root_has_no_last_bit(self):
        with pytest.raises(LabelError):
            _ = VIRTUAL_ROOT.last_bit

    def test_children(self):
        assert str(ROOT.left_child) == "#00"
        assert str(ROOT.right_child) == "#01"

    def test_virtual_root_only_child_is_root(self):
        assert VIRTUAL_ROOT.child("0") == ROOT
        with pytest.raises(LabelError):
            VIRTUAL_ROOT.child("1")

    def test_invalid_child_bit(self):
        with pytest.raises(LabelError):
            ROOT.child("2")

    def test_parent(self):
        assert Label.parse("#0110").parent == Label.parse("#011")
        assert ROOT.parent == VIRTUAL_ROOT
        with pytest.raises(LabelError):
            _ = VIRTUAL_ROOT.parent

    def test_sibling(self):
        assert Label.parse("#010").sibling == Label.parse("#011")
        assert Label.parse("#011").sibling == Label.parse("#010")

    def test_root_has_no_sibling(self):
        with pytest.raises(LabelError):
            _ = ROOT.sibling
        with pytest.raises(LabelError):
            _ = VIRTUAL_ROOT.sibling

    def test_prefixes(self):
        lab = Label.parse("#0110")
        assert lab.prefix(1) == VIRTUAL_ROOT
        assert lab.prefix(2) == ROOT
        assert lab.prefix(5) == lab
        with pytest.raises(LabelError):
            lab.prefix(6)
        with pytest.raises(LabelError):
            lab.prefix(0)

    def test_is_prefix_of(self):
        assert ROOT.is_prefix_of(Label.parse("#0110"))
        assert Label.parse("#0110").is_prefix_of(Label.parse("#0110"))
        assert not Label.parse("#0110").is_proper_prefix_of(Label.parse("#0110"))
        assert VIRTUAL_ROOT.is_proper_prefix_of(ROOT)
        assert not Label.parse("#01").is_prefix_of(Label.parse("#00"))

    def test_ancestors_nearest_first(self):
        labels = list(Label.parse("#011").ancestors())
        assert labels == [Label.parse("#01"), ROOT, VIRTUAL_ROOT]

    def test_extend(self):
        assert ROOT.extend("110") == Label.parse("#0110")
        with pytest.raises(LabelError):
            ROOT.extend("1x")
        with pytest.raises(LabelError):
            VIRTUAL_ROOT.extend("1")


class TestSpines:
    def test_leftmost_spine(self):
        for text in ("#", "#0", "#00", "#0000"):
            assert Label.parse(text).on_leftmost_spine
        assert not Label.parse("#001").on_leftmost_spine

    def test_rightmost_spine(self):
        # #01* touches the right edge of the data space; so do # and #0.
        for text in ("#", "#0", "#01", "#0111"):
            assert Label.parse(text).on_rightmost_spine
        assert not Label.parse("#0110").on_rightmost_spine
        assert not Label.parse("#0011").on_rightmost_spine


class TestGeometry:
    def test_roots_cover_unit_interval(self):
        for lab in (VIRTUAL_ROOT, ROOT):
            assert lab.interval.low == 0 and lab.interval.high == 1

    def test_halving(self):
        left, right = ROOT.left_child, ROOT.right_child
        assert float(left.interval.low) == 0.0
        assert float(left.interval.high) == 0.5
        assert float(right.interval.low) == 0.5
        assert float(right.interval.high) == 1.0

    def test_paper_example_interval(self):
        # Fig. 2: #001 covers [0.25, 0.5).
        lab = Label.parse("#001")
        assert float(lab.interval.low) == 0.25
        assert float(lab.interval.high) == 0.5

    def test_contains(self):
        lab = Label.parse("#001")
        assert lab.contains(0.25)
        assert lab.contains(0.4)
        assert not lab.contains(0.5)
        assert not lab.contains(0.2)

    @given(label_bits)
    def test_children_partition_parent(self, bits: str):
        label = Label(bits if bits else "0")
        left, right = label.left_child, label.right_child
        assert left.interval.low == label.interval.low
        assert left.interval.high == right.interval.low
        assert right.interval.high == label.interval.high


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Label("0110") == Label("0110")
        assert Label("0110") != Label("011")
        assert hash(Label("0110")) == hash(Label("0110"))
        assert len({Label("0"), Label("0"), Label("00")}) == 2

    def test_ordering_is_lexicographic(self):
        assert Label("00") < Label("01")
        assert Label("0") < Label("00")
        assert Label("0") <= Label("0")

    @given(label_bits, label_bits)
    def test_equality_iff_same_bits(self, a: str, b: str):
        assert (Label(a) == Label(b)) == (a == b)
