"""Linter rule tests: each rule against good and violating fixtures.

The fixtures are written into tmp_path so path-scoped rules (LHT001/2
apply only inside ``sim``/``dht``/``core`` directories) can be exercised
both in and out of scope.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import LINT_RULES, lint_paths, lint_source, main

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def codes(violations) -> list[str]:
    return [v.code for v in violations]


def lint_at(source: str, relpath: str, tmp_path: Path) -> list[str]:
    """Lint a snippet as if it lived at ``relpath`` inside a package."""
    file = tmp_path / relpath
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(source)
    return codes(lint_paths([file]))


class TestWallClockRule:
    def test_time_time_flagged_in_sim(self, tmp_path):
        src = "import time\n\ndef now():\n    return time.time()\n"
        assert lint_at(src, "sim/clock2.py", tmp_path) == ["LHT001"]

    def test_aliased_import_still_flagged(self, tmp_path):
        src = "from time import time as wall\n\ndef f():\n    return wall()\n"
        assert lint_at(src, "core/util.py", tmp_path) == ["LHT001"]

    def test_datetime_now_flagged(self, tmp_path):
        src = (
            "from datetime import datetime\n\n"
            "def stamp():\n    return datetime.now()\n"
        )
        assert lint_at(src, "dht/stamp.py", tmp_path) == ["LHT001"]

    def test_wall_clock_allowed_outside_deterministic_packages(self, tmp_path):
        src = "import time\n\ndef now():\n    return time.time()\n"
        assert lint_at(src, "experiments/timing.py", tmp_path) == []

    def test_cache_and_baselines_are_deterministic_packages(self, tmp_path):
        # They perform routed operations whose counts feed figures, so
        # they carry the same hermeticity contract as the core.
        src = "import time\n\ndef now():\n    return time.time()\n"
        assert lint_at(src, "cache/warm.py", tmp_path) == ["LHT001"]
        assert lint_at(src, "baselines/probe.py", tmp_path) == ["LHT001"]

    def test_simulated_clock_is_clean(self, tmp_path):
        src = (
            "class Clock:\n"
            "    def __init__(self):\n        self.now = 0.0\n"
            "    def advance_to(self, t):\n        self.now = t\n"
        )
        assert lint_at(src, "sim/clock2.py", tmp_path) == []


class TestGlobalRandomnessRule:
    def test_stdlib_random_call_flagged(self, tmp_path):
        src = "import random\n\ndef draw():\n    return random.random()\n"
        assert lint_at(src, "sim/draws.py", tmp_path) == ["LHT002"]

    def test_from_random_import_flagged(self, tmp_path):
        src = "from random import randint\n"
        assert lint_at(src, "core/pick.py", tmp_path) == ["LHT002"]

    def test_numpy_global_state_flagged(self, tmp_path):
        src = "import numpy as np\n\ndef draw():\n    return np.random.rand(3)\n"
        assert lint_at(src, "dht/jitter.py", tmp_path) == ["LHT002"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        src = (
            "import numpy as np\n\n"
            "def make():\n    return np.random.default_rng()\n"
        )
        assert lint_at(src, "sim/gen.py", tmp_path) == ["LHT002"]

    def test_seeded_default_rng_is_clean(self, tmp_path):
        src = (
            "import numpy as np\n\n"
            "def make(seed):\n    return np.random.default_rng(seed)\n"
        )
        assert lint_at(src, "sim/gen.py", tmp_path) == []

    def test_randomness_allowed_outside_deterministic_packages(self, tmp_path):
        src = "import random\n\ndef draw():\n    return random.random()\n"
        assert lint_at(src, "scripts/demo.py", tmp_path) == []

    def test_global_randomness_flagged_in_baselines(self, tmp_path):
        src = "import numpy as np\n\ndef draw():\n    return np.random.rand()\n"
        assert lint_at(src, "baselines/noise.py", tmp_path) == ["LHT002"]


class TestBareAssertRule:
    def test_assert_flagged_in_library_code(self, tmp_path):
        src = "def check(x):\n    assert x > 0\n    return x\n"
        assert lint_at(src, "workloads/check.py", tmp_path) == ["LHT003"]

    def test_assert_allowed_in_tests(self, tmp_path):
        src = "def test_x():\n    assert 1 + 1 == 2\n"
        assert lint_at(src, "tests/test_x.py", tmp_path) == []
        assert lint_at(src, "pkg/test_y.py", tmp_path) == []


class TestMutableDefaultRule:
    def test_list_default_flagged(self, tmp_path):
        src = "def f(items=[]):\n    return items\n"
        assert lint_at(src, "pkg/mod.py", tmp_path) == ["LHT004"]

    def test_dict_call_default_flagged(self, tmp_path):
        src = "def f(table=dict()):\n    return table\n"
        assert lint_at(src, "pkg/mod.py", tmp_path) == ["LHT004"]

    def test_kwonly_set_default_flagged(self, tmp_path):
        src = "def f(*, seen=set()):\n    return seen\n"
        assert lint_at(src, "pkg/mod.py", tmp_path) == ["LHT004"]

    def test_none_default_is_clean(self, tmp_path):
        src = "def f(items=None):\n    return items or []\n"
        assert lint_at(src, "pkg/mod.py", tmp_path) == []


BASE_SRC = """\
import abc

class DHT(abc.ABC):
    @abc.abstractmethod
    def put(self, key, value): ...

    @abc.abstractmethod
    def get(self, key): ...

    @property
    @abc.abstractmethod
    def n_peers(self): ...
"""

GOOD_SUBSTRATE = """\
from base import DHT

class GoodDHT(DHT):
    def put(self, key, value): ...
    def get(self, key): ...
    @property
    def n_peers(self): return 1
"""

BAD_SUBSTRATE = """\
from base import DHT

class BadDHT(DHT):
    def put(self, key, value): ...
"""

INDIRECT_SUBSTRATE = """\
from good import GoodDHT

class WrapperDHT(GoodDHT):
    def extra(self): ...
"""


class TestSubstrateInterfaceRule:
    def _write_pkg(self, tmp_path, **files: str) -> Path:
        pkg = tmp_path / "dht"
        pkg.mkdir()
        (pkg / "base.py").write_text(BASE_SRC)
        for name, src in files.items():
            (pkg / f"{name}.py").write_text(src)
        return pkg

    def test_complete_substrate_is_clean(self, tmp_path):
        pkg = self._write_pkg(tmp_path, good=GOOD_SUBSTRATE)
        assert codes(lint_paths([pkg])) == []

    def test_incomplete_substrate_flagged(self, tmp_path):
        pkg = self._write_pkg(tmp_path, bad=BAD_SUBSTRATE)
        violations = lint_paths([pkg])
        assert codes(violations) == ["LHT005"]
        assert "BadDHT" in violations[0].message
        assert "get" in violations[0].message
        assert "n_peers" in violations[0].message

    def test_inherited_methods_count(self, tmp_path):
        pkg = self._write_pkg(
            tmp_path, good=GOOD_SUBSTRATE, wrap=INDIRECT_SUBSTRATE
        )
        assert codes(lint_paths([pkg])) == []


KERNEL_SRC = """\
from base import DHT

class SubstrateBase(DHT):
    def put(self, key, value): ...
    def get(self, key): ...
    @property
    def n_peers(self): return 1

class DelegatingDHT(DHT):
    def put(self, key, value): ...
    def get(self, key): ...
    @property
    def n_peers(self): return 1
"""

CLEAN_KERNEL_SUBSTRATE = """\
from kernel import SubstrateBase

class CleanDHT(SubstrateBase):
    def route(self, key): return 0, 1
    def peer_of(self, key): return 0
"""

OVERRIDING_SUBSTRATE = """\
from kernel import SubstrateBase

class SneakyDHT(SubstrateBase):
    def route(self, key): return 0, 1
    def peer_of(self, key): return 0
    def get(self, key): return None
    def peer_loads(self): return {}
"""

INDIRECT_OVERRIDE = """\
from clean import CleanDHT

class GrandchildDHT(CleanDHT):
    def put(self, key, value): ...
"""

KERNEL_WRAPPER = """\
from kernel import DelegatingDHT

class OverridingWrapper(DelegatingDHT):
    def get(self, key): return None
"""


class TestKernelOverrideRule:
    def _write_pkg(self, tmp_path, **files: str) -> Path:
        pkg = tmp_path / "dht"
        pkg.mkdir()
        (pkg / "base.py").write_text(BASE_SRC)
        (pkg / "kernel.py").write_text(KERNEL_SRC)
        for name, src in files.items():
            (pkg / f"{name}.py").write_text(src)
        return pkg

    def test_clean_substrate_passes(self, tmp_path):
        pkg = self._write_pkg(tmp_path, clean=CLEAN_KERNEL_SUBSTRATE)
        assert codes(lint_paths([pkg], select=["LHT006"])) == []

    def test_override_flagged(self, tmp_path):
        pkg = self._write_pkg(tmp_path, sneaky=OVERRIDING_SUBSTRATE)
        violations = [
            v for v in lint_paths([pkg]) if v.code == "LHT006"
        ]
        assert len(violations) == 1
        assert "SneakyDHT" in violations[0].message
        assert "get" in violations[0].message
        assert "peer_loads" in violations[0].message

    def test_indirect_subclass_flagged(self, tmp_path):
        pkg = self._write_pkg(
            tmp_path, clean=CLEAN_KERNEL_SUBSTRATE, grand=INDIRECT_OVERRIDE
        )
        violations = [
            v for v in lint_paths([pkg]) if v.code == "LHT006"
        ]
        assert len(violations) == 1
        assert "GrandchildDHT" in violations[0].message
        assert "put" in violations[0].message

    def test_wrappers_exempt(self, tmp_path):
        # Wrappers subclass DelegatingDHT, not SubstrateBase: overriding
        # routed operations is their whole purpose.
        pkg = self._write_pkg(tmp_path, wrapper=KERNEL_WRAPPER)
        assert codes(lint_paths([pkg], select=["LHT006"])) == []

    def test_real_tree_is_clean(self):
        src = Path(__file__).parent.parent / "src"
        assert codes(lint_paths([src], select=["LHT006"])) == []


REGISTRY_REGISTERS_CLEAN = """\
from clean import CleanDHT

def register(name, cls, factory=None, dynamic=False): ...

register("clean", CleanDHT)
"""

REGISTRY_REGISTERS_BY_KEYWORD = """\
from clean import CleanDHT

def register(name, cls, factory=None, dynamic=False): ...

register(name="clean", cls=CleanDHT, dynamic=True)
"""

REGISTRY_EMPTY = """\
def register(name, cls, factory=None, dynamic=False): ...
"""

ABSTRACT_SUBSTRATE_FAMILY = """\
import abc
from kernel import SubstrateBase

class FamilyBaseDHT(SubstrateBase):
    @abc.abstractmethod
    def route(self, key): ...
"""


class TestRegistryEnrollmentRule:
    """LHT012: every concrete SubstrateBase subclass in the dht package
    must appear in a ``register(...)`` call in the registry."""

    def _write_pkg(self, tmp_path, **files: str) -> Path:
        pkg = tmp_path / "dht"
        pkg.mkdir()
        (pkg / "base.py").write_text(BASE_SRC)
        (pkg / "kernel.py").write_text(KERNEL_SRC)
        for name, src in files.items():
            (pkg / f"{name}.py").write_text(src)
        return pkg

    def test_registered_substrate_is_clean(self, tmp_path):
        pkg = self._write_pkg(
            tmp_path,
            clean=CLEAN_KERNEL_SUBSTRATE,
            registry=REGISTRY_REGISTERS_CLEAN,
        )
        assert codes(lint_paths([pkg], select=["LHT012"])) == []

    def test_keyword_registration_is_clean(self, tmp_path):
        pkg = self._write_pkg(
            tmp_path,
            clean=CLEAN_KERNEL_SUBSTRATE,
            registry=REGISTRY_REGISTERS_BY_KEYWORD,
        )
        assert codes(lint_paths([pkg], select=["LHT012"])) == []

    def test_unregistered_substrate_flagged(self, tmp_path):
        pkg = self._write_pkg(
            tmp_path,
            clean=CLEAN_KERNEL_SUBSTRATE,
            registry=REGISTRY_EMPTY,
        )
        violations = lint_paths([pkg], select=["LHT012"])
        assert len(violations) == 1
        assert "CleanDHT" in violations[0].message
        assert "register" in violations[0].message

    def test_rule_dormant_without_a_registry_module(self, tmp_path):
        # Linting a substrate file on its own (no registry.py in the
        # parse set) must not produce false positives.
        pkg = self._write_pkg(tmp_path, clean=CLEAN_KERNEL_SUBSTRATE)
        assert codes(lint_paths([pkg], select=["LHT012"])) == []

    def test_abstract_intermediates_exempt(self, tmp_path):
        pkg = self._write_pkg(
            tmp_path,
            family=ABSTRACT_SUBSTRATE_FAMILY,
            registry=REGISTRY_EMPTY,
        )
        assert codes(lint_paths([pkg], select=["LHT012"])) == []

    def test_wrappers_exempt(self, tmp_path):
        # DelegatingDHT wrappers never reach SubstrateBase, so they are
        # not substrates and need no enrollment.
        pkg = self._write_pkg(
            tmp_path, wrapper=KERNEL_WRAPPER, registry=REGISTRY_EMPTY
        )
        assert codes(lint_paths([pkg], select=["LHT012"])) == []

    def test_real_tree_is_clean(self):
        src = Path(__file__).parent.parent / "src"
        assert codes(lint_paths([src], select=["LHT012"])) == []


class TestNoqaSuppression:
    def test_blanket_noqa(self, tmp_path):
        src = "def f(x=[]):  # noqa\n    return x\n"
        assert lint_at(src, "pkg/mod.py", tmp_path) == []

    def test_code_specific_noqa(self, tmp_path):
        src = "def f(x=[]):  # noqa: LHT004\n    return x\n"
        assert lint_at(src, "pkg/mod.py", tmp_path) == []

    def test_wrong_code_noqa_does_not_suppress(self, tmp_path):
        src = "def f(x=[]):  # noqa: LHT001\n    return x\n"
        assert lint_at(src, "pkg/mod.py", tmp_path) == ["LHT004"]


class TestLintAnalyzerInterplay:
    """Lint and the whole-program analyzer flagging the *same line*.

    One line carries an LHT004 (mutable default — lint's finding) and a
    call into a tainted helper (LHT007 — the analyzer's finding).  Each
    tool honours only its own codes in a ``# noqa`` list, so the codes
    suppress independently and a combined list silences both.
    """

    SINK_HELPER = (
        "import time\n\n"
        "def helper():\n"
        "    return time.perf_counter()\n"
    )

    def _write(self, tmp_path: Path, noqa: str) -> Path:
        (tmp_path / "util").mkdir(parents=True, exist_ok=True)
        (tmp_path / "util" / "timing.py").write_text(self.SINK_HELPER)
        core = tmp_path / "core"
        core.mkdir(parents=True, exist_ok=True)
        (core / "tick.py").write_text(
            "from util.timing import helper\n\n"
            f"def tick(log=[]): return helper(){noqa}\n"
        )
        return tmp_path

    def _both(self, tmp_path: Path) -> tuple[list[str], list[str]]:
        from repro.devtools.flow import analyze_paths

        lint = codes(lint_paths([tmp_path / "core" / "tick.py"]))
        flow = codes(analyze_paths([tmp_path]))
        return lint, flow

    def test_both_tools_flag_the_same_line(self, tmp_path):
        self._write(tmp_path, "")
        lint, flow = self._both(tmp_path)
        assert lint == ["LHT004"]
        assert flow == ["LHT007"]

    def test_noqa_codes_suppress_independently(self, tmp_path):
        self._write(tmp_path, "  # noqa: LHT004")
        lint, flow = self._both(tmp_path)
        assert lint == []
        assert flow == ["LHT007"]  # the other tool's finding survives

    def test_combined_noqa_list_silences_both(self, tmp_path):
        self._write(tmp_path, "  # noqa: LHT004, LHT007")
        lint, flow = self._both(tmp_path)
        assert lint == []
        assert flow == []


class TestJsonFormat:
    def test_json_report_shape(self, tmp_path, capsys):
        import json

        bad = tmp_path / "core" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\nrandom.seed(0)\n")
        assert main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro.devtools.lint"
        assert payload["counts"] == {"LHT002": 1}
        violation = payload["violations"][0]
        assert violation["code"] == "LHT002"
        assert violation["line"] == 2
        assert violation["path"].endswith("mod.py")

    def test_json_clean_tree_exits_zero(self, tmp_path, capsys):
        import json

        good = tmp_path / "core" / "ok.py"
        good.parent.mkdir()
        good.write_text("X = 1\n")
        assert main([str(good), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert payload["files"] == 1


class TestDriver:
    def test_syntax_error_reported_not_crashed(self):
        violations = lint_source("def broken(:\n", "pkg/mod.py")
        assert codes(violations) == ["E999"]

    def test_select_and_ignore(self, tmp_path):
        src = "import random\n\ndef f(x=[]):\n    assert random.random()\n"
        file = tmp_path / "sim" / "mod.py"
        file.parent.mkdir()
        file.write_text(src)
        all_codes = set(codes(lint_paths([file])))
        assert all_codes == {"LHT002", "LHT003", "LHT004"}
        only = lint_paths([file], select=["LHT003"])
        assert codes(only) == ["LHT003"]
        without = lint_paths([file], ignore=["LHT003", "LHT004"])
        assert codes(without) == ["LHT002"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "core" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("import random\nrandom.seed(0)\n")
        assert main([str(bad)]) == 1
        assert "LHT002" in capsys.readouterr().out
        good = tmp_path / "core" / "ok.py"
        good.write_text("X = 1\n")
        assert main([str(good)]) == 0

    def test_missing_path_is_an_error_not_a_green_gate(self, tmp_path, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no such file"):
            lint_paths([tmp_path / "nope"])
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_code_rejected(self, tmp_path, capsys):
        from repro.errors import ConfigurationError

        target = tmp_path / "mod.py"
        target.write_text("X = 1\n")
        with pytest.raises(ConfigurationError, match="unknown rule code"):
            lint_paths([target], select=["LHT999"])
        assert main([str(target), "--select", "LHT999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in LINT_RULES:
            assert code in out


class TestRepoGate:
    def test_repo_source_tree_is_clean(self):
        """The acceptance gate: the repo's own src/ has zero violations."""
        violations = lint_paths([REPO_SRC])
        assert violations == [], "\n".join(v.format() for v in violations)

    @pytest.mark.parametrize("code", sorted(LINT_RULES))
    def test_rule_catalogue_documented(self, code):
        assert LINT_RULES[code]
