"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core import IndexConfig, LHTIndex, ReferenceTree
from repro.dht import LocalDHT

# Simulation-heavy property tests routinely exceed hypothesis' default
# 200ms deadline; disable it and cap example counts for CI friendliness.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
# CI runs derandomized: the example sequence is a pure function of each
# test, so a red CI leg reproduces locally with HYPOTHESIS_PROFILE=ci
# instead of depending on a lucky draw.
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=50,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def assert_deterministic():
    """Factory fixture: assert a seeded workload replays bit-identically.

    Usage::

        def test_chord_is_deterministic(assert_deterministic):
            assert_deterministic(substrate="chord", seed=7, n_ops=200)

    Wraps :func:`repro.devtools.determinism.check_determinism` and fails
    with the first diverging trace line on mismatch.
    """
    from repro.devtools.determinism import check_determinism

    def _assert(seed: int = 0, substrate: str = "local", **kwargs):
        report = check_determinism(seed=seed, substrate=substrate, **kwargs)
        assert report.matched, report.summary()
        return report

    return _assert


@pytest.fixture
def small_config() -> IndexConfig:
    """A small split threshold so trees grow quickly in tests."""
    return IndexConfig(theta_split=8, max_depth=20)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test workloads."""
    return np.random.default_rng(12345)


def build_lht(
    keys: list[float],
    theta_split: int = 8,
    max_depth: int = 20,
    n_peers: int = 32,
    seed: int = 0,
    merge_enabled: bool = False,
) -> tuple[LHTIndex, LocalDHT]:
    """Build an LHT over a LocalDHT from a key list (test helper)."""
    config = IndexConfig(
        theta_split=theta_split, max_depth=max_depth, merge_enabled=merge_enabled
    )
    dht = LocalDHT(n_peers=n_peers, seed=seed)
    index = LHTIndex(dht, config)
    for key in keys:
        index.insert(key)
    return index, dht


def build_reference(
    keys: list[float], theta_split: int = 8, max_depth: int = 20
) -> ReferenceTree:
    """Build the centralized oracle from the same key list."""
    tree = ReferenceTree(IndexConfig(theta_split=theta_split, max_depth=max_depth))
    for key in keys:
        tree.insert(key)
    return tree
