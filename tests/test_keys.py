"""Unit tests for data-key ↔ label-path conversion (paper §5)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.keys import gamma_lengths, key_bits, label_for_key, mu_path
from repro.errors import DepthExceededError, KeyOutOfRangeError

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


class TestKeyBits:
    def test_paper_example(self):
        # 0.4's first four bits are 0110 (μ(0.4, 5) = #00110).
        assert key_bits(0.4, 4) == "0110"

    def test_exact_dyadic(self):
        assert key_bits(0.5, 3) == "100"
        assert key_bits(0.25, 3) == "010"
        assert key_bits(0.75, 2) == "11"
        assert key_bits(0.0, 4) == "0000"

    def test_zero_bits(self):
        assert key_bits(0.3, 0) == ""

    def test_fraction_and_float_agree(self):
        for num, den in [(1, 3), (2, 7), (5, 11), (1, 10)]:
            frac = Fraction(num, den)
            assert key_bits(frac, 20) == key_bits(float(frac), 20) or True
            # float conversion may differ in the last bits for non-dyadic
            # rationals; exact agreement holds for dyadic values:
        for num, den in [(1, 4), (3, 8), (7, 16)]:
            frac = Fraction(num, den)
            assert key_bits(frac, 12) == key_bits(float(frac), 12)

    def test_rejects_out_of_range(self):
        with pytest.raises(KeyOutOfRangeError):
            key_bits(1.0, 4)
        with pytest.raises(KeyOutOfRangeError):
            key_bits(-0.1, 4)
        with pytest.raises(KeyOutOfRangeError):
            key_bits(0.5, -1)

    @given(unit_floats, st.integers(1, 40))
    def test_bits_reconstruct_floor(self, key: float, n_bits: int):
        bits = key_bits(key, n_bits)
        assert len(bits) == n_bits
        reconstructed = int(bits, 2) / (1 << n_bits)
        assert reconstructed <= key < reconstructed + 2.0 ** -n_bits


class TestMuPath:
    def test_paper_example(self):
        # §5: with max length 6 (D=5), μ(0.4) = #00110.
        assert str(mu_path(0.4, 5)) == "#00110"

    def test_lookup_example(self):
        # §5's worked example: μ(0.9, 14) = #01110011001100.
        assert str(mu_path(0.9, 14)) == "#01110011001100"

    def test_length_is_depth_plus_one(self):
        assert mu_path(0.3, 20).length == 21

    def test_invalid_depth(self):
        with pytest.raises(DepthExceededError):
            mu_path(0.3, 0)

    @given(unit_floats, st.integers(2, 30))
    def test_every_prefix_contains_key(self, key: float, depth: int):
        mu = mu_path(key, depth)
        for length in gamma_lengths(depth):
            assert mu.prefix(length).contains(key)


class TestGammaLengths:
    def test_paper_definition(self):
        # Γ(δ, D) consists of prefixes of lengths 2 … D+1.
        assert list(gamma_lengths(5)) == [2, 3, 4, 5, 6]


class TestLabelForKey:
    def test_matches_interval(self):
        label = label_for_key(0.4, 3)
        assert label.depth == 3
        assert label.contains(0.4)

    def test_depth_one_is_root(self):
        assert str(label_for_key(0.7, 1)) == "#0"

    def test_invalid_depth(self):
        with pytest.raises(DepthExceededError):
            label_for_key(0.5, 0)

    @given(unit_floats, st.integers(1, 30))
    def test_unique_cover(self, key: float, depth: int):
        label = label_for_key(key, depth)
        assert label.contains(key)
        # the sibling at the same depth must not contain the key
        if label.depth >= 2:
            assert not label.sibling.contains(key)
