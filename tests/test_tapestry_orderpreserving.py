"""Tests for the Tapestry substrate and the order-preserving baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import gini_coefficient
from repro.baselines.orderpreserving import OrderPreservingIndex
from repro.core import IndexConfig, IndexInspector, LHTIndex
from repro.dht.hashing import hash_key
from repro.dht.tapestry import TapestryDHT
from repro.errors import ConfigurationError
from repro.workloads import make_keys


class TestTapestryRouting:
    def test_surrogate_root_is_deterministic(self):
        dht = TapestryDHT(n_peers=30, seed=0)
        for i in range(100):
            key_id = hash(f"k{i}") & 0xFFFFFFFF
            assert dht.surrogate_root(key_id) == dht.surrogate_root(key_id)

    def test_route_agrees_with_surrogate_root(self):
        """Distributed digit-by-digit forwarding must land on the same
        node the global surrogate rule names — from any start."""
        dht = TapestryDHT(n_peers=40, seed=1)
        for i in range(150):
            key = f"k{i}"
            owner = dht.peer_of(key)
            key_id = hash_key(key, dht.id_bits)
            for start in list(dht._nodes)[::7]:
                found, _ = dht.route_id(start, key_id)
                assert found == owner, key

    def test_put_get_remove(self):
        dht = TapestryDHT(n_peers=25, seed=2)
        dht.put("a", "x")
        assert dht.get("a") == "x"
        assert dht.get("missing") is None
        assert dht.remove("a") == "x"

    def test_hops_logarithmic(self):
        dht = TapestryDHT(n_peers=256, seed=3)
        total = 0
        for i in range(100):
            _, hops = dht.route(f"k{i}")
            total += hops
        # O(log_16 N) ≈ 2 for 256 nodes; generous bound.
        assert total / 100 <= 2 * math.log2(256) / 4 + 3

    def test_single_node(self):
        dht = TapestryDHT(n_peers=1, seed=4)
        dht.put("a", 1)
        assert dht.get("a") == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TapestryDHT(n_peers=0)
        with pytest.raises(ConfigurationError):
            TapestryDHT(n_peers=4, id_bits=30, b=4)

    def test_local_write(self):
        dht = TapestryDHT(n_peers=8, seed=5)
        dht.put("k", [1])
        dht.local_write("k", [1, 2])
        assert dht.peek("k") == [1, 2]


class TestLHTOverTapestry:
    def test_index_battery(self):
        dht = TapestryDHT(n_peers=24, seed=0)
        index = LHTIndex(dht, IndexConfig(theta_split=10, max_depth=20))
        keys = [float(k) for k in np.random.default_rng(0).random(400)]
        for key in keys:
            index.insert(key)
        IndexInspector(dht).verify()
        assert index.range_query(0.3, 0.7).keys == sorted(
            k for k in keys if 0.3 <= k < 0.7
        )
        assert index.min_query().dht_lookups == 1


class TestOrderPreserving:
    def test_insert_and_exact_match(self):
        index = OrderPreservingIndex(n_peers=16)
        index.insert(0.42, "v")
        record, cost = index.exact_match(0.42)
        assert record.value == "v" and cost == 1
        record, _ = index.exact_match(0.43)
        assert record is None

    def test_range_walks_contiguous_arc(self):
        index = OrderPreservingIndex(n_peers=10)
        keys = [i / 100 for i in range(100)]
        for key in keys:
            index.insert(key)
        records, lookups = index.range_query(0.25, 0.55)
        assert [r.key for r in records] == [k for k in keys if 0.25 <= k < 0.55]
        # [0.25, 0.55) touches arc owners 2, 3, 4, 5 only
        assert lookups == 4

    def test_empty_range(self):
        index = OrderPreservingIndex(n_peers=8)
        assert index.range_query(0.3, 0.3) == ([], 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OrderPreservingIndex(n_peers=0)

    def test_load_tracks_data_skew(self):
        """The §2 trade-off, measured: order-preserving placement is
        balanced for uniform data but inherits the skew of pareto data,
        while LHT's hashed-bucket placement is skew-independent."""
        rng_u = np.random.default_rng(0)
        rng_p = np.random.default_rng(0)
        uniform = OrderPreservingIndex(n_peers=128)
        pareto = OrderPreservingIndex(n_peers=128)
        for key in make_keys("uniform", 8000, rng_u):
            uniform.insert(float(key))
        for key in make_keys("pareto", 8000, rng_p):
            pareto.insert(float(key))
        gini_uniform = gini_coefficient(list(uniform.peer_loads().values()))
        gini_pareto = gini_coefficient(list(pareto.peer_loads().values()))
        assert gini_uniform < 0.2
        assert gini_pareto > 2 * gini_uniform
