"""Tests for the Chord substrate: routing, membership, stabilization."""

from __future__ import annotations

import math

import pytest

from repro.dht.chord import ChordDHT
from repro.dht.hashing import hash_key
from repro.errors import ConfigurationError, EmptyOverlayError


class TestRouting:
    def test_owner_matches_placement_oracle(self):
        dht = ChordDHT(n_peers=50, seed=3)
        for i in range(300):
            key = f"key-{i}"
            owner, _ = dht.route(key)
            assert owner == dht.peer_of(key)

    def test_routing_from_every_start(self):
        dht = ChordDHT(n_peers=25, seed=1)
        target_key = hash_key("target", dht.id_bits)
        owner = dht.peer_of("target")
        for start in dht.node_ids:
            found, hops = dht.find_successor(start, target_key)
            assert found == owner
            assert hops >= 1

    def test_hops_logarithmic(self):
        dht = ChordDHT(n_peers=256, seed=2)
        total = 0
        n_keys = 200
        for i in range(n_keys):
            _, hops = dht.route(f"k{i}")
            total += hops
        mean_hops = total / n_keys
        # Chord's bound: O(log N); allow a generous constant.
        assert mean_hops <= 2 * math.log2(256)

    def test_single_node_ring(self):
        dht = ChordDHT(n_peers=1, seed=0)
        dht.put("a", 1)
        assert dht.get("a") == 1

    def test_put_get_remove(self):
        dht = ChordDHT(n_peers=20, seed=0)
        dht.put("a", "x")
        assert dht.get("a") == "x"
        assert dht.get("b") is None
        assert dht.remove("a") == "x"
        assert dht.get("a") is None

    def test_ring_is_a_cycle(self):
        ChordDHT(n_peers=40, seed=5).check_ring()


class TestMembership:
    def test_join_takes_over_keys(self):
        dht = ChordDHT(n_peers=10, seed=0)
        for i in range(200):
            dht.put(f"k{i}", i)
        new_id = dht.join()
        dht.stabilize_all(rounds=2)
        dht.check_ring()
        assert dht.n_peers == 11
        # All keys remain reachable, and the new node serves its share.
        for i in range(200):
            assert dht.get(f"k{i}") == i
        assert new_id in dht.peer_loads()

    def test_join_rejects_duplicate_id(self):
        dht = ChordDHT(n_peers=5, seed=0)
        existing = dht.node_ids[0]
        with pytest.raises(ConfigurationError):
            dht.join(existing)

    def test_graceful_leave_hands_off_keys(self):
        dht = ChordDHT(n_peers=10, seed=1)
        for i in range(200):
            dht.put(f"k{i}", i)
        victim = dht.node_ids[3]
        dht.leave(victim, graceful=True)
        dht.stabilize_all(rounds=2)
        dht.check_ring()
        for i in range(200):
            assert dht.get(f"k{i}") == i

    def test_crash_loses_keys_but_ring_recovers(self):
        dht = ChordDHT(n_peers=12, seed=2)
        for i in range(200):
            dht.put(f"k{i}", i)
        loads = dht.peer_loads()
        victim = max(loads, key=loads.get)
        lost = loads[victim]
        assert lost > 0
        dht.fail(victim)
        dht.stabilize_all(rounds=3)
        dht.check_ring()
        alive = sum(1 for i in range(200) if dht.get(f"k{i}") == i)
        assert alive == 200 - lost

    def test_cannot_remove_last_peer(self):
        dht = ChordDHT(n_peers=1, seed=0)
        with pytest.raises(EmptyOverlayError):
            dht.leave(dht.node_ids[0])

    def test_leave_unknown_node_is_noop(self):
        dht = ChordDHT(n_peers=5, seed=0)
        dht.leave(123456789)  # not a member
        assert dht.n_peers == 5

    def test_many_joins_and_leaves_converge(self):
        dht = ChordDHT(n_peers=8, seed=4)
        for _ in range(10):
            dht.join()
        dht.stabilize_all(rounds=3)
        for victim in list(dht.node_ids)[::3]:
            if dht.n_peers > 4:
                dht.leave(victim, graceful=True)
        dht.stabilize_all(rounds=3)
        dht.check_ring()
        # routing still agrees with the placement oracle
        for i in range(100):
            owner, _ = dht.route(f"x{i}")
            assert owner == dht.peer_of(f"x{i}")


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ChordDHT(n_peers=0)
        with pytest.raises(ConfigurationError):
            ChordDHT(n_peers=4, id_bits=4)

    def test_introspection(self):
        dht = ChordDHT(n_peers=6, seed=0)
        dht.put("a", 1)
        assert dht.peek("a") == 1
        assert "a" in list(dht.keys())
        assert sum(dht.peer_loads().values()) == 1
