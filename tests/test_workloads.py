"""Tests for dataset and query-stream generators (paper §9.1, §9.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    DATASETS,
    clustered_keys,
    gaussian_keys,
    lookup_keys,
    make_keys,
    pareto_keys,
    random_ranges,
    span_ranges,
    uniform_keys,
)


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestDatasets:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_all_keys_in_unit_interval(self, name):
        keys = make_keys(name, 5000, _rng())
        assert keys.shape == (5000,)
        assert (keys >= 0.0).all() and (keys < 1.0).all()

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_deterministic_under_seed(self, name):
        a = make_keys(name, 100, _rng(7))
        b = make_keys(name, 100, _rng(7))
        assert (a == b).all()

    def test_unknown_distribution(self):
        with pytest.raises(ConfigurationError):
            make_keys("zeta", 10, _rng())

    def test_negative_size_rejected(self):
        for gen in (uniform_keys, gaussian_keys, pareto_keys, clustered_keys):
            with pytest.raises(ConfigurationError):
                gen(-1, _rng())

    def test_gaussian_moments(self):
        keys = gaussian_keys(50_000, _rng(1))
        # paper's parameters: mean 1/2, std 1/6 (truncation shifts little)
        assert abs(keys.mean() - 0.5) < 0.01
        assert abs(keys.std() - 1 / 6) < 0.01

    def test_uniform_is_flat(self):
        keys = uniform_keys(50_000, _rng(2))
        hist, _ = np.histogram(keys, bins=10, range=(0, 1))
        assert hist.min() > 0.8 * hist.mean()

    def test_pareto_is_skewed_low(self):
        keys = pareto_keys(20_000, _rng(3))
        assert np.median(keys) < 0.5

    def test_clustered_is_multimodal(self):
        keys = clustered_keys(20_000, _rng(4), n_clusters=3, cluster_std=0.01)
        hist, _ = np.histogram(keys, bins=50, range=(0, 1))
        # most bins nearly empty, a few very full
        assert (hist < hist.mean()).sum() > 30

    def test_zero_size(self):
        assert len(uniform_keys(0, _rng())) == 0


class TestQueries:
    def test_lookup_keys(self):
        keys = lookup_keys(100, _rng())
        assert len(keys) == 100
        assert (keys >= 0.0).all() and (keys < 1.0).all()
        with pytest.raises(ConfigurationError):
            lookup_keys(-1, _rng())

    def test_span_ranges(self):
        queries = span_ranges(50, 0.1, _rng())
        assert len(queries) == 50
        for q in queries:
            assert q.span == pytest.approx(0.1)
            assert 0.0 <= q.lo and q.hi <= 1.0 + 1e-12

    def test_span_validation(self):
        with pytest.raises(ConfigurationError):
            span_ranges(10, 0.0, _rng())
        with pytest.raises(ConfigurationError):
            span_ranges(10, 1.5, _rng())

    def test_full_span(self):
        queries = span_ranges(5, 1.0, _rng())
        for q in queries:
            assert q.lo == 0.0 and q.hi == 1.0

    def test_random_ranges(self):
        queries = random_ranges(50, _rng(), max_span=0.3)
        for q in queries:
            assert 0 < q.span <= 0.3 + 1e-12
            assert 0.0 <= q.lo and q.hi <= 1.0 + 1e-12
        with pytest.raises(ConfigurationError):
            random_ranges(5, _rng(), max_span=0.0)
