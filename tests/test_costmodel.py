"""Tests for the linear cost model (paper §8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import IndexConfig, LHTIndex
from repro.baselines.pht import PHTIndex
from repro.costmodel import LinearCostModel, gamma, psi_lht, psi_pht, saving_ratio
from repro.dht import LocalDHT
from repro.errors import ConfigurationError


class TestAnalyticForms:
    def test_equation_1(self):
        # Ψ_LHT = θ/2·i + j
        assert psi_lht(100, i=2.0, j=5.0) == 100.0 + 5.0

    def test_equation_2(self):
        # Ψ_PHT = θ·i + 4j
        assert psi_pht(100, i=2.0, j=5.0) == 200.0 + 20.0

    def test_equation_3_limits(self):
        # γ → 0: 75% saving; γ → ∞: 50% saving.
        assert saving_ratio(0.0) == pytest.approx(0.75)
        assert saving_ratio(1e12) == pytest.approx(0.5, abs=1e-6)

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_equation_3_bounds(self, g):
        # The paper's claim: between 50% and 75% everywhere.
        assert 0.5 < saving_ratio(g) <= 0.75

    @given(
        st.integers(2, 1000),
        st.floats(min_value=0.001, max_value=100),
        st.floats(min_value=0.001, max_value=100),
    )
    def test_equation_3_consistent_with_psi(self, theta, i, j):
        direct = 1.0 - psi_lht(theta, i, j) / psi_pht(theta, i, j)
        assert saving_ratio(gamma(theta, i, j)) == pytest.approx(direct)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            saving_ratio(-1.0)
        with pytest.raises(ConfigurationError):
            gamma(100, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            LinearCostModel(record_move_cost=-1.0)


class TestMeasuredCosts:
    def test_measured_saving_in_paper_band(self):
        rng = np.random.default_rng(0)
        keys = [float(k) for k in rng.random(4000)]
        config = IndexConfig(theta_split=20, max_depth=24)
        lht = LHTIndex(LocalDHT(16, 0), config)
        pht = PHTIndex(LocalDHT(16, 0), config)
        lht.bulk_load(keys)
        pht.bulk_load(keys)
        for g in (0.1, 1.0, 10.0, 100.0):
            model = LinearCostModel(record_move_cost=g / 20, lookup_cost=1.0)
            measured = model.measured_saving_ratio(lht.ledger, pht.ledger)
            assert 0.45 <= measured <= 0.80
            # measured tracks analytic within a loose tolerance
            assert abs(measured - saving_ratio(g)) < 0.1

    def test_ledger_cost(self):
        model = LinearCostModel(record_move_cost=2.0, lookup_cost=3.0)
        lht = LHTIndex(LocalDHT(8, 0), IndexConfig(theta_split=4))
        for key in (0.1, 0.2, 0.3, 0.6):
            lht.insert(key)
        expected = (
            lht.ledger.maintenance_records_moved * 2.0
            + lht.ledger.maintenance_lookups * 3.0
        )
        assert model.ledger_cost(lht.ledger) == expected

    def test_zero_pht_cost_rejected(self):
        model = LinearCostModel()
        lht = LHTIndex(LocalDHT(8, 0), IndexConfig(theta_split=4))
        pht = PHTIndex(LocalDHT(8, 1), IndexConfig(theta_split=4))
        with pytest.raises(ConfigurationError):
            model.measured_saving_ratio(lht.ledger, pht.ledger)
