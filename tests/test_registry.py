"""Registry completeness and contract tests.

The registry (`repro.dht.registry`) is the single enrollment point:
every suite that iterates "all substrates" draws from it.  These tests
close the loop — a concrete ``SubstrateBase`` subclass under
``src/repro/dht/`` that is *not* registered fails here (and trips lint
rule LHT012 statically), so a new overlay cannot silently dodge the
conformance/fault/soak/determinism matrices.  The banked-benchmark
ordering test pins the acceptance criterion of the routing-diversity
study: single-hop routes in exactly 1.0 hops, Koorde strictly between
single-hop and Chord.
"""

from __future__ import annotations

import importlib
import inspect
import json
import pkgutil
from pathlib import Path

import pytest

from repro.dht import ChordDHT
from repro.dht import registry
from repro.dht.kernel import SubstrateBase
from repro.errors import ConfigurationError

import repro.dht


def _all_substrate_classes() -> set[type]:
    """Every concrete SubstrateBase subclass defined in repro.dht."""
    for mod_info in pkgutil.iter_modules(repro.dht.__path__, "repro.dht."):
        importlib.import_module(mod_info.name)
    seen: set[type] = set()
    stack: list[type] = [SubstrateBase]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub not in seen:
                seen.add(sub)
                stack.append(sub)
    return {
        cls
        for cls in seen
        if cls.__module__.startswith("repro.dht") and not inspect.isabstract(cls)
    }


def test_every_substrate_in_src_is_registered():
    expected = _all_substrate_classes()
    registered = {spec.cls for spec in registry.specs()}
    missing = expected - registered
    assert not missing, (
        "SubstrateBase subclasses not enrolled in repro.dht.registry: "
        f"{sorted(c.__name__ for c in missing)}"
    )
    assert registered <= expected, "registry names classes outside repro.dht"


def test_registry_lists_all_eight_substrates():
    assert registry.names() == [
        "can",
        "chord",
        "kademlia",
        "koorde",
        "local",
        "onehop",
        "pastry",
        "tapestry",
    ]


@pytest.mark.parametrize("spec", registry.specs(), ids=lambda s: s.name)
def test_factories_build_working_overlays(spec):
    dht = registry.make(spec.name, 8, 3)
    assert isinstance(dht, spec.cls)
    assert dht.n_peers == 8
    dht.put("probe", {"v": 1})
    assert dht.get("probe") == {"v": 1}
    # The dynamic flag must be truthful: it is what churn-aware suites
    # branch on.  (CAN supports join/leave only; crash-fail is
    # Chord/OneHop-specific.)
    has_membership = all(
        callable(getattr(dht, attr, None)) for attr in ("join", "leave")
    )
    assert spec.dynamic == has_membership


def test_unknown_name_rejected():
    with pytest.raises(ConfigurationError, match="unknown substrate"):
        registry.make("no-such-overlay", 8, 0)


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.register("chord", ChordDHT)


def test_factories_returns_a_defensive_copy():
    copy = registry.factories()
    copy.pop("chord")
    assert "chord" in registry.factories()


def test_banked_hop_metrics_pin_the_routing_extremes():
    """Acceptance criterion of the routing-diversity study, pinned on
    the checked-in benchgate baselines: OneHop routes in exactly 1.0
    hops per op in every phase, and Koorde lands strictly between
    OneHop and Chord."""
    root = Path(__file__).resolve().parents[1]
    for name in ("BENCH_lookup.json", "BENCH_range.json", "BENCH_build.json"):
        metrics = json.loads((root / name).read_text())["metrics"]
        onehop = metrics["hops_per_op_onehop"]
        koorde = metrics["hops_per_op_koorde"]
        chord = metrics["hops_per_op_chord"]
        assert onehop == 1.0, name
        assert onehop < koorde < chord, (name, onehop, koorde, chord)
