"""Tests for the ASCII tree renderer."""

from __future__ import annotations

import numpy as np

from repro.core import IndexConfig, LHTIndex
from repro.core.viz import render_leaf_strip, render_tree
from repro.dht import LocalDHT


def _build(n: int = 200, theta: int = 8) -> LHTIndex:
    index = LHTIndex(LocalDHT(16, 0), IndexConfig(theta_split=theta, max_depth=20))
    for key in np.random.default_rng(0).random(n):
        index.insert(float(key))
    return index


class TestRenderTree:
    def test_single_leaf(self):
        index = LHTIndex(LocalDHT(4, 0), IndexConfig(theta_split=8))
        text = render_tree(index.dht)
        assert "virtual root" in text
        assert "#0" in text and "leaf" in text
        assert "key=#" in text

    def test_every_leaf_listed(self):
        index = _build()
        text = render_tree(index.dht)
        assert text.count("leaf") == index.leaf_count
        for label in index.leaf_labels():
            assert str(label) in text

    def test_depth_cap_elides(self):
        index = _build(n=500, theta=4)
        text = render_tree(index.dht, max_depth=2)
        assert "…" in text

    def test_record_counts_shown(self):
        index = _build(n=50)
        text = render_tree(index.dht)
        total = sum(
            int(part.split("=")[1].split()[0])
            for line in text.splitlines()
            if "n=" in line
            for part in [line[line.index("n=") :]]
        )
        assert total == 50


class TestLeafStrip:
    def test_width_and_scale(self):
        index = _build()
        strip = render_leaf_strip(index.dht, width=40)
        lines = strip.splitlines()
        assert len(lines[0]) == 40
        assert lines[1].startswith("0") and lines[1].endswith("1")

    def test_dense_region_darker(self):
        index = LHTIndex(LocalDHT(8, 0), IndexConfig(theta_split=100))
        # cluster everything near 0.25: that leaf should render darkest
        for key in np.random.default_rng(1).normal(0.25, 0.01, 80):
            if 0 <= key < 1:
                index.insert(float(key))
        strip = render_leaf_strip(index.dht, width=40).splitlines()[0]
        glyph_order = " .:-=+*#%@"
        weights = [glyph_order.index(c) for c in strip]
        assert max(weights[:20]) >= max(weights[20:])
