"""Byte-store semantics: the full index battery over SerializingDHT.

Every value crosses the DHT boundary as pickled bytes, so a fetched
bucket is always a *copy* — any index code that mutated a fetched object
and relied on in-process aliasing to "store" the change would fail here.
Passing this suite is the evidence that LHT and PHT persist every
mutation through an explicit routed put or local write, i.e. that they
would run over a real byte-oriented DHT.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.pht import PHTIndex
from repro.core import IndexConfig, IndexInspector, LHTIndex, ReferenceTree
from repro.dht import ChordDHT, LocalDHT, SerializingDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _lht(theta=8, merge=False, inner=None):
    dht = SerializingDHT(inner or LocalDHT(16, 0))
    config = IndexConfig(theta_split=theta, max_depth=30, merge_enabled=merge)
    return LHTIndex(dht, config), dht


class TestByteStoreBasics:
    def test_fetches_are_copies(self):
        dht = SerializingDHT(LocalDHT(8, 0))
        dht.put("k", [1, 2, 3])
        a = dht.get("k")
        a.append(4)  # mutate the copy
        assert dht.get("k") == [1, 2, 3]  # the store is unaffected

    def test_local_write_persists(self):
        dht = SerializingDHT(LocalDHT(8, 0))
        dht.put("k", [1])
        value = dht.get("k")
        value.append(2)
        dht.local_write("k", value)
        assert dht.get("k") == [1, 2]

    def test_local_write_is_free(self):
        dht = SerializingDHT(LocalDHT(8, 0))
        dht.put("k", [1])
        before = dht.metrics.snapshot()
        dht.local_write("k", [1, 2])
        assert dht.metrics.since(before).dht_lookups == 0

    def test_bytes_accounted(self):
        dht = SerializingDHT(LocalDHT(8, 0))
        dht.put("k", "x" * 100)
        assert dht.bytes_written > 100


class TestLHTOverByteStore:
    @given(st.lists(unit_floats, min_size=1, max_size=200))
    def test_inserts_and_queries(self, keys):
        index, dht = _lht(theta=4)
        tree = ReferenceTree(IndexConfig(theta_split=4, max_depth=30))
        for key in keys:
            index.insert(key)
            tree.insert(key)
        IndexInspector(dht).verify()
        assert IndexInspector(dht).all_keys() == tree.all_keys()
        for key in keys[:30]:
            record, _ = index.exact_match(key)
            assert record is not None
        result = index.range_query(0.2, 0.8)
        assert result.keys == tree.keys_in_range(0.2, 0.8)
        assert index.min_query().record.key == min(keys)
        assert index.max_query().record.key == max(keys)

    @given(
        st.lists(unit_floats, min_size=1, max_size=120),
        st.randoms(use_true_random=False),
    )
    def test_mixed_workload_with_merges(self, keys, rand):
        index, dht = _lht(theta=4, merge=True)
        live: list[float] = []
        for key in keys:
            if live and rand.random() < 0.35:
                victim = live.pop(rand.randrange(len(live)))
                assert index.delete(victim).deleted
            else:
                index.insert(key)
                live.append(key)
        IndexInspector(dht).verify()
        assert IndexInspector(dht).all_keys() == sorted(live)

    def test_bulk_load_over_byte_store(self):
        index, dht = _lht(theta=8)
        keys = [float(k) for k in np.random.default_rng(0).random(800)]
        index.bulk_load(keys)
        IndexInspector(dht).verify()
        assert IndexInspector(dht).all_keys() == sorted(keys)

    def test_costs_identical_to_object_store(self):
        """Serialization must not change any count the paper measures."""
        keys = [float(k) for k in np.random.default_rng(1).random(1000)]
        config = IndexConfig(theta_split=8, max_depth=30)
        plain = LHTIndex(LocalDHT(16, 0), config)
        boxed = LHTIndex(SerializingDHT(LocalDHT(16, 0)), config)
        for key in keys:
            plain.insert(key)
            boxed.insert(key)
        assert (
            plain.ledger.maintenance_lookups == boxed.ledger.maintenance_lookups
        )
        assert plain.dht.metrics.dht_lookups == boxed.dht.metrics.dht_lookups

    def test_over_serialized_chord(self):
        index, dht = _lht(theta=8, inner=ChordDHT(n_peers=16, seed=0))
        keys = [float(k) for k in np.random.default_rng(2).random(300)]
        for key in keys:
            index.insert(key)
        IndexInspector(dht).verify()
        assert index.range_query(0.0, 1.0).keys == sorted(keys)


class TestPHTOverByteStore:
    @given(st.lists(unit_floats, min_size=1, max_size=150))
    def test_inserts_and_queries(self, keys):
        dht = SerializingDHT(LocalDHT(16, 0))
        index = PHTIndex(dht, IndexConfig(theta_split=4, max_depth=30))
        for key in keys:
            index.insert(key)
        for key in keys[:30]:
            record, _ = index.exact_match(key)
            assert record is not None
        expected = sorted(k for k in keys if 0.1 <= k < 0.9)
        assert index.range_query_sequential(0.1, 0.9).keys == expected
        assert index.range_query_parallel(0.1, 0.9).keys == expected

    def test_delete_persists(self):
        dht = SerializingDHT(LocalDHT(16, 0))
        index = PHTIndex(dht, IndexConfig(theta_split=8))
        index.insert(0.3)
        index.delete(0.3)
        record, _ = index.exact_match(0.3)
        assert record is None
