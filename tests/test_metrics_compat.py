"""Snapshot compatibility: counters accrete, old snapshots keep working.

The recorder has grown counters over the project's life (substrate →
resilience → cache).  Experiments and checked-in benchmark baselines
hold snapshots taken *before* a counter existed, so every piece of
snapshot arithmetic must read a missing counter as 0 instead of raising.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

from repro.dht.metrics import MetricsRecorder, MetricsSnapshot


class _LegacySnapshot:
    """Duck-typed stand-in for a snapshot pickled before the cache (and
    resilience) counters existed: it carries only the original fields."""

    def __init__(self, **counters: int) -> None:
        self.dht_lookups = counters.get("dht_lookups", 0)
        self.gets = counters.get("gets", 0)
        self.puts = counters.get("puts", 0)
        self.removes = counters.get("removes", 0)
        self.hops = counters.get("hops", 0)


class TestSnapshotArithmetic:
    def test_subtraction_tolerates_missing_counters(self):
        recorder = MetricsRecorder()
        recorder.record_get(hops=2, found=True)
        recorder.record_cache_hit()
        now = recorder.snapshot()
        old = _LegacySnapshot(dht_lookups=0, gets=0)
        delta = now - old  # legacy operand: missing fields read as 0
        assert delta.gets == 1
        assert delta.cache_hits == 1
        assert delta.hops == 2

    def test_since_accepts_pre_cache_snapshot(self):
        recorder = MetricsRecorder()
        baseline = _LegacySnapshot()
        recorder.record_cache_miss()
        recorder.record_cache_stale()
        delta = recorder.since(baseline)
        assert delta.cache_misses == 1 and delta.cache_stale == 1

    def test_delta_is_an_alias_of_since(self):
        recorder = MetricsRecorder()
        snap = recorder.snapshot()
        recorder.record_get(hops=1, found=False)
        assert recorder.delta(snap) == recorder.since(snap)
        assert recorder.delta(snap).failed_gets == 1

    def test_self_subtraction_is_zero(self):
        recorder = MetricsRecorder()
        recorder.record_put(hops=3)
        snap = recorder.snapshot()
        zero = snap - snap
        assert all(getattr(zero, f.name) == 0 for f in fields(zero))


class TestSnapshotSerialization:
    def test_round_trip(self):
        recorder = MetricsRecorder()
        recorder.record_get(hops=1, found=True)
        recorder.record_cache_hit()
        snap = recorder.snapshot()
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap

    def test_from_dict_defaults_missing_counters_to_zero(self):
        # A baseline JSON written before the cache counters existed.
        legacy = {"dht_lookups": 7, "gets": 5, "puts": 2}
        snap = MetricsSnapshot.from_dict(legacy)
        assert snap.gets == 5
        assert snap.cache_hits == 0 and snap.cache_stale == 0

    def test_from_dict_ignores_unknown_counters(self):
        # A baseline written by a *newer* version with extra counters.
        data = {"gets": 3, "warp_drive_engaged": 42}
        snap = MetricsSnapshot.from_dict(data)
        assert snap.gets == 3
        assert not hasattr(snap, "warp_drive_engaged")

    def test_from_dict_coerces_to_int(self):
        snap = MetricsSnapshot.from_dict({"gets": 3.0})
        assert snap.gets == 3 and isinstance(snap.gets, int)

    def test_to_dict_covers_every_field(self):
        snap = MetricsRecorder().snapshot()
        assert set(snap.to_dict()) == {f.name for f in fields(snap)}


class TestCacheCounters:
    def test_cache_counters_recorded_and_reset(self):
        recorder = MetricsRecorder()
        recorder.record_cache_hit()
        recorder.record_cache_hit()
        recorder.record_cache_miss()
        recorder.record_cache_stale()
        snap = recorder.snapshot()
        assert (snap.cache_hits, snap.cache_misses, snap.cache_stale) == (
            2,
            1,
            1,
        )
        recorder.reset()
        fresh = recorder.snapshot()
        assert fresh.cache_hits == fresh.cache_misses == fresh.cache_stale == 0

    def test_cache_counters_charge_no_routed_traffic(self):
        recorder = MetricsRecorder()
        recorder.record_cache_hit()
        recorder.record_cache_miss()
        recorder.record_cache_stale()
        snap = recorder.snapshot()
        assert snap.dht_lookups == 0 and snap.gets == 0

    def test_recorder_missing_attribute_reads_zero(self):
        # An older recorder (no cache slots) must still snapshot cleanly.
        recorder = MetricsRecorder()
        object.__delattr__(recorder, "cache_stale")
        snap = recorder.snapshot()
        assert snap.cache_stale == 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
