"""Smoke tests for the example scripts.

The lightest example runs end-to-end in a subprocess; the rest are
compiled and import-checked so a refactor can't silently break them
(their full runs are exercised manually / in docs, not per-CI, because
they build multi-thousand-record indexes).
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "media_library_range_search.py",
        "p2p_database_minmax.py",
        "churn_resilience.py",
        "multidim_geosearch.py",
        "deployment_stack.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path: Path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "min key" in result.stdout
    assert "average split fraction alpha" in result.stdout
