"""Unit tests for dyadic intervals and query ranges."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.interval import DyadicInterval, Range, UNIT_INTERVAL
from repro.errors import LabelError

intervals = st.integers(0, 12).flatmap(
    lambda level: st.integers(0, (1 << level) - 1).map(
        lambda num: DyadicInterval(num, level)
    )
)


class TestDyadicInterval:
    def test_unit_interval(self):
        assert UNIT_INTERVAL.low == 0
        assert UNIT_INTERVAL.high == 1
        assert UNIT_INTERVAL.width == 1

    def test_validation(self):
        with pytest.raises(LabelError):
            DyadicInterval(0, -1)
        with pytest.raises(LabelError):
            DyadicInterval(4, 2)  # numerator out of range
        with pytest.raises(LabelError):
            DyadicInterval(-1, 2)

    def test_endpoints(self):
        interval = DyadicInterval(3, 3)  # [3/8, 4/8)
        assert interval.low == Fraction(3, 8)
        assert interval.high == Fraction(1, 2)
        assert interval.low_float == 0.375
        assert interval.high_float == 0.5
        assert interval.midpoint == Fraction(7, 16)

    def test_contains_half_open(self):
        interval = DyadicInterval(1, 2)  # [0.25, 0.5)
        assert interval.contains(0.25)
        assert interval.contains(0.4999)
        assert not interval.contains(0.5)
        assert not interval.contains(0.2)

    def test_halves(self):
        left = UNIT_INTERVAL.left_half()
        right = UNIT_INTERVAL.right_half()
        assert left.high == right.low == Fraction(1, 2)
        assert left.low == 0 and right.high == 1

    def test_encloses(self):
        parent = DyadicInterval(1, 1)  # [0.5, 1)
        assert parent.encloses(DyadicInterval(2, 2))  # [0.5, 0.75)
        assert parent.encloses(parent)
        assert not parent.encloses(DyadicInterval(1, 2))  # [0.25, 0.5)
        assert not DyadicInterval(2, 2).encloses(parent)

    def test_overlaps_and_covered_by(self):
        interval = DyadicInterval(1, 2)  # [0.25, 0.5)
        assert interval.overlaps(Range(0.3, 0.4))
        assert interval.overlaps(Range(0.0, 0.26))
        assert not interval.overlaps(Range(0.5, 0.7))
        assert not interval.overlaps(Range(0.1, 0.25))
        assert interval.covered_by(Range(0.25, 0.5))
        assert interval.covered_by(Range(0.0, 1.0))
        assert not interval.covered_by(Range(0.3, 1.0))

    def test_to_range(self):
        rng = DyadicInterval(1, 2).to_range()
        assert rng.lo == Fraction(1, 4) and rng.hi == Fraction(1, 2)

    @given(intervals)
    def test_halves_partition(self, interval: DyadicInterval):
        left, right = interval.left_half(), interval.right_half()
        assert left.low == interval.low
        assert left.high == right.low == interval.midpoint
        assert right.high == interval.high

    @given(intervals)
    def test_width_matches_level(self, interval: DyadicInterval):
        assert interval.width == Fraction(1, 1 << interval.level)


class TestRange:
    def test_accepts_floats_and_fractions(self):
        rng = Range(0.25, Fraction(1, 2))
        assert rng.lo == Fraction(1, 4)
        assert rng.hi == Fraction(1, 2)
        assert rng.span == Fraction(1, 4)

    def test_validation(self):
        with pytest.raises(LabelError):
            Range(0.5, 0.4)
        with pytest.raises(LabelError):
            Range(-0.1, 0.5)
        with pytest.raises(LabelError):
            Range(0.5, 1.5)

    def test_empty(self):
        assert Range(0.3, 0.3).is_empty
        assert not Range(0.3, 0.30001).is_empty

    def test_contains_half_open(self):
        rng = Range(0.2, 0.6)
        assert rng.contains(0.2)
        assert rng.contains(0.5999)
        assert not rng.contains(0.6)
        assert not rng.contains(0.1)

    def test_intersect(self):
        rng = Range(0.2, 0.6).intersect(DyadicInterval(1, 1))  # [0.5, 1)
        assert rng.lo == Fraction(1, 2) and rng.hi == Fraction(0.6)

    def test_str(self):
        assert "0.2" in str(Range(0.2, 0.6))
