"""Tests for workload traces, the replayer, and access logging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pht import PHTIndex
from repro.core import IndexConfig, IndexInspector, LHTIndex
from repro.dht import AccessLoggingDHT, LocalDHT
from repro.errors import ConfigurationError
from repro.workloads import (
    Operation,
    OpType,
    WorkloadTrace,
    generate_trace,
    replay,
)


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestTraceGeneration:
    def test_length_and_counts(self):
        trace = generate_trace(500, _rng())
        assert len(trace) == 500
        counts = trace.counts()
        assert sum(counts.values()) == 500
        assert counts[OpType.INSERT] > counts[OpType.DELETE]

    def test_deletes_target_live_keys(self):
        trace = generate_trace(400, _rng(1))
        live: set[float] = set()
        for operation in trace:
            if operation.op is OpType.INSERT:
                live.add(operation.key)
            elif operation.op is OpType.DELETE:
                assert operation.key in live
                live.discard(operation.key)

    def test_range_ops_have_bounds(self):
        trace = generate_trace(
            300, _rng(2), mix={OpType.RANGE: 1.0}, range_span=0.1
        )
        for operation in trace:
            # with no live keys, forced inserts can appear; ranges must
            # carry a valid hi bound
            if operation.op is OpType.RANGE:
                assert operation.hi is not None
                assert operation.hi - operation.key == pytest.approx(0.1)

    def test_deterministic(self):
        a = generate_trace(100, _rng(3)).operations
        b = generate_trace(100, _rng(3)).operations
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_trace(-1, _rng())
        with pytest.raises(ConfigurationError):
            generate_trace(10, _rng(), mix={OpType.INSERT: 0.0})


class TestReplay:
    def test_replay_against_lht_and_pht(self):
        trace = generate_trace(800, _rng(4))
        lht = LHTIndex(
            LocalDHT(16, 0),
            IndexConfig(theta_split=8, max_depth=24, merge_enabled=True),
        )
        pht = PHTIndex(LocalDHT(16, 0), IndexConfig(theta_split=8, max_depth=24))
        lht_totals = replay(lht, trace)
        pht_totals = replay(pht, trace)
        # both indexes end with the same record count
        assert len(lht) == len(pht)
        assert lht_totals["n_insert"] == pht_totals["n_insert"]
        # distributed state stays consistent after the mixed workload
        IndexInspector(lht.dht).verify()
        # the paper's maintenance advantage persists under deletion
        if pht_totals["maintenance_lookups"]:
            ratio = (
                lht_totals["maintenance_lookups"]
                / pht_totals["maintenance_lookups"]
            )
            assert ratio < 0.5

    def test_replay_totals_structure(self):
        trace = WorkloadTrace(
            [
                Operation(OpType.INSERT, 0.5),
                Operation(OpType.LOOKUP, 0.5),
                Operation(OpType.RANGE, 0.2, 0.8),
                Operation(OpType.DELETE, 0.5),
            ]
        )
        index = LHTIndex(LocalDHT(8, 0), IndexConfig(theta_split=8))
        totals = replay(index, trace)
        assert totals["n_insert"] == 1
        assert totals["n_delete"] == 1
        assert totals["insert"] > 0 and totals["range"] > 0


class TestAccessLogging:
    def test_counts_routed_ops(self):
        dht = AccessLoggingDHT(LocalDHT(16, 0))
        dht.put("a", 1)
        dht.get("a")
        dht.get("a")
        dht.remove("a")
        assert dht.key_accesses["a"] == 4
        assert dht.hottest_keys(1) == [("a", 4)]

    def test_peek_not_logged(self):
        dht = AccessLoggingDHT(LocalDHT(16, 0))
        dht.put("a", 1)
        dht.peek("a")
        assert dht.key_accesses["a"] == 1

    def test_peer_accesses_sum(self):
        dht = AccessLoggingDHT(LocalDHT(16, 0))
        for i in range(20):
            dht.put(f"k{i}", i)
        assert sum(dht.peer_accesses().values()) == 20

    def test_reset(self):
        dht = AccessLoggingDHT(LocalDHT(16, 0))
        dht.put("a", 1)
        dht.reset_log()
        assert not dht.key_accesses

    def test_lht_hot_keys_are_structural(self):
        """Min/max traffic concentrates on '#' and '#0' — the E21 story."""
        dht = AccessLoggingDHT(LocalDHT(32, 0))
        index = LHTIndex(dht, IndexConfig(theta_split=8, max_depth=20))
        for key in np.random.default_rng(5).random(500):
            index.insert(float(key))
        dht.reset_log()
        for _ in range(25):
            index.min_query()
            index.max_query()
        hot = dict(dht.hottest_keys(2))
        assert hot.get("#") == 25
        assert hot.get("#0") == 25


class TestNewExperiments:
    def test_churn_workload(self):
        from repro.experiments import churn_workload

        (result,) = churn_workload.run("ci", seed=0)
        lht = result.series_by_label("lht")
        pht = result.series_by_label("pht")
        assert lht.y[0] < pht.y[0]  # maintenance lookups
        assert lht.y[1] < pht.y[1]  # records moved

    def test_hotspots(self):
        from repro.experiments import hotspots

        (result,) = hotspots.run("ci", seed=0)
        series = result.series_by_label("lht")
        peer_gini, key_gini, hottest_share = series.y
        assert 0.0 <= peer_gini <= 1.0
        assert 0.0 <= key_gini <= 1.0
        assert 0.0 < hottest_share < 0.5
        assert "#" in result.notes

    def test_ablation_experiment(self):
        from repro.experiments import ablation_lookup

        (result,) = ablation_lookup.run("ci", seed=0)
        binary = result.series_by_label("lht-binary")
        linear = result.series_by_label("lht-linear")
        pht_binary = result.series_by_label("pht-binary")
        assert sum(binary.y) < sum(linear.y)
        assert sum(binary.y) < sum(pht_binary.y)
