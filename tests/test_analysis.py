"""Tests for the statistics toolkit."""

from __future__ import annotations

import pytest

from repro.analysis import Aggregate, aggregate, gini_coefficient, powers_of_two
from repro.errors import ConfigurationError


class TestAggregate:
    def test_basic(self):
        agg = aggregate([1.0, 2.0, 3.0, 4.0])
        assert agg.n == 4
        assert agg.mean == 2.5
        assert agg.minimum == 1.0 and agg.maximum == 4.0
        assert agg.std == pytest.approx(1.2909944, rel=1e-6)

    def test_single_value(self):
        agg = aggregate([7.0])
        assert agg.std == 0.0
        assert agg.sem == 0.0
        assert agg.ci95_half_width == 0.0

    def test_sem_and_ci(self):
        agg = aggregate([0.0, 2.0])
        assert agg.sem == pytest.approx(1.0)
        assert agg.ci95_half_width == pytest.approx(1.96)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate([])


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_perfect_inequality(self):
        value = gini_coefficient([0] * 99 + [100])
        assert value == pytest.approx(0.99, abs=0.01)

    def test_known_value(self):
        # For [1, 3]: Gini = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)

    def test_all_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            gini_coefficient([])
        with pytest.raises(ConfigurationError):
            gini_coefficient([1, -1])


class TestPowersOfTwo:
    def test_basic(self):
        assert powers_of_two(0, 3) == [1, 2, 4, 8]

    def test_single(self):
        assert powers_of_two(5, 5) == [32]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            powers_of_two(5, 4)
