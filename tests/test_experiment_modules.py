"""Smoke tests for the heavier experiment modules at reduced scale.

Each module's ``_SCALES`` table is monkeypatched with a tiny grid so the
full code path (sweeps, aggregation, series assembly, shape notes) runs
in milliseconds; the CI-scale defaults are exercised by the benchmark
suite and the runner CLI.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_lookup,
    churn_study,
    fig6_alpha,
    fig7_maintenance,
    fig8_lookup,
    minmax_cost,
    range_perf,
    substrates,
)


@pytest.fixture
def tiny(monkeypatch):
    """Shrink every experiment's scale table to a toy grid."""
    monkeypatch.setitem(
        fig6_alpha._SCALES,
        "tiny",
        {"exps": (7, 9), "trials": 2, "fixed_size_exp": 8},
    )
    monkeypatch.setitem(
        fig7_maintenance._SCALES, "tiny", {"exps": (7, 9), "trials": 2}
    )
    monkeypatch.setitem(
        fig8_lookup._SCALES,
        "tiny",
        {"exps": (7, 9), "trials": 2, "n_lookups": 30},
    )
    monkeypatch.setitem(
        range_perf._SCALES,
        "tiny",
        {
            "exps": (7, 9),
            "trials": 1,
            "n_queries": 10,
            "fixed_size_exp": 8,
            "size_sweep_span": 0.1,
            "spans": [0.05, 0.2],
        },
    )
    monkeypatch.setitem(
        ablation_lookup._SCALES,
        "tiny",
        {"exps": (7, 8), "trials": 1, "n_lookups": 30},
    )
    monkeypatch.setitem(
        minmax_cost._SCALES, "tiny", {"exps": (7, 9), "trials": 2}
    )
    monkeypatch.setitem(
        substrates._SCALES,
        "tiny",
        {"n_peers": [8, 16], "size": 1 << 8, "n_lookups": 10},
    )
    monkeypatch.setitem(
        churn_study._SCALES,
        "tiny",
        {"n_peers": 16, "size": 1 << 8, "duration": 5.0, "probes": 30},
    )
    return "tiny"


class TestFig6(object):
    def test_alpha_curves(self, tiny):
        e1, e2 = fig6_alpha.run(tiny, seed=0)
        assert e1.experiment_id == "E1" and e2.experiment_id == "E2"
        # alpha stays within sane bounds wherever splits occurred
        # (NaN marks checkpoints before the first split at large θ)
        import math

        for series in e1.series:
            assert all(0.4 < y < 0.7 for y in series.y if not math.isnan(y))
        assert len(e2.series_by_label("uniform").y) == 7


class TestFig7(object):
    def test_monotone_cumulative_costs(self, tiny):
        e3, e4 = fig7_maintenance.run(tiny, seed=0)
        for result in (e3, e4):
            for series in result.series:
                assert series.y == sorted(series.y)  # cumulative => monotone
        lht = e4.series_by_label("lht/uniform").y[-1]
        pht = e4.series_by_label("pht/uniform").y[-1]
        assert lht < pht


class TestFig8(object):
    def test_lht_below_pht(self, tiny):
        e5, e6 = fig8_lookup.run(tiny, seed=0)
        for result in (e5, e6):
            lht = sum(result.series_by_label("lht").y)
            pht = sum(result.series_by_label("pht").y)
            assert lht < pht
            assert "saving ratio" in result.notes


class TestRangePerf(object):
    def test_all_four_results(self, tiny):
        results = range_perf.run(tiny, seed=0)
        assert [r.experiment_id for r in results] == ["E7", "E8", "E9", "E10"]
        e7, e8, e9, e10 = results
        # bandwidth ordering at the widest span point
        par = e8.series_by_label("pht-par/uniform").y[-1]
        lht = e8.series_by_label("lht/uniform").y[-1]
        assert lht < par
        # latency: sequential is the worst at the widest span
        seq = e10.series_by_label("pht-seq/uniform").y[-1]
        lht_lat = e10.series_by_label("lht/uniform").y[-1]
        assert lht_lat < seq


class TestOthers(object):
    def test_ablation(self, tiny):
        (result,) = ablation_lookup.run(tiny, seed=0)
        assert len(result.series) == 4

    def test_minmax(self, tiny):
        (result,) = minmax_cost.run(tiny, seed=0)
        assert all(y == 1 for y in result.series_by_label("lht-min").y)
        assert all(y == 1 for y in result.series_by_label("lht-max").y)

    def test_substrates(self, tiny):
        from repro.dht.registry import names as substrate_names

        (result,) = substrates.run(tiny, seed=0)
        assert {s.label for s in result.series} == set(substrate_names())

    def test_churn(self, tiny):
        (result,) = churn_study.run(tiny, seed=0)
        exact = result.series_by_label("exact-match availability")
        assert exact.y[0] == 1.0  # graceful-only churn loses nothing
