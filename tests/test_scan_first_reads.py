"""Regression tests for the ``OWNER_FIRST_READS=False`` read paths.

The whole-program analyzer audit (PR 6) covered the two substrates that
flip the kernel's read/repair order — CAN and Tapestry resolve owners
via zone routing / surrogate digits, so :meth:`SubstrateBase.peek` and
:meth:`SubstrateBase.local_write` scan for the holder *before* asking
the placement oracle.  The audit found the paths correct; these tests
pin the properties the audit checked so a future substrate or kernel
change cannot silently regress them:

* ``local_write`` updates an existing key **in place** — exactly one
  stored copy afterwards, even when the holder is stale (a peer that no
  longer owns the key), which is precisely the case the scan-first
  order exists for;
* a fresh ``local_write`` lands at the responsible peer, so the key is
  immediately reachable through the routed ``get`` path;
* ``peek`` and ``local_write`` are free: they never charge a DHT lookup
  to the shared recorder (the paper's cost model counts routed
  operations only);
* the flags themselves stay pinned: flipping a substrate's read order
  is a cost-model change and must be a deliberate one.
"""

from __future__ import annotations

import pytest

from repro.dht.can import CANDHT
from repro.dht.chord import ChordDHT
from repro.dht.kademlia import KademliaDHT
from repro.dht.local import LocalDHT
from repro.dht.pastry import PastryDHT
from repro.dht.tapestry import TapestryDHT

SCAN_FIRST = {"can": CANDHT, "tapestry": TapestryDHT}
OWNER_FIRST = {
    "chord": ChordDHT,
    "kademlia": KademliaDHT,
    "pastry": PastryDHT,
    "local": LocalDHT,
}


def make(factory) -> object:
    return factory(n_peers=8, seed=7)


def copies(dht, key: str) -> int:
    return sum(1 for stored in dht.keys() if stored == key)


class TestReadOrderFlags:
    @pytest.mark.parametrize("name", sorted(SCAN_FIRST))
    def test_scan_first_substrates_pinned(self, name):
        assert SCAN_FIRST[name].OWNER_FIRST_READS is False

    @pytest.mark.parametrize("name", sorted(OWNER_FIRST))
    def test_owner_first_substrates_pinned(self, name):
        assert OWNER_FIRST[name].OWNER_FIRST_READS is True


@pytest.mark.parametrize("name", sorted(SCAN_FIRST))
class TestScanFirstSemantics:
    def test_local_write_updates_in_place_single_copy(self, name):
        dht = make(SCAN_FIRST[name])
        dht.put("leaf:0101", {"v": 1})
        dht.local_write("leaf:0101", {"v": 2})
        assert dht.peek("leaf:0101") == {"v": 2}
        assert copies(dht, "leaf:0101") == 1

    def test_fresh_local_write_lands_at_responsible_peer(self, name):
        dht = make(SCAN_FIRST[name])
        dht.local_write("leaf:1100", {"v": 5})
        assert copies(dht, "leaf:1100") == 1
        # Reachable through the *routed* path: the scan-first fallback
        # placed it where route()/peer_of() agree on a converged overlay.
        assert dht.get("leaf:1100") == {"v": 5}

    def test_stale_holder_is_updated_not_duplicated(self, name):
        # The scenario the scan-first order exists for: the key lives at
        # a peer that is no longer its owner (stale holder under churn).
        # local_write must rewrite that copy, not grow a second one at
        # the current owner.  Tests may reach into dht.peers to stage
        # the stale state; library code may not (LHT008).
        dht = make(SCAN_FIRST[name])
        dht.put("leaf:0011", {"v": 1})
        holder = dht.peers.find_holder("leaf:0011")
        stale = next(p for p in dht.node_ids if p != holder)
        dht.peers.store_of(holder).pop("leaf:0011")
        dht.peers.store_of(stale)["leaf:0011"] = {"v": 1}

        dht.local_write("leaf:0011", {"v": 9})
        assert dht.peers.find_holder("leaf:0011") == stale
        assert copies(dht, "leaf:0011") == 1
        assert dht.peek("leaf:0011") == {"v": 9}

    def test_peek_and_local_write_charge_no_lookups(self, name):
        dht = make(SCAN_FIRST[name])
        dht.put("leaf:0001", {"v": 1})
        before = dht.metrics.dht_lookups
        dht.peek("leaf:0001")
        dht.peek("absent")
        dht.local_write("leaf:0001", {"v": 2})
        dht.local_write("fresh", {"v": 3})
        assert dht.metrics.dht_lookups == before

    def test_peek_absent_key_returns_none(self, name):
        dht = make(SCAN_FIRST[name])
        assert dht.peek("never-stored") is None


class TestScanFirstUnderChurn:
    """CAN is the one scan-first substrate with membership dynamics."""

    def test_keys_stay_single_copy_across_join_leave_cycles(self):
        dht = CANDHT(n_peers=8, seed=3)
        keys = [f"leaf:{i:06b}" for i in range(40)]
        for i, key in enumerate(keys):
            dht.put(key, {"v": i})
        joined = [dht.join() for _ in range(4)]
        for node_id in joined[:2]:
            dht.leave(node_id)
        for i, key in enumerate(keys):
            assert copies(dht, key) == 1, key
            assert dht.peek(key) == {"v": i}

    def test_local_write_repairs_after_churn(self):
        dht = CANDHT(n_peers=8, seed=3)
        keys = [f"leaf:{i:06b}" for i in range(40)]
        for i, key in enumerate(keys):
            dht.put(key, {"v": i})
        for _ in range(4):
            dht.join()
        for i, key in enumerate(keys):
            dht.local_write(key, {"v": i + 100})
        for i, key in enumerate(keys):
            assert copies(dht, key) == 1, key
            assert dht.peek(key) == {"v": i + 100}
