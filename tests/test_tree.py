"""Unit and property tests for the centralized reference tree (§3.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import IndexConfig, Label, ReferenceTree, ROOT
from repro.errors import DepthExceededError

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


class TestBasics:
    def test_starts_with_single_root_leaf(self):
        tree = ReferenceTree()
        assert tree.leaf_labels == [ROOT]
        assert tree.size == 0
        assert tree.depth == 1

    def test_insert_and_membership(self):
        tree = ReferenceTree(IndexConfig(theta_split=8))
        tree.insert(0.3)
        assert 0.3 in tree
        assert 0.4 not in tree
        assert tree.size == 1

    def test_leaf_for(self):
        tree = ReferenceTree(IndexConfig(theta_split=4))
        for key in (0.1, 0.2, 0.6, 0.7, 0.8, 0.9):
            tree.insert(key)
        leaf = tree.leaf_for(0.1)
        assert leaf.contains(0.1)
        assert 0.1 in tree.keys_in_leaf(leaf)

    def test_split_at_median(self):
        # θ=4: capacity 3 records; the 4th insert splits at the median.
        tree = ReferenceTree(IndexConfig(theta_split=4))
        for key in (0.1, 0.2, 0.3):
            tree.insert(key)
        assert tree.leaf_labels == [ROOT]
        tree.insert(0.4)
        assert tree.split_count == 1
        assert set(map(str, tree.leaf_labels)) == {"#00", "#01"}
        # all four keys < 0.5 land in the left child
        assert tree.keys_in_leaf(Label.parse("#00")) == [0.1, 0.2, 0.3, 0.4]
        assert tree.keys_in_leaf(Label.parse("#01")) == []

    def test_at_most_one_split_per_insert(self):
        # Highly skewed keys would cascade if allowed.
        tree = ReferenceTree(IndexConfig(theta_split=4))
        for i in range(20):
            before = tree.split_count
            tree.insert(0.001 + i * 1e-5)
            assert tree.split_count - before <= 1
        tree.check_invariants()

    def test_delete(self):
        tree = ReferenceTree(IndexConfig(theta_split=8))
        tree.insert(0.5)
        assert tree.delete(0.5)
        assert not tree.delete(0.5)
        assert tree.size == 0

    def test_merge_on_delete(self):
        config = IndexConfig(theta_split=8, merge_enabled=True)
        tree = ReferenceTree(config)
        keys = [i / 32 + 1e-4 for i in range(32)]
        for key in keys:
            tree.insert(key)
        assert len(tree.leaf_labels) > 1
        for key in keys:
            tree.delete(key)
            tree.check_invariants()
        assert tree.merge_count > 0

    def test_depth_limit(self):
        tree = ReferenceTree(IndexConfig(theta_split=2, max_depth=3))
        with pytest.raises(DepthExceededError):
            for i in range(50):
                tree.insert(1e-6 + i * 1e-9)

    def test_keys_in_range(self):
        tree = ReferenceTree(IndexConfig(theta_split=4))
        keys = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55]
        for key in keys:
            tree.insert(key)
        assert tree.keys_in_range(0.1, 0.5) == [0.15, 0.25, 0.35, 0.45]
        assert tree.all_keys() == keys

    def test_internal_count_equals_leaf_count(self):
        # The double-root property (§3.2): #leaves == #internal nodes.
        tree = ReferenceTree(IndexConfig(theta_split=4))
        rng = np.random.default_rng(0)
        for key in rng.random(100):
            tree.insert(float(key))
        assert len(tree.internal_labels()) == len(tree.leaf_labels)


class TestInvariantsUnderRandomWorkloads:
    @given(st.lists(unit_floats, min_size=1, max_size=300))
    def test_inserts_preserve_invariants(self, keys: list[float]):
        tree = ReferenceTree(IndexConfig(theta_split=4, max_depth=40))
        for key in keys:
            tree.insert(key)
        tree.check_invariants()
        assert tree.size == len(keys)

    @given(
        st.lists(unit_floats, min_size=1, max_size=150),
        st.randoms(use_true_random=False),
    )
    def test_mixed_workload_preserves_invariants(self, keys, rand):
        tree = ReferenceTree(
            IndexConfig(theta_split=4, max_depth=40, merge_enabled=True)
        )
        live: list[float] = []
        for key in keys:
            if live and rand.random() < 0.4:
                victim = live.pop(rand.randrange(len(live)))
                tree.delete(victim)
            else:
                tree.insert(key)
                live.append(key)
        tree.check_invariants()
        assert tree.all_keys() == sorted(live)
