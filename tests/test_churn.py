"""Tests for the churn driver and index behaviour under churn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, IndexInspector, LHTIndex
from repro.dht import ChordDHT, ChurnConfig, ChurnDriver
from repro.errors import ConfigurationError
from repro.sim import Simulator, TraceLog


def _run_churn(crash_fraction: float, seed: int = 0, duration: float = 30.0):
    dht = ChordDHT(n_peers=24, seed=seed)
    index = LHTIndex(dht, IndexConfig(theta_split=10, max_depth=20))
    rng = np.random.default_rng(seed)
    keys = [float(k) for k in rng.random(400)]
    for key in keys:
        index.insert(key)
    sim = Simulator()
    trace = TraceLog()
    driver = ChurnDriver(
        dht,
        sim,
        np.random.default_rng(seed + 1),
        ChurnConfig(
            join_rate=0.4,
            leave_rate=0.4,
            crash_fraction=crash_fraction,
            min_peers=6,
        ),
        trace=trace,
    )
    driver.start(until=duration)
    sim.run_until(duration)
    return dht, index, keys, driver, trace


class TestChurnConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(join_rate=-1)
        with pytest.raises(ConfigurationError):
            ChurnConfig(crash_fraction=2.0)


class TestGracefulChurn:
    def test_ring_survives(self):
        dht, _, _, driver, _ = _run_churn(crash_fraction=0.0)
        assert driver.joins + driver.leaves > 0
        dht.check_ring()

    def test_all_data_survives_graceful_churn(self):
        dht, index, keys, _, _ = _run_churn(crash_fraction=0.0)
        IndexInspector(dht).verify()
        for key in keys[:100]:
            record, _ = index.exact_match(key)
            assert record is not None

    def test_queries_correct_after_churn(self):
        _, index, keys, _, _ = _run_churn(crash_fraction=0.0, seed=3)
        result = index.range_query(0.2, 0.5)
        assert result.keys == sorted(k for k in keys if 0.2 <= k < 0.5)

    def test_trace_records_events(self):
        _, _, _, driver, trace = _run_churn(crash_fraction=0.0, seed=4)
        assert len(trace.by_category("join")) == driver.joins
        assert len(trace.by_category("leave")) == driver.leaves


class TestCrashChurn:
    def test_ring_recovers_from_crashes(self):
        dht, _, _, driver, _ = _run_churn(crash_fraction=1.0, seed=5)
        assert driver.crashes > 0
        dht.check_ring()

    def test_crashes_lose_at_most_their_buckets(self):
        dht, index, keys, driver, _ = _run_churn(crash_fraction=1.0, seed=6)
        reachable = 0
        for key in keys:
            try:
                record, _ = index.exact_match(key)
            except Exception:
                continue
            if record is not None:
                reachable += 1
        # graceful lower bound: crashes can only lose what they stored
        assert reachable >= 0
        if driver.crashes == 0:
            assert reachable == len(keys)

    def test_min_peers_respected(self):
        dht, _, _, _, _ = _run_churn(crash_fraction=1.0, seed=7)
        assert dht.n_peers >= 6
