"""Package hygiene guards: docstrings, ``__all__`` consistency, exports.

Cheap meta-tests that keep the public surface honest as the codebase
grows: every module documents itself, every ``__all__`` name exists, and
the top-level package re-exports what the README promises.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro


def _walk_modules() -> list[str]:
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return sorted(names)


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_has_docstring(name: str):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{name} docstring is a stub"


@pytest.mark.parametrize("name", ALL_MODULES)
def test_dunder_all_names_exist(name: str):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_top_level_exports():
    for symbol in (
        "LHTIndex",
        "PHTIndex",
        "IndexConfig",
        "LocalDHT",
        "ChordDHT",
        "CANDHT",
        "KademliaDHT",
        "PastryDHT",
        "MultiDimIndex",
        "LinearCostModel",
        "ReferenceTree",
    ):
        assert hasattr(repro, symbol), f"repro.{symbol} missing"
        assert symbol in repro.__all__


def test_public_classes_have_docstrings():
    for symbol in repro.__all__:
        if symbol.startswith("__"):
            continue
        obj = getattr(repro, symbol)
        if isinstance(obj, type):
            assert obj.__doc__, f"repro.{symbol} lacks a class docstring"


def test_version_is_set():
    assert repro.__version__ == "1.0.0"
