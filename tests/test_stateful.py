"""Model-based stateful testing: LHTIndex vs the centralized oracle.

A hypothesis ``RuleBasedStateMachine`` drives a random interleaving of
inserts, deletes, lookups, range queries, min/max and scans against both
the distributed index and the :class:`ReferenceTree`, checking full
agreement after every step and structural invariants as machine-level
invariants.  This is the strongest single correctness artefact in the
suite: any divergence between the distributed protocol and the paper's
abstract tree is found as a minimal counterexample.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import IndexConfig, IndexInspector, LHTIndex, ReferenceTree
from repro.dht import LocalDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


class LHTMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.config = IndexConfig(
            theta_split=4, max_depth=40, merge_enabled=True
        )
        self.dht = LocalDHT(n_peers=16, seed=0)
        self.index = LHTIndex(self.dht, self.config)
        self.oracle = ReferenceTree(self.config)
        self.live: list[float] = []

    @initialize(keys=st.lists(unit_floats, max_size=30))
    def seed_data(self, keys: list[float]) -> None:
        for key in keys:
            self.index.insert(key)
            self.oracle.insert(key)
            self.live.append(key)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    @rule(key=unit_floats)
    def insert(self, key: float) -> None:
        self.index.insert(key)
        self.oracle.insert(key)
        self.live.append(key)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete_existing(self, data) -> None:
        key = data.draw(st.sampled_from(self.live))
        self.live.remove(key)
        assert self.index.delete(key).deleted
        assert self.oracle.delete(key)

    @rule(key=unit_floats)
    def delete_probably_absent(self, key: float) -> None:
        expected = key in self.live
        result = self.index.delete(key)
        assert result.deleted == expected
        if expected:
            self.live.remove(key)
            self.oracle.delete(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @rule(key=unit_floats)
    def lookup_agrees(self, key: float) -> None:
        record, _ = self.index.exact_match(key)
        assert (record is not None) == (key in self.live)

    @rule(a=unit_floats, b=unit_floats)
    def range_agrees(self, a: float, b: float) -> None:
        lo, hi = min(a, b), max(a, b)
        result = self.index.range_query(lo, hi)
        assert result.keys == sorted(k for k in self.live if lo <= k < hi)

    @rule()
    def minmax_agree(self) -> None:
        mn = self.index.min_query().record
        mx = self.index.max_query().record
        if self.live:
            assert mn is not None and mn.key == min(self.live)
            assert mx is not None and mx.key == max(self.live)
        else:
            assert mn is None and mx is None

    @rule()
    def scan_agrees(self) -> None:
        assert [r.key for r in self.index.scan()] == sorted(self.live)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def distributed_state_is_consistent(self) -> None:
        IndexInspector(self.dht).verify()

    @invariant()
    def matches_oracle_tree(self) -> None:
        inspector = IndexInspector(self.dht)
        assert sorted(
            str(b.label) for b in inspector.buckets().values()
        ) == sorted(str(label) for label in self.oracle.leaf_labels)

    @invariant()
    def record_count_tracks(self) -> None:
        assert len(self.index) == len(self.live)


TestLHTStateMachine = LHTMachine.TestCase
TestLHTStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
