"""Model-based stateful testing: LHTIndex vs the centralized oracle.

A hypothesis ``RuleBasedStateMachine`` drives a random interleaving of
inserts, deletes, lookups, range queries, min/max and scans against both
the distributed index and the :class:`ReferenceTree`, checking full
agreement after every step and structural invariants as machine-level
invariants.  This is the strongest single correctness artefact in the
suite: any divergence between the distributed protocol and the paper's
abstract tree is found as a minimal counterexample.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import IndexConfig, IndexInspector, LHTIndex, ReferenceTree
from repro.dht import LocalDHT

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


class LHTMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.config = IndexConfig(
            theta_split=4, max_depth=40, merge_enabled=True
        )
        self.dht = LocalDHT(n_peers=16, seed=0)
        self.index = LHTIndex(self.dht, self.config)
        self.oracle = ReferenceTree(self.config)
        self.live: list[float] = []

    @initialize(keys=st.lists(unit_floats, max_size=30))
    def seed_data(self, keys: list[float]) -> None:
        for key in keys:
            self.index.insert(key)
            self.oracle.insert(key)
            self.live.append(key)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    @rule(key=unit_floats)
    def insert(self, key: float) -> None:
        self.index.insert(key)
        self.oracle.insert(key)
        self.live.append(key)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete_existing(self, data) -> None:
        key = data.draw(st.sampled_from(self.live))
        self.live.remove(key)
        assert self.index.delete(key).deleted
        assert self.oracle.delete(key)

    @rule(key=unit_floats)
    def delete_probably_absent(self, key: float) -> None:
        expected = key in self.live
        result = self.index.delete(key)
        assert result.deleted == expected
        if expected:
            self.live.remove(key)
            self.oracle.delete(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @rule(key=unit_floats)
    def lookup_agrees(self, key: float) -> None:
        record, _ = self.index.exact_match(key)
        assert (record is not None) == (key in self.live)

    @rule(a=unit_floats, b=unit_floats)
    def range_agrees(self, a: float, b: float) -> None:
        lo, hi = min(a, b), max(a, b)
        result = self.index.range_query(lo, hi)
        assert result.keys == sorted(k for k in self.live if lo <= k < hi)

    @rule()
    def minmax_agree(self) -> None:
        mn = self.index.min_query().record
        mx = self.index.max_query().record
        if self.live:
            assert mn is not None and mn.key == min(self.live)
            assert mx is not None and mx.key == max(self.live)
        else:
            assert mn is None and mx is None

    @rule()
    def scan_agrees(self) -> None:
        assert [r.key for r in self.index.scan()] == sorted(self.live)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def distributed_state_is_consistent(self) -> None:
        IndexInspector(self.dht).verify()

    @invariant()
    def matches_oracle_tree(self) -> None:
        inspector = IndexInspector(self.dht)
        assert sorted(
            str(b.label) for b in inspector.buckets().values()
        ) == sorted(str(label) for label in self.oracle.leaf_labels)

    @invariant()
    def record_count_tracks(self) -> None:
        assert len(self.index) == len(self.live)


TestLHTStateMachine = LHTMachine.TestCase
TestLHTStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


class CacheEquivalenceMachine(RuleBasedStateMachine):
    """Cache-on and cache-off indexes must be observationally identical.

    Two LHTIndexes over identically-seeded substrates run the same
    random interleaving of mutations and queries; the only difference is
    ``cache_enabled`` (with a deliberately tiny capacity so eviction and
    re-priming churn constantly).  Every query's *answer* must agree
    byte-for-byte — records, verdicts, range contents — across splits
    and merges; only the cost may differ.  This machine is the
    equivalence oracle gating the whole cache feature: any answer the
    cache changes shows up as a minimal counterexample.
    """

    def __init__(self) -> None:
        super().__init__()
        base = dict(theta_split=4, max_depth=40, merge_enabled=True)
        self.plain = LHTIndex(
            LocalDHT(n_peers=16, seed=0), IndexConfig(**base)
        )
        self.cached = LHTIndex(
            LocalDHT(n_peers=16, seed=0),
            IndexConfig(**base, cache_enabled=True, cache_capacity=4),
        )
        self.live: list[float] = []

    @initialize(keys=st.lists(unit_floats, max_size=30))
    def seed_data(self, keys: list[float]) -> None:
        for key in keys:
            self.plain.insert(key)
            self.cached.insert(key)
            self.live.append(key)

    # ------------------------------------------------------------------
    # Mutations (applied to both; outcomes must agree)
    # ------------------------------------------------------------------

    @rule(key=unit_floats)
    def insert(self, key: float) -> None:
        plain = self.plain.insert(key)
        cached = self.cached.insert(key)
        assert plain.leaf == cached.leaf
        assert (plain.split is None) == (cached.split is None)
        self.live.append(key)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def delete_existing(self, data) -> None:
        key = data.draw(st.sampled_from(self.live))
        self.live.remove(key)
        plain = self.plain.delete(key)
        cached = self.cached.delete(key)
        assert plain.deleted and cached.deleted
        assert plain.merges == cached.merges

    @rule(key=unit_floats)
    def delete_probably_absent(self, key: float) -> None:
        plain = self.plain.delete(key)
        cached = self.cached.delete(key)
        assert plain.deleted == cached.deleted
        if plain.deleted:
            self.live.remove(key)

    # ------------------------------------------------------------------
    # Queries (answers must be byte-identical)
    # ------------------------------------------------------------------

    @rule(key=unit_floats)
    def exact_match_agrees(self, key: float) -> None:
        plain_record, _ = self.plain.exact_match(key)
        cached_record, _ = self.cached.exact_match(key)
        assert repr(plain_record) == repr(cached_record)
        assert (plain_record is not None) == (key in self.live)

    @rule(key=unit_floats)
    def checked_match_agrees(self, key: float) -> None:
        plain = self.plain.exact_match_checked(key)
        cached = self.cached.exact_match_checked(key)
        assert plain.status == cached.status
        assert repr(plain.record) == repr(cached.record)

    @rule(a=unit_floats, b=unit_floats)
    def range_agrees(self, a: float, b: float) -> None:
        lo, hi = min(a, b), max(a, b)
        plain = self.plain.range_query(lo, hi)
        cached = self.cached.range_query(lo, hi)
        assert plain.records == cached.records
        assert plain.keys == sorted(k for k in self.live if lo <= k < hi)

    @rule()
    def minmax_agree(self) -> None:
        assert repr(self.plain.min_query().record) == repr(
            self.cached.min_query().record
        )
        assert repr(self.plain.max_query().record) == repr(
            self.cached.max_query().record
        )

    @rule()
    def scan_agrees(self) -> None:
        assert [r.key for r in self.plain.scan()] == [
            r.key for r in self.cached.scan()
        ]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def both_indexes_consistent(self) -> None:
        IndexInspector(self.plain.dht).verify()
        IndexInspector(self.cached.dht).verify()

    @invariant()
    def same_tree_shape(self) -> None:
        assert sorted(
            str(b.label)
            for b in IndexInspector(self.plain.dht).buckets().values()
        ) == sorted(
            str(b.label)
            for b in IndexInspector(self.cached.dht).buckets().values()
        )

    @invariant()
    def cache_is_bounded_and_exact(self) -> None:
        cache = self.cached.cache
        assert cache is not None
        assert len(cache) <= cache.capacity
        # Single-writer exactness: every cached label names a live leaf.
        live = {
            str(b.label)
            for b in IndexInspector(self.cached.dht).buckets().values()
        }
        assert {str(label) for label in cache.labels()} <= live


TestCacheEquivalenceMachine = CacheEquivalenceMachine.TestCase
TestCacheEquivalenceMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
