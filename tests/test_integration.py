"""End-to-end integration tests across substrates, schemes, and claims.

These tie the whole stack together: LHT over a *routed* overlay with a
mixed workload, verified against the centralized oracle; substrate
independence of index-level costs; and the paper's headline comparative
claims, asserted quantitatively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pht import PHTIndex
from repro.core import (
    IndexConfig,
    IndexInspector,
    LHTIndex,
    ReferenceTree,
)
from repro.dht import ChordDHT, KademliaDHT, LocalDHT, PastryDHT


@pytest.fixture(scope="module")
def workload() -> list[float]:
    rng = np.random.default_rng(99)
    return [float(k) for k in rng.random(1200)]


class TestEndToEndOverChord:
    def test_mixed_workload_over_routed_overlay(self, workload):
        config = IndexConfig(theta_split=10, max_depth=20, merge_enabled=True)
        dht = ChordDHT(n_peers=30, seed=0)
        index = LHTIndex(dht, config)
        oracle = ReferenceTree(config)
        rng = np.random.default_rng(0)
        live: list[float] = []
        for key in workload:
            if live and rng.random() < 0.25:
                victim = live.pop(int(rng.integers(0, len(live))))
                assert index.delete(victim).deleted
                oracle.delete(victim)
            else:
                index.insert(key, value=f"v{key}")
                oracle.insert(key)
                live.append(key)
        IndexInspector(dht).verify()
        oracle.check_invariants()
        assert IndexInspector(dht).all_keys() == oracle.all_keys()

        # queries
        result = index.range_query(0.25, 0.75)
        assert result.keys == oracle.keys_in_range(0.25, 0.75)
        assert index.min_query().record.key == min(live)
        assert index.max_query().record.key == max(live)
        record, _ = index.exact_match(live[0])
        assert record.value == f"v{live[0]}"


class TestSubstrateIndependence:
    def test_index_level_costs_identical(self, workload):
        """Paper footnote 5: the measured counts are independent of the
        underlying network."""
        config = IndexConfig(theta_split=10, max_depth=20)
        traces = []
        for dht in (
            LocalDHT(16, 0),
            ChordDHT(n_peers=16, seed=0),
            KademliaDHT(n_peers=16, seed=0),
            PastryDHT(n_peers=16, seed=0),
        ):
            index = LHTIndex(dht, config)
            for key in workload[:600]:
                index.insert(key)
            lookup_costs = [
                index.lookup(k).dht_lookups for k in workload[600:700]
            ]
            range_costs = [
                index.range_query(0.1 * i, 0.1 * i + 0.07).dht_lookups
                for i in range(9)
            ]
            traces.append(
                (
                    index.ledger.maintenance_lookups,
                    index.ledger.maintenance_records_moved,
                    lookup_costs,
                    range_costs,
                )
            )
        assert all(t == traces[0] for t in traces[1:])


class TestPaperClaims:
    """The abstract's quantitative claims, asserted end to end."""

    @pytest.fixture(scope="class")
    def built(self):
        rng = np.random.default_rng(5)
        keys = [float(k) for k in rng.random(6000)]
        config = IndexConfig(theta_split=20, max_depth=20)
        lht = LHTIndex(LocalDHT(32, 0), config)
        pht = PHTIndex(LocalDHT(32, 0), config)
        lht.bulk_load(keys)
        pht.bulk_load(keys)
        return lht, pht, keys

    def test_maintenance_saving_between_50_and_75_percent(self, built):
        lht, pht, _ = built
        from repro.costmodel import LinearCostModel

        for gamma in (0.1, 1.0, 10.0, 100.0):
            model = LinearCostModel(record_move_cost=gamma / 20, lookup_cost=1)
            saving = model.measured_saving_ratio(lht.ledger, pht.ledger)
            assert 0.45 <= saving <= 0.80

    def test_lookup_beats_pht(self, built):
        lht, pht, keys = built
        rng = np.random.default_rng(6)
        probes = [float(k) for k in rng.random(300)]
        lht_cost = sum(lht.lookup(k).dht_lookups for k in probes)
        pht_cost = sum(pht.lookup(k).dht_lookups for k in probes)
        assert lht_cost < pht_cost

    def test_range_query_beats_pht_parallel_latency(self, built):
        lht, pht, _ = built
        rng = np.random.default_rng(7)
        lht_lat = pht_lat = pht_bw = lht_bw = 0
        for _ in range(40):
            lo = float(rng.random() * 0.9)
            hi = lo + 0.08
            lht_res = lht.range_query(lo, hi)
            par_res = pht.range_query_parallel(lo, hi)
            lht_lat += lht_res.parallel_steps
            pht_lat += par_res.parallel_steps
            lht_bw += lht_res.dht_lookups
            pht_bw += par_res.dht_lookups
        assert lht_lat < pht_lat
        assert lht_bw < pht_bw

    def test_range_query_bandwidth_near_optimal(self, built):
        lht, _, keys = built
        rng = np.random.default_rng(8)
        for _ in range(40):
            lo = float(rng.random() * 0.85)
            result = lht.range_query(lo, lo + 0.1)
            optimal = result.buckets_visited
            assert result.dht_lookups <= optimal + 4

    def test_identical_answers_across_schemes(self, built):
        lht, pht, keys = built
        for lo, hi in ((0.0, 0.05), (0.3, 0.6), (0.95, 1.0)):
            expected = sorted(k for k in keys if lo <= k < hi)
            assert lht.range_query(lo, hi).keys == expected
            assert pht.range_query_sequential(lo, hi).keys == expected
            assert pht.range_query_parallel(lo, hi).keys == expected
