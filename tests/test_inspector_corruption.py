"""Corruption-detection tests: the inspector must catch broken states.

These inject specific inconsistencies into an otherwise healthy
distributed index and assert :meth:`IndexInspector.verify` rejects each
one — guaranteeing the verifier used throughout the suite actually has
teeth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IndexConfig,
    IndexInspector,
    Label,
    LeafBucket,
    LHTIndex,
    Record,
    naming,
)
from repro.dht import LocalDHT
from repro.errors import ReproError


def _healthy() -> tuple[LHTIndex, LocalDHT]:
    dht = LocalDHT(16, 0)
    index = LHTIndex(dht, IndexConfig(theta_split=4, max_depth=20))
    for key in np.random.default_rng(0).random(100):
        index.insert(float(key))
    IndexInspector(dht).verify()  # sanity: healthy before corruption
    return index, dht


class TestCorruptionDetection:
    def test_bucket_under_wrong_key(self):
        _, dht = _healthy()
        label = Label.parse("#01110011")  # not a leaf of this tree
        some_bucket = next(
            b for k in dht.keys() if isinstance(b := dht.peek(k), LeafBucket)
        )
        dht.put(str(label), some_bucket)
        with pytest.raises(ReproError, match="stored under"):
            IndexInspector(dht).verify()

    def test_duplicate_leaf(self):
        _, dht = _healthy()
        # Stash a copy of an existing leaf under an unused internal name.
        bucket = next(
            b for k in dht.keys() if isinstance(b := dht.peek(k), LeafBucket)
        )
        clone = LeafBucket(bucket.label, list(bucket.records))
        # Find a key whose naming matches — impossible, so place it under
        # its correct name but in a second slot via a bogus label first.
        dht.put(str(naming(clone.label)) + "#dup", clone)
        # A non-label key makes parse fail; inspector must ignore only
        # non-bucket values, so craft a *valid* duplicate instead:
        dht.remove(str(naming(clone.label)) + "#dup")
        deep = clone.label.left_child
        dup = LeafBucket(deep)
        dht.put(str(naming(dup.label)), dup)
        with pytest.raises(ReproError, match="gap or overlap|duplicate"):
            IndexInspector(dht).verify()

    def test_record_outside_leaf(self):
        _, dht = _healthy()
        bucket = next(
            b
            for k in dht.keys()
            if isinstance(b := dht.peek(k), LeafBucket) and b.label.depth > 1
        )
        # Bypass the validated API to plant a foreign record.
        foreign_key = (
            0.99 if not bucket.label.contains(0.99) else 0.0001
        )
        bucket._records.append(Record(foreign_key))  # noqa: SLF001
        with pytest.raises(ReproError, match="outside"):
            IndexInspector(dht).verify()

    def test_missing_leaf_leaves_gap(self):
        _, dht = _healthy()
        label_key = next(
            k
            for k in dht.keys()
            if isinstance(b := dht.peek(k), LeafBucket) and b.label.depth > 1
        )
        dht.remove(label_key)
        with pytest.raises(ReproError):
            IndexInspector(dht).verify()

    def test_empty_store_rejected(self):
        dht = LocalDHT(4, 0)
        with pytest.raises(ReproError, match="no leaf buckets"):
            IndexInspector(dht).verify()

    def test_healthy_state_passes(self):
        _, dht = _healthy()
        IndexInspector(dht).verify()
