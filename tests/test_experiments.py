"""Tests for the experiment harness: utilities, fast experiments, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import runner
from repro.experiments.common import (
    ExperimentResult,
    SUBSTRATES,
    Series,
    make_dht,
    trial_rng,
)
from repro.experiments import eq3_saving, fig6_alpha, load_balance, minmax_cost


class TestSeries:
    def test_validates_lengths(self):
        with pytest.raises(ConfigurationError):
            Series("s", [1.0, 2.0], [1.0])
        with pytest.raises(ConfigurationError):
            Series("s", [1.0], [1.0], y_err=[0.1, 0.2])

    def test_ok(self):
        s = Series("s", [1.0, 2.0], [3.0, 4.0], y_err=[0.1, 0.2])
        assert s.label == "s"


class TestExperimentResult:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="EX",
            title="demo",
            x_label="x",
            y_label="y",
            params={"p": 1},
            series=[
                Series("a", [1.0, 2.0], [10.0, 20.0]),
                Series("b", [2.0, 3.0], [30.0, 40.0], y_err=[1.0, 2.0]),
            ],
            notes="hello",
        )

    def test_table_rendering(self):
        table = self._result().to_table()
        assert "EX: demo" in table
        assert "hello" in table
        # x=1 appears only in series a; series b shows '-'
        line = next(l for l in table.splitlines() if l.strip().startswith("1 "))
        assert "-" in line

    def test_json_roundtrip(self):
        data = self._result().to_json()
        assert json.dumps(data)  # serializable
        assert data["series"][1]["y_err"] == [1.0, 2.0]

    def test_save(self, tmp_path):
        path = self._result().save(tmp_path)
        assert path.exists()
        assert json.loads(path.read_text())["experiment_id"] == "EX"

    def test_series_by_label(self):
        result = self._result()
        assert result.series_by_label("a").y == [10.0, 20.0]
        with pytest.raises(ConfigurationError):
            result.series_by_label("zzz")


class TestCommonHelpers:
    def test_make_dht_all_substrates(self):
        for name in SUBSTRATES:
            dht = make_dht(name, 8, 0)
            dht.put("k", 1)
            assert dht.get("k") == 1

    def test_make_dht_unknown(self):
        with pytest.raises(ConfigurationError):
            make_dht("napster", 8, 0)

    def test_trial_rng_deterministic_and_distinct(self):
        a = trial_rng(0, "x", 0).random(3)
        b = trial_rng(0, "x", 0).random(3)
        c = trial_rng(0, "x", 1).random(3)
        assert (a == b).all()
        assert not (a == c).all()


class TestFastExperiments:
    def test_eq3(self):
        (result,) = eq3_saving.run("ci", seed=0)
        measured = result.series_by_label("measured")
        assert all(0.45 <= y <= 0.80 for y in measured.y)
        analytic = result.series_by_label("analytic @ sweep")
        for got, want in zip(measured.y, analytic.y):
            assert abs(got - want) < 0.1

    def test_unknown_scale_rejected(self):
        for module in (eq3_saving, fig6_alpha, minmax_cost, load_balance):
            with pytest.raises(ConfigurationError):
                module.run("galactic")

    def test_expected_alpha(self):
        assert fig6_alpha.expected_alpha(100) == pytest.approx(0.505)

    def test_load_balance(self):
        (result,) = load_balance.run("ci", seed=0)
        lht = result.series_by_label("lht")
        # skew-independence: Gini varies little across distributions
        assert max(lht.y) - min(lht.y) < 0.2


class TestRunnerCLI:
    def test_list(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "range" in out

    def test_no_args_lists(self, capsys):
        assert runner.main([]) == 0
        assert "fig7" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert runner.main(["figure99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_and_saves(self, tmp_path, capsys):
        code = runner.main(["eq3", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "E11" in out
        assert (tmp_path / "e11.json").exists()

    def test_registry_covers_all_experiment_ids(self):
        names = set(runner.EXPERIMENTS)
        assert names == {
            "fig6",
            "fig7",
            "fig8",
            "range",
            "eq3",
            "minmax",
            "substrates",
            "churn",
            "balance",
            "ablation",
            "latency",
            "workload",
            "hotspots",
            "availability",
            "cached",
            "routing-diversity",
            "replica-availability",
        }

    def test_latency_experiment(self):
        from repro.experiments import latency_study

        (result,) = latency_study.run("ci", seed=0)
        medians = result.series_by_label("median")
        lht, pht_seq, pht_par = medians.y
        assert lht < pht_par < pht_seq
