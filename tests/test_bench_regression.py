"""Tier-2 benchmark regression gate (``-m bench``) + gate-logic units.

The ``bench``-marked tests re-measure the count-based workload of
:mod:`repro.devtools.benchgate` and fail when any metric regresses more
than 10% over its checked-in baseline (``BENCH_lookup.json`` /
``BENCH_range.json`` / ``BENCH_build.json`` / ``BENCH_serve.json``).
They are excluded from the default (tier-1) run
by the ``-m "not bench"`` addopts and executed by the CI smoke step::

    PYTHONPATH=src python -m pytest tests/test_bench_regression.py -m bench

The unmarked tests pin the comparison logic itself and always run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import benchgate

_ROOT = Path(__file__).resolve().parent.parent


def _load(path: Path) -> dict:
    assert path.exists(), f"{path.name} missing — run benchgate --write"
    return json.loads(path.read_text())


@pytest.mark.bench
class TestBenchGate:
    def test_lookup_counts_within_tolerance(self):
        current = benchgate.measure_lookup()
        baseline = _load(_ROOT / "BENCH_lookup.json")
        assert current["params"] == baseline["params"], (
            "workload parameters changed — refresh baselines with "
            "python -m repro.devtools.benchgate --write"
        )
        violations = benchgate.compare(
            current["metrics"], baseline["metrics"]
        )
        assert not violations, "\n".join(violations)

    def test_range_counts_within_tolerance(self):
        current = benchgate.measure_range()
        baseline = _load(_ROOT / "BENCH_range.json")
        assert current["params"] == baseline["params"]
        violations = benchgate.compare(
            current["metrics"], baseline["metrics"]
        )
        assert not violations, "\n".join(violations)

    def test_cache_meets_the_advertised_amortized_cost(self):
        """The PR's headline numbers, pinned: an ample warm cache answers
        in ≤ 1.5 amortized gets; the uncached baseline pays the full
        Alg. 2 search (> 2 gets at this depth)."""
        metrics = benchgate.measure_lookup()["metrics"]
        assert metrics["cached_ample_gets_per_probe"] <= 1.5
        assert metrics["uncached_gets_per_probe"] > 2.0
        assert (
            metrics["cached_small_gets_per_probe"]
            < metrics["uncached_gets_per_probe"]
        )

    def test_build_counts_within_tolerance(self):
        current = benchgate.measure_build()
        baseline = _load(_ROOT / "BENCH_build.json")
        assert current["params"] == baseline["params"], (
            "workload parameters changed — refresh baselines with "
            "python -m repro.devtools.benchgate --write"
        )
        violations = benchgate.compare(
            current["metrics"], baseline["metrics"]
        )
        assert not violations, "\n".join(violations)

    def test_fast_build_moves_nothing_and_puts_once_per_leaf(self):
        """The tentpole claim, pinned: the sorted fast path ships each
        final leaf with exactly one put (measure_build raises if the
        put count diverges from the leaf count) and never moves a
        record, while the incremental replay pays Theorem 2's ~0.75
        moves per key at θ=100."""
        metrics = benchgate.measure_build()["metrics"]
        assert metrics["fast_moved_per_key"] == 0.0
        assert metrics["incremental_moved_per_key"] > 0.5

    def test_serve_counts_within_tolerance(self):
        current = benchgate.measure_serve()
        baseline = _load(_ROOT / "BENCH_serve.json")
        assert current["params"] == baseline["params"], (
            "serving workload parameters changed — refresh baselines with "
            "python -m repro.devtools.benchgate --write"
        )
        violations = benchgate.compare(
            current["metrics"], baseline["metrics"]
        )
        assert not violations, "\n".join(violations)

    def test_serve_coalescing_strictly_saves(self):
        """The serving tentpole's headline, pinned: at concurrency ≥ 8
        the coalesced arm issues strictly fewer routed gets than the
        uncoalesced arm (measure_serve raises if not), and the saving is
        exactly the batched dedup count."""
        current = benchgate.measure_serve()
        metrics, info = current["metrics"], current["info"]
        assert (
            metrics["coalesced_routed_gets"]
            < metrics["uncoalesced_routed_gets"]
        )
        assert info["gets_saved_by_coalescing"] == (
            metrics["uncoalesced_routed_gets"]
            - metrics["coalesced_routed_gets"]
        )
        assert metrics["latency_p50_s"] <= metrics["latency_p99_s"]

    def test_range_respects_paper_bound_with_batching(self):
        """Batching must not change the §6.3 accounting: the per-query
        slack over B stays within the paper's +3, and rounds never
        exceed total gets."""
        metrics = benchgate.measure_range()["metrics"]
        assert metrics["lookup_slack_per_query"] <= 3.0
        assert (
            metrics["batch_rounds_per_query"] <= metrics["gets_per_query"]
        )
        assert (
            metrics["parallel_steps_per_query"] < metrics["gets_per_query"]
        )


class TestCompareLogic:
    def test_within_tolerance_passes(self):
        assert benchgate.compare({"m": 1.05}, {"m": 1.0}) == []

    def test_regression_fails(self):
        violations = benchgate.compare({"m": 1.2}, {"m": 1.0})
        assert len(violations) == 1 and "m" in violations[0]

    def test_improvement_passes_silently(self):
        assert benchgate.compare({"m": 0.4}, {"m": 1.0}) == []

    def test_missing_metric_is_a_violation(self):
        violations = benchgate.compare({}, {"m": 1.0})
        assert violations and "missing" in violations[0]

    def test_new_metrics_are_not_gated_until_written(self):
        assert benchgate.compare({"m": 1.0, "new": 99.0}, {"m": 1.0}) == []

    def test_custom_tolerance(self):
        assert benchgate.compare({"m": 1.4}, {"m": 1.0}, tolerance=0.5) == []
        assert benchgate.compare({"m": 1.6}, {"m": 1.0}, tolerance=0.5)

    def test_checked_in_baselines_parse(self):
        for name in ("BENCH_lookup.json", "BENCH_range.json"):
            data = _load(_ROOT / name)
            assert set(data) == {"params", "metrics"}
            assert data["metrics"], f"{name} has no metrics"
            assert all(
                isinstance(v, (int, float)) for v in data["metrics"].values()
            )

    def test_build_baseline_parses_with_ungated_info(self):
        """BENCH_build.json and BENCH_serve.json carry an extra ``info``
        section (wall-clock seconds / throughput — ungated views) that
        must never enter the gated metrics."""
        for name in ("BENCH_build.json", "BENCH_serve.json"):
            data = _load(_ROOT / name)
            assert set(data) == {"params", "metrics", "info"}
            assert data["metrics"], f"{name} has no metrics"
            assert all(
                isinstance(v, (int, float)) for v in data["metrics"].values()
            )
            assert not set(data["info"]) & set(data["metrics"])
