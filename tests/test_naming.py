"""Unit and property tests for the naming-function family (Defs. 1-3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.keys import mu_path
from repro.core.label import Label, ROOT, VIRTUAL_ROOT
from repro.core.naming import (
    lca_label,
    left_neighbor,
    leftmost_leaf_key,
    naming,
    next_naming,
    right_neighbor,
    rightmost_leaf_key,
)
from repro.errors import LabelError

leaf_labels = st.text(alphabet="01", min_size=1, max_size=16).map(
    lambda s: Label("0" + s)
)


class TestNaming:
    @pytest.mark.parametrize(
        "leaf, name",
        [
            ("#01100", "#011"),  # paper's first example
            ("#01011", "#010"),  # paper's second example
            ("#01111", "#0"),  # Fig. 4
            ("#0000", "#"),
            ("#0", "#"),  # single-leaf tree: root named to virtual root
            ("#00", "#"),
            ("#01", "#0"),
            ("#0101", "#010"),
        ],
    )
    def test_paper_examples(self, leaf: str, name: str):
        assert naming(Label.parse(leaf)) == Label.parse(name)

    def test_undefined_on_virtual_root(self):
        with pytest.raises(LabelError):
            naming(VIRTUAL_ROOT)

    @given(leaf_labels)
    def test_result_is_proper_prefix(self, leaf: Label):
        name = naming(leaf)
        assert name.is_proper_prefix_of(leaf)

    @given(leaf_labels)
    def test_strips_exactly_the_trailing_run(self, leaf: Label):
        name = naming(leaf)
        stripped = leaf.bits[len(name.bits):]
        assert stripped  # at least one bit removed
        assert set(stripped) == {leaf.last_bit}
        if name.bits:
            assert name.last_bit != leaf.last_bit

    @given(leaf_labels)
    def test_idempotent_composition_shrinks(self, leaf: Label):
        # Repeated application must reach the virtual root.
        current = leaf
        for _ in range(leaf.depth + 1):
            if current.is_virtual_root:
                break
            current = naming(current)
        assert current.is_virtual_root


class TestNextNaming:
    def test_paper_example(self):
        # f_nn(#0011, #0011100) = #001110
        assert next_naming(
            Label.parse("#0011"), Label.parse("#0011100")
        ) == Label.parse("#001110")

    def test_skips_same_bit_run(self):
        assert next_naming(
            Label.parse("#01"), Label.parse("#0111101")
        ) == Label.parse("#011110")

    def test_requires_proper_prefix(self):
        with pytest.raises(LabelError):
            next_naming(Label.parse("#01"), Label.parse("#01"))
        with pytest.raises(LabelError):
            next_naming(Label.parse("#010"), Label.parse("#0110"))

    def test_no_next_name_when_bits_identical(self):
        with pytest.raises(LabelError):
            next_naming(Label.parse("#011"), Label.parse("#01111"))

    @given(leaf_labels, st.text(alphabet="01", min_size=1, max_size=8))
    def test_shared_name_class(self, x: Label, suffix: str):
        """All prefixes strictly between x and f_nn(x, μ) share f_n(x).

        This is the property that lets Alg. 2 skip probes.
        """
        mu = x.extend(suffix)
        try:
            nxt = next_naming(x, mu)
        except LabelError:
            return  # suffix continued with identical bits: nothing between
        for length in range(x.length + 1, nxt.length):
            between = mu.prefix(length)
            assert naming(between) == naming(x)


class TestNeighbors:
    @pytest.mark.parametrize(
        "node, expected",
        [
            ("#000", "#001"),
            ("#001", "#01"),
            ("#0100", "#0101"),
            ("#0011", "#01"),
        ],
    )
    def test_right_neighbor(self, node: str, expected: str):
        assert right_neighbor(Label.parse(node)) == Label.parse(expected)

    @pytest.mark.parametrize("node", ["#0", "#01", "#0111", "#"])
    def test_rightmost_maps_to_self(self, node: str):
        label = Label.parse(node)
        assert right_neighbor(label) == label

    @pytest.mark.parametrize(
        "node, expected",
        [
            ("#001", "#000"),
            ("#01", "#00"),
            ("#0101", "#0100"),
            ("#0100", "#00"),
        ],
    )
    def test_left_neighbor(self, node: str, expected: str):
        assert left_neighbor(Label.parse(node)) == Label.parse(expected)

    @pytest.mark.parametrize("node", ["#0", "#00", "#0000", "#"])
    def test_leftmost_maps_to_self(self, node: str):
        label = Label.parse(node)
        assert left_neighbor(label) == label

    @given(leaf_labels)
    def test_right_neighbor_interval_is_adjacent(self, node: Label):
        """f_rn(x)'s interval starts exactly where x's ends (the sweep
        decomposition of §6.1 depends on this)."""
        neighbor = right_neighbor(node)
        if neighbor == node:
            assert node.on_rightmost_spine
        else:
            assert neighbor.interval.low == node.interval.high

    @given(leaf_labels)
    def test_left_neighbor_interval_is_adjacent(self, node: Label):
        neighbor = left_neighbor(node)
        if neighbor == node:
            assert node.on_leftmost_spine
        else:
            assert neighbor.interval.high == node.interval.low

    @given(leaf_labels)
    def test_right_neighbor_ends_with_one(self, node: Label):
        neighbor = right_neighbor(node)
        if neighbor != node:
            assert neighbor.last_bit == "1"

    @given(leaf_labels)
    def test_left_neighbor_ends_with_zero(self, node: Label):
        neighbor = left_neighbor(node)
        if neighbor != node:
            assert neighbor.last_bit == "0"


class TestExtremeLeafKeys:
    @given(leaf_labels, st.integers(0, 6))
    def test_rightmost_leaf_key(self, subtree: Label, extra_ones: int):
        leaf = subtree.extend("1" * extra_ones)
        # The rightmost leaf of the subtree is subtree + 1…1; its storage
        # key must equal rightmost_leaf_key(subtree).
        assert naming(leaf) == rightmost_leaf_key(subtree) or extra_ones == 0

    @given(leaf_labels, st.integers(1, 6))
    def test_rightmost_leaf_key_strict(self, subtree: Label, extra_ones: int):
        leaf = subtree.extend("1" * extra_ones)
        assert naming(leaf) == rightmost_leaf_key(subtree)

    @given(leaf_labels, st.integers(1, 6))
    def test_leftmost_leaf_key_strict(self, subtree: Label, extra_zeros: int):
        leaf = subtree.extend("0" * extra_zeros)
        assert naming(leaf) == leftmost_leaf_key(subtree)

    def test_virtual_root_keys(self):
        assert leftmost_leaf_key(VIRTUAL_ROOT) == VIRTUAL_ROOT
        assert rightmost_leaf_key(VIRTUAL_ROOT) == naming(ROOT)


class TestLCA:
    def test_paper_example(self):
        # §6.2: LCA of [0.2, 0.6) is #0.
        lo = mu_path(0.2, 14)
        hi = mu_path(0.6, 14)
        assert lca_label(lo, hi) == ROOT

    def test_same_path(self):
        path = mu_path(0.3, 10)
        assert lca_label(path, path) == path

    @given(
        st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
    )
    def test_lca_contains_both(self, a: float, b: float):
        pa, pb = mu_path(a, 16), mu_path(b, 16)
        lca = lca_label(pa, pb)
        assert lca.is_prefix_of(pa) and lca.is_prefix_of(pb)
        if not lca.is_virtual_root:
            assert lca.contains(a) and lca.contains(b)
