"""Unit tests for the leaf-label cache and the cache-fronted lookup.

Covers the LRU mechanics, the prefix-scan covering lookup, the split and
merge hooks, staleness recovery when *another* writer mutates the shared
index, and the failure discipline: a typed substrate error (including an
open circuit breaker) must propagate without evicting or poisoning
cache entries.
"""

from __future__ import annotations

import pytest

from repro.cache import LeafCache, cached_lookup
from repro.core import IndexConfig, IndexInspector, LHTIndex
from repro.core.label import Label, ROOT
from repro.dht import LocalDHT
from repro.errors import CircuitOpenError, ConfigurationError, DHTError
from repro.resilience import CircuitBreaker, ResilientDHT, RetryPolicy


def _labels(cache: LeafCache) -> list[str]:
    return [str(label) for label in cache.labels()]


def _live_leaves(index: LHTIndex) -> set[str]:
    return {
        str(b.label) for b in IndexInspector(index.dht).buckets().values()
    }


class TestLeafCache:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            LeafCache(0)
        with pytest.raises(ConfigurationError):
            LeafCache(-3)

    def test_store_and_covering_lookup(self):
        cache = LeafCache(8)
        cache.store(Label("000"))  # [0, 0.25)
        cache.store(Label("001"))  # [0.25, 0.5)
        assert cache.lookup(0.1, 20) == Label("000")
        assert cache.lookup(0.3, 20) == Label("001")
        assert cache.lookup(0.9, 20) is None  # right half not cached
        assert len(cache) == 2

    def test_lookup_prefers_shortest_covering_prefix(self):
        # Labels form an antichain in a consistent snapshot, but after
        # remote churn an ancestor and a descendant can coexist; the scan
        # returns the shortest (the ancestor), which validation resolves.
        cache = LeafCache(8)
        cache.store(Label("000"))
        cache.store(ROOT)
        assert cache.lookup(0.05, 20) == ROOT

    def test_lru_eviction_order(self):
        cache = LeafCache(2)
        cache.store(Label("000"))
        cache.store(Label("001"))
        assert cache.lookup(0.1, 20) == Label("000")  # 001 is now LRU
        cache.store(Label("010"))
        assert Label("001") not in cache
        assert Label("000") in cache and Label("010") in cache
        assert len(cache) == 2

    def test_store_existing_refreshes_recency(self):
        cache = LeafCache(2)
        cache.store(Label("000"))
        cache.store(Label("001"))
        cache.store(Label("000"))  # refresh, not duplicate
        assert len(cache) == 2
        cache.store(Label("010"))
        assert Label("001") not in cache and Label("000") in cache

    def test_invalidate_and_clear(self):
        cache = LeafCache(4)
        cache.store(Label("000"))
        assert cache.invalidate(Label("000")) is True
        assert cache.invalidate(Label("000")) is False
        cache.store(Label("001"))
        cache.clear()
        assert len(cache) == 0

    def test_split_hook_keeps_cache_exact(self):
        index = LHTIndex(
            LocalDHT(8, 0),
            IndexConfig(theta_split=2, cache_enabled=True, cache_capacity=16),
        )
        assert index.cache is not None
        for k in (0.1, 0.2, 0.3, 0.6, 0.8):
            index.insert(k)
        # Single-writer exactness: every cached label names a live leaf.
        assert set(_labels(index.cache)) <= _live_leaves(index)

    def test_merge_hook_keeps_cache_exact(self):
        index = LHTIndex(
            LocalDHT(8, 0),
            IndexConfig(
                theta_split=2,
                merge_enabled=True,
                cache_enabled=True,
                cache_capacity=16,
            ),
        )
        assert index.cache is not None
        keys = [0.1, 0.2, 0.3, 0.6, 0.8, 0.9]
        for k in keys:
            index.insert(k)
        for k in keys:
            assert index.delete(k).deleted
        assert set(_labels(index.cache)) <= _live_leaves(index)
        assert index.range_query(0.0, 1.0).records == ()

    def test_root_only_index_caches_root(self):
        index = LHTIndex(
            LocalDHT(8, 0),
            IndexConfig(theta_split=8, cache_enabled=True),
        )
        assert index.cache is not None
        index.insert(0.5)
        record, cost = index.exact_match(0.5)
        assert record is not None and cost == 1
        assert ROOT in index.cache


class TestCachedLookupStaleness:
    """A second writer mutates the shared DHT behind the cache's back."""

    @staticmethod
    def _pair() -> tuple[LHTIndex, LHTIndex]:
        dht = LocalDHT(8, 0)
        cached = LHTIndex(
            dht,
            IndexConfig(
                theta_split=4,
                merge_enabled=True,
                cache_enabled=True,
                cache_capacity=64,
            ),
        )
        writer = LHTIndex(dht, IndexConfig(theta_split=4, merge_enabled=True))
        return cached, writer

    def test_remote_split_entry_validates_or_recovers(self):
        cached, writer = self._pair()
        for k in (0.1, 0.6):
            cached.insert(k)
        assert cached.exact_match(0.1)[0] is not None  # warm the cache
        # A different client splits the left leaf.
        for k in (0.2, 0.3, 0.05, 0.15, 0.25):
            writer.insert(k)
        probes = (0.05, 0.15, 0.25, 0.3, 0.1)
        before = cached.dht.metrics.snapshot()
        for k in probes:
            record, _ = cached.exact_match(k)
            assert record is not None and record.key == k
        spent = cached.dht.metrics.snapshot() - before
        # Probes either hit (Theorem 2 keeps one child under the parent's
        # name), detect staleness and re-search, or miss; none may lie.
        assert (
            spent.cache_hits + spent.cache_stale + spent.cache_misses
            == len(probes)
        )
        # Detected staleness re-primes the cache: probing again is all
        # hits at exactly one validated get each.
        before = cached.dht.metrics.snapshot()
        for k in probes:
            assert cached.exact_match(k)[0] is not None
        spent = cached.dht.metrics.snapshot() - before
        assert spent.cache_hits == len(probes) and spent.cache_stale == 0
        assert spent.gets == len(probes)

    def test_remote_merge_invalidates_through_probe(self):
        cached, writer = self._pair()
        keys = [0.1, 0.2, 0.3, 0.6, 0.8, 0.9]
        for k in keys:
            cached.insert(k)
        for k in keys:
            assert cached.exact_match(k)[0] is not None
        # The other client deletes everything, collapsing leaves.
        for k in keys:
            assert writer.delete(k).deleted
        for k in keys:
            record, _ = cached.exact_match(k)
            assert record is None  # proven absent, never a stale PRESENT
        # The detours healed the entries: the next probe is a clean hit.
        before = cached.dht.metrics.snapshot()
        assert cached.exact_match(0.1)[0] is None
        spent = cached.dht.metrics.snapshot() - before
        assert spent.cache_hits == 1

    def test_stale_probe_charged_honestly(self):
        cached, writer = self._pair()
        cached.insert(0.1)
        cached.exact_match(0.1)
        for k in (0.2, 0.3, 0.05, 0.15, 0.25):
            writer.insert(k)
        before = cached.dht.metrics.snapshot()
        result = cached.lookup(0.25)
        spent = cached.dht.metrics.snapshot() - before
        assert result.bucket is not None
        # The result's charge matches the substrate's, probe included —
        # a stale entry costs one get *more* than an uncached search.
        assert result.dht_lookups == spent.gets
        if spent.cache_stale:
            assert result.dht_lookups > 1


class _ErringDHT(LocalDHT):
    """LocalDHT whose gets raise a typed error while armed."""

    def __init__(self) -> None:
        super().__init__(n_peers=8, seed=0)
        self.erring = False

    def get(self, key: str):
        if self.erring:
            raise DHTError("substrate down")
        return super().get(key)


class TestCacheFailureDiscipline:
    def test_dht_error_propagates_and_cache_is_untouched(self):
        dht = _ErringDHT()
        index = LHTIndex(dht, IndexConfig(theta_split=8, cache_enabled=True))
        index.insert(0.5)
        index.exact_match(0.5)
        entries = _labels(index.cache)
        dht.erring = True
        with pytest.raises(DHTError):
            index.exact_match(0.5)
        assert _labels(index.cache) == entries  # not evicted, not poisoned
        dht.erring = False
        before = dht.metrics.snapshot()
        assert index.exact_match(0.5)[0] is not None
        assert (dht.metrics.snapshot() - before).cache_hits == 1

    def test_open_breaker_does_not_poison_cache(self):
        inner = _ErringDHT()
        dht = ResilientDHT(
            inner,
            policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout=3.0),
            seed=3,
        )
        index = LHTIndex(dht, IndexConfig(theta_split=8, cache_enabled=True))
        index.insert(0.5)
        index.exact_match(0.5)
        entries = _labels(index.cache)
        stale_before = dht.metrics.snapshot().cache_stale

        inner.erring = True
        for _ in range(2):  # feed the breaker to its threshold
            with pytest.raises(DHTError):
                index.lookup(0.5)
        with pytest.raises(CircuitOpenError):
            index.lookup(0.5)
        # Fast rejections and substrate errors alike left the cache alone.
        assert _labels(index.cache) == entries

        inner.erring = False
        record = None
        for _ in range(20):  # rejections tick the clock past the cool-down
            try:
                record, _ = index.exact_match(0.5)
                break
            except DHTError:
                continue
        assert record is not None and record.key == 0.5
        # Recovery revalidated the surviving entry: no stale fallback.
        assert dht.metrics.snapshot().cache_stale == stale_before
        assert _labels(index.cache) == entries


class TestCacheConfig:
    def test_cache_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            IndexConfig(theta_split=8, cache_capacity=0)

    def test_cache_off_by_default(self):
        index = LHTIndex(LocalDHT(8, 0), IndexConfig(theta_split=8))
        assert index.cache is None

    def test_cached_lookup_callable_directly(self):
        dht = LocalDHT(8, 0)
        config = IndexConfig(theta_split=8)
        index = LHTIndex(dht, config)
        index.insert(0.5)
        cache = LeafCache(4)
        first = cached_lookup(dht, config, cache, 0.5)
        second = cached_lookup(dht, config, cache, 0.5)
        assert first.bucket is not None and second.bucket is not None
        assert first.bucket.label == second.bucket.label
        assert second.dht_lookups == 1
