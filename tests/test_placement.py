"""Placement-policy conformance matrix, churn soak, and failover tests.

Every registered substrate's topology policy is held to the
:class:`~repro.dht.kernel.PlacementPolicy` contract — pure, owner-first,
distinct live peers, graceful degradation — by iterating the registry,
so enrolling a new substrate automatically enrolls its policy here.
The second half pins the layered failover semantics end to end:
deterministic rescue through ``exact_match_checked`` and degraded range
queries (``FaultyDHT`` with every routed get dropped but probes
perfect), replica-divergence accounting on remove, and the k = 1
byte-identity guarantee.
"""

from __future__ import annotations

import pytest

from repro.core import IndexConfig, LHTIndex
from repro.core.interval import Range
from repro.core.range_query import RangeQueryExecutor
from repro.core.results import MatchStatus
from repro.dht import registry
from repro.dht.faulty import FaultyDHT
from repro.dht.local import LocalDHT
from repro.dht.placement import HashSaltPolicy
from repro.dht.replicated import ReplicatedDHT, replica_layer

N_PEERS = 16
SAMPLE_KEYS = [f"key-{i}" for i in range(8)] + ["0b0", "0b0101", "#r/meta"]


def _base(dht):
    base = dht
    while getattr(base, "inner", None) is not None:
        base = base.inner
    return base


@pytest.mark.parametrize("name", registry.names())
class TestConformanceMatrix:
    """The contract, checked per substrate via the registry."""

    def test_owner_first_distinct_live(self, name):
        dht = registry.make(name, N_PEERS, seed=0)
        policy = registry.placement_for(dht)
        alive = _base(dht).peers.is_live
        for key in SAMPLE_KEYS:
            owner = dht.peer_of(key)
            for k in (1, 2, 3, 4):
                targets = policy.replicas_for(key, owner, k)
                assert targets[0] == owner  # owner-first
                assert len(targets) == k  # 16 live peers >= k
                assert len(set(targets)) == k  # distinct
                assert all(alive(peer) for peer in targets)

    def test_placement_is_deterministic(self, name):
        dht = registry.make(name, N_PEERS, seed=0)
        policy = registry.placement_for(dht)
        for key in SAMPLE_KEYS:
            owner = dht.peer_of(key)
            first = policy.replicas_for(key, owner, 3)
            assert policy.replicas_for(key, owner, 3) == first

    def test_graceful_degradation(self, name):
        # Fewer live peers than k: every policy returns all of them
        # rather than padding or raising.
        dht = registry.make(name, 3, seed=0)
        policy = registry.placement_for(dht)
        owner = dht.peer_of("scarce")
        targets = policy.replicas_for("scarce", owner, 8)
        assert targets[0] == owner
        assert len(targets) == 3
        assert len(set(targets)) == 3


@pytest.mark.parametrize(
    "name", [s.name for s in registry.specs() if s.dynamic]
)
def test_churn_soak_replaces_dead_holders(name):
    """Killing a replica holder re-places onto live peers only."""
    dht = registry.make(name, N_PEERS, seed=0)
    policy = registry.placement_for(dht)
    alive = _base(dht).peers.is_live
    key = "soak-key"
    rounds = 0
    for _ in range(4):  # four rounds of targeted churn
        owner = dht.peer_of(key)
        targets = policy.replicas_for(key, owner, 3)
        victim = None  # a backup holder, never the owner
        for candidate in targets[1:]:
            if hasattr(dht, "fail"):
                dht.fail(candidate)
                victim = candidate
                break
            if dht.leave(candidate):  # CAN may refuse an unmergeable zone
                victim = candidate
                break
        if victim is None:
            continue
        rounds += 1
        if hasattr(dht, "stabilize_all"):
            dht.stabilize_all(rounds=2)
        owner = dht.peer_of(key)
        replaced = policy.replicas_for(key, owner, 3)
        assert victim not in replaced
        assert replaced[0] == owner
        assert len(set(replaced)) == 3
        assert all(alive(peer) for peer in replaced)
    assert rounds >= 2  # the soak actually churned


def test_placement_for_unwraps_wrapper_stacks():
    """The policy binds the *base* substrate under any wrapper stack."""
    base = LocalDHT(N_PEERS, 0)
    wrapped = FaultyDHT(base, get_drop_rate=0.0)
    policy = registry.placement_for(wrapped)
    assert not isinstance(policy, HashSaltPolicy)
    assert policy.substrate is base


def test_placement_for_falls_back_to_salted_hashing():
    class ForeignDHT:
        """No kernel peer access, not registered."""

        def peer_of(self, key):
            return 0

    foreign = ForeignDHT()
    policy = registry.placement_for(foreign)
    assert isinstance(policy, HashSaltPolicy)
    assert policy.substrate is foreign  # outermost layer, not a base


class TestDivergenceAccounting:
    def test_divergent_remove_is_counted_and_primary_wins(self):
        inner = LocalDHT(N_PEERS, 0)
        dht = ReplicatedDHT(inner, n_replicas=3)
        dht.put("k", "v")
        # Corrupt one backup copy behind the wrapper's back.
        backup = dht.replica_peers("k")[1]
        inner.local_write_at("k", "stale", backup)
        assert dht.remove("k") == "v"  # primary copy is authoritative
        assert dht.divergent_removes == 1
        assert inner.metrics.replica_divergences == 1

    def test_agreeing_removes_do_not_count(self):
        dht = ReplicatedDHT(LocalDHT(N_PEERS, 0), n_replicas=3)
        dht.put("k", "v")
        assert dht.remove("k") == "v"
        assert dht.divergent_removes == 0


class TestDeterministicFailover:
    """Every routed get drops, every direct probe answers."""

    @staticmethod
    def _build(n_replicas):
        faulty = FaultyDHT(LocalDHT(N_PEERS, 0), seed=7)
        dht = ReplicatedDHT(faulty, n_replicas=n_replicas)
        index = LHTIndex(dht, IndexConfig(theta_split=4, max_depth=20))
        keys = [i / 64 for i in range(64)]
        for key in keys:
            index.insert(key)
        faulty.get_drop_rate = 1.0
        faulty.probe_drop_rate = 0.0
        return dht, index, keys

    def test_exact_match_rescued_with_replicas(self):
        dht, index, keys = self._build(n_replicas=3)
        for key in keys[:8]:
            result = index.exact_match_checked(key)
            assert result.status is MatchStatus.PRESENT
        assert dht.metrics.replica_failovers >= 8
        assert dht.metrics.replica_probe_gets >= 8

    def test_exact_match_unreachable_without_replicas(self):
        dht, index, keys = self._build(n_replicas=1)
        result = index.exact_match_checked(keys[0])
        assert result.status is MatchStatus.UNREACHABLE
        assert dht.metrics.replica_failovers == 0

    def test_degraded_range_query_completes_with_replicas(self):
        dht, index, keys = self._build(n_replicas=3)
        executor = RangeQueryExecutor(dht, index.config)
        result = executor.run(Range(0.25, 0.75), degraded=True)
        assert result.complete
        assert list(result.keys) == [k for k in keys if 0.25 <= k < 0.75]
        assert dht.metrics.replica_failovers > 0

    def test_degraded_range_query_incomplete_without_replicas(self):
        dht, index, _ = self._build(n_replicas=1)
        assert replica_layer(dht) is None  # k=1 offers no failover
        executor = RangeQueryExecutor(dht, index.config)
        result = executor.run(Range(0.25, 0.75), degraded=True)
        assert not result.complete
        assert result.unreachable  # the gaps are declared


class TestKOneIdentity:
    """n_replicas=1 is a byte-identical pass-through."""

    @staticmethod
    def _drive(dht):
        for i in range(64):
            dht.put(f"id-{i % 24}", i)
            dht.get(f"id-{(i * 7) % 31}")
            if i % 5 == 0:
                dht.remove(f"id-{(i * 3) % 24}")
        return dht.metrics.snapshot(), sorted(dht.keys())

    def test_metrics_and_state_identical(self):
        bare = self._drive(LocalDHT(N_PEERS, 0))
        wrapped = self._drive(ReplicatedDHT(LocalDHT(N_PEERS, 0), 1))
        assert bare == wrapped

    def test_policy_never_consulted_at_k1(self):
        class ExplodingPolicy(HashSaltPolicy):
            def replicas_for(self, key, owner, k):
                raise AssertionError("policy consulted at k=1")

        dht = ReplicatedDHT(
            LocalDHT(N_PEERS, 0), n_replicas=1, policy=ExplodingPolicy()
        )
        dht.put("k", "v")
        assert dht.get("k") == "v"
        assert dht.remove("k") == "v"
