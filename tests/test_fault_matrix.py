"""Fault-injection matrix: every substrate × drop rate × resilience arm.

The safety contract under injected faults, pinned across the whole
substrate zoo: an index operation over a lossy DHT may

* return an **explicit miss** (``None`` / UNREACHABLE / not-found),
* **raise** a typed :class:`~repro.errors.ReproError`, or
* return a **degraded result that declares its gaps**
  (``complete=False`` + unreachable intervals),

but it must NEVER return silently wrong data: a record that isn't
stored, a key outside the queried range, a "complete" answer that is
missing records, or a proven-ABSENT verdict for a stored key.

The matrix runs each cell twice — raw ``FaultyDHT`` and
``ResilientDHT``-wrapped — because the contract must hold identically in
both arms; the wrapper only changes *how often* the lossy outcomes
occur, never what kind they are.

The substrate axis iterates ``repro.dht.registry``, so every enrolled
overlay (all eight) is fault-tested automatically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexConfig, LHTIndex, MatchStatus
from repro.dht import FaultyDHT
from repro.dht.registry import make as make_substrate, names as substrate_names
from repro.errors import ReproError
from repro.resilience import ResilientDHT

SUBSTRATES = {
    name: (lambda name=name: make_substrate(name, 16, 0))
    for name in substrate_names()
}

DROP_RATES = (0.05, 0.2, 0.5)

N_KEYS = 200
N_PROBES = 30
RANGES = ((0.0, 0.25), (0.3, 0.8), (0.6, 1.0))


def _build(substrate: str, drop_rate: float, resilient: bool, cached: bool):
    """Index over [ResilientDHT over] FaultyDHT over the substrate.

    Built fault-free (every key is genuinely stored), then the drop rate
    is switched on for the probe phase.  The ``cached`` arm runs the same
    cell with the leaf cache enabled at a deliberately small capacity:
    the safety contract must hold whether an answer came from a
    validated cache hit, a stale-entry fallback, or a cold search.  The
    cache is warmed fault-free (by the build) *and* probed under faults,
    so stale-looking validation probes (dropped replies) occur.
    """
    faulty = FaultyDHT(SUBSTRATES[substrate](), seed=7)
    dht = ResilientDHT(faulty, seed=7) if resilient else faulty
    index = LHTIndex(
        dht,
        IndexConfig(theta_split=8, cache_enabled=cached, cache_capacity=16),
    )
    keys = [float(k) for k in np.random.default_rng(7).random(N_KEYS)]
    index.bulk_load(keys)
    faulty.get_drop_rate = drop_rate
    return index, keys


@pytest.fixture(
    params=[
        (name, rate, resilient, cached)
        for name in sorted(SUBSTRATES)
        for rate in DROP_RATES
        for resilient in (False, True)
        for cached in (False, True)
    ],
    ids=lambda p: (
        f"{p[0]}-drop{p[1]}-{'resilient' if p[2] else 'raw'}"
        f"-{'cached' if p[3] else 'uncached'}"
    ),
)
def cell(request):
    substrate, rate, resilient, cached = request.param
    index, keys = _build(substrate, rate, resilient, cached)
    return index, keys


class TestFaultMatrix:
    def test_exact_match_never_lies(self, cell):
        index, keys = cell
        stored = set(keys)
        for key in keys[:N_PROBES]:
            try:
                record, _ = index.exact_match(key)
            except ReproError:
                continue  # an explicit raise is a legal outcome
            if record is not None:
                assert record.key == key and key in stored

    def test_exact_match_checked_absent_is_proven(self, cell):
        index, keys = cell
        for key in keys[:N_PROBES]:
            result = index.exact_match_checked(key)
            # The key IS stored: ABSENT would be a silent lie.  PRESENT
            # and UNREACHABLE are the only legal verdicts.
            assert result.status in (MatchStatus.PRESENT, MatchStatus.UNREACHABLE)
            if result.status is MatchStatus.PRESENT:
                assert result.record is not None and result.record.key == key

    def test_repeated_probes_never_lie(self, cell):
        """Re-probing the same keys cycles hit/stale/miss cache states
        under drops; every round must stay truthful (regression guard:
        a dropped validation reply may cost, but may never flip a
        verdict or leave a poisoned entry for the next round)."""
        index, keys = cell
        stored = set(keys)
        for _ in range(3):
            for key in keys[:10]:
                result = index.exact_match_checked(key)
                assert result.status in (
                    MatchStatus.PRESENT,
                    MatchStatus.UNREACHABLE,
                )
                if result.status is MatchStatus.PRESENT:
                    assert result.record is not None
                    assert result.record.key == key and key in stored

    def test_range_query_raises_or_is_exact(self, cell):
        index, keys = cell
        for lo, hi in RANGES:
            expect = sorted(k for k in keys if lo <= k < hi)
            try:
                result = index.range_query(lo, hi)
            except ReproError:
                continue  # a detected drop is allowed to abort the query
            # No exception: the answer must be exactly right.
            assert result.keys == expect

    def test_degraded_range_query_declares_gaps(self, cell):
        index, keys = cell
        for lo, hi in RANGES:
            expect = set(k for k in keys if lo <= k < hi)
            result = index.range_query(lo, hi, degraded=True)
            got = set(result.keys)
            assert got <= expect  # subset of the truth, never out of range
            if result.complete:
                assert got == expect and not result.unreachable
            else:
                assert result.unreachable
                for key in expect - got:
                    assert any(r.contains(key) for r in result.unreachable)

    def test_degraded_minmax_bounds_the_extremum(self, cell):
        index, keys = cell
        for query, truth in (
            (index.min_query, min(keys)),
            (index.max_query, max(keys)),
        ):
            result = query(degraded=True)
            if result.complete:
                assert result.record is not None
                assert result.record.key == truth
            else:
                # The walk was cut off: the unreported extremum must lie
                # inside a declared unreachable interval.
                assert result.unreachable
                assert any(r.contains(truth) for r in result.unreachable)


class TestMutationFaults:
    """Injected put/remove failures surface as typed errors + counters."""

    @pytest.mark.parametrize("name", sorted(SUBSTRATES))
    def test_put_and_remove_failures_are_typed_and_counted(self, name):
        from repro.errors import DHTError

        faulty = FaultyDHT(
            SUBSTRATES[name](), put_fail_rate=1.0, remove_fail_rate=1.0, seed=1
        )
        with pytest.raises(DHTError):
            faulty.put("k", 1)
        with pytest.raises(DHTError):
            faulty.remove("k")
        assert faulty.failed_puts == 1 and faulty.failed_removes == 1
        assert faulty.metrics.failed_puts == 1
        assert faulty.metrics.failed_removes == 1
