"""Serving-layer tests: serve-vs-direct equivalence, coalescing bounds,
admission control, metrics wiring, and workload determinism.

The central claim (ISSUE satellite 2): pushing a seeded concurrent
session mix through :mod:`repro.serve` must leave the index in exactly
the state — and give exactly the answers — that serially replaying the
same requests in the service's executed order produces.  Coalescing
must only ever *save* routed gets relative to the direct arm, never
spend more.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.local import LocalDHT
from repro.errors import ConfigurationError, OverloadError, ReproError
from repro.serve import (
    AsyncFrontend,
    Request,
    RequestKind,
    ServeConfig,
    ServeEngine,
    Status,
    ThreadedFrontend,
    WorkloadConfig,
    execute_batch,
    generate_workload,
)

SEED = 11
N_KEYS = 512
THETA = 50


def build_index(seed: int = SEED) -> tuple[LHTIndex, list[float]]:
    """One deterministic index build; call twice for identical twins."""
    dht = LocalDHT(n_peers=16, seed=seed)
    index = LHTIndex(dht, IndexConfig(theta_split=THETA, max_depth=20))
    rng = np.random.default_rng(seed + 1)
    keys = [float(k) for k in rng.random(N_KEYS)]
    index.bulk_load(keys)
    return index, keys


def make_workload(keys, n=200, rate=300.0, seed=SEED, **kwargs):
    return generate_workload(
        keys, WorkloadConfig(n_requests=n, rate=rate, **kwargs), seed=seed
    )


def replay_direct(index: LHTIndex, requests):
    """Serial ground truth: each request via the plain index API."""
    answers = []
    for request in requests:
        if request.kind is RequestKind.LOOKUP:
            record, _ = index.exact_match(request.key)
            answers.append(record)
        elif request.kind is RequestKind.INSERT:
            answers.append(index.insert(request.key, request.value).leaf.bits)
        elif request.kind is RequestKind.REMOVE:
            answers.append(index.delete(request.key).deleted)
        else:
            answers.append(
                tuple(index.range_query(request.key, request.hi).records)
            )
    return answers


def index_fingerprint(index: LHTIndex):
    """Canonical view of the stored index: every DHT key and the exact
    record tuple of every stored bucket."""
    state = {}
    for key in sorted(index.dht.keys()):
        bucket = index.dht.peek(key)
        state[key] = getattr(bucket, "records", bucket)
    return index.leaf_count, state


class TestServeVsDirectEquivalence:
    @pytest.mark.parametrize("coalesce", [True, False], ids=["coalesced", "uncoalesced"])
    def test_engine_matches_serial_replay(self, coalesce):
        served_index, keys = build_index()
        workload = make_workload(keys, n=240, rate=250.0)
        engine = ServeEngine(
            served_index,
            ServeConfig(max_in_flight=8, max_queue=64, coalesce=coalesce),
        )
        result = engine.run(workload)
        assert len(result.responses) == len(workload)

        executed = [workload[i] for i in result.executed_order]
        direct_index, _ = build_index()
        before = direct_index.dht.metrics.snapshot()
        expected = replay_direct(direct_index, [a.request for a in executed])
        direct_spent = direct_index.dht.metrics.snapshot() - before

        for arrival, answer in zip(executed, expected):
            response = result.responses[arrival.index]
            assert response.status is Status.OK
            assert response.answer == answer

        assert index_fingerprint(served_index) == index_fingerprint(
            direct_index
        )
        # Coalescing must only save routed gets, never spend more.
        served_gets = served_index.dht.metrics.snapshot().gets
        assert served_gets <= direct_spent.gets
        if coalesce:
            assert result.coalesced_saved == direct_spent.gets - served_gets

    def test_coalescing_saves_at_concurrency_8(self):
        """At a full window of skewed concurrent lookups the dedup must
        fire: strictly fewer routed gets than the uncoalesced arm."""
        runs = {}
        for coalesce in (True, False):
            index, keys = build_index()
            workload = make_workload(
                keys, n=240, rate=400.0, skew=1.2,
                mix={"lookup": 1.0},
            )
            ServeEngine(
                index,
                ServeConfig(max_in_flight=8, max_queue=64, coalesce=coalesce),
            ).run(workload)
            runs[coalesce] = index.dht.metrics.snapshot().gets
        assert runs[True] < runs[False]

    def test_rejected_requests_route_nothing(self):
        index, keys = build_index()
        workload = make_workload(keys, n=60, rate=10_000.0)
        result = ServeEngine(
            index, ServeConfig(max_in_flight=1, max_queue=0)
        ).run(workload)
        rejected = [
            r for r in result.responses if r.status is Status.REJECTED
        ]
        assert rejected, "overloaded run produced no rejections"
        assert all(r.dht_lookups == 0 for r in rejected)
        snap = index.dht.metrics.snapshot()
        assert snap.serve_rejections == len(rejected)


class TestAdmissionAndMetrics:
    def test_metrics_wiring(self):
        index, keys = build_index()
        workload = make_workload(keys, n=120, rate=500.0)
        result = ServeEngine(
            index, ServeConfig(max_in_flight=4, max_queue=8)
        ).run(workload)
        metrics = index.dht.metrics
        completed = len(result.responses) - result.rejected
        assert metrics.serve_requests == completed
        assert len(metrics.request_latencies) == completed
        assert metrics.serve_batches == result.batches
        assert metrics.serve_coalesced_gets == result.coalesced_saved
        assert metrics.queue_depth_peak >= 1
        p = metrics.latency_percentiles()
        assert 0.0 < p["p50"] <= p["p90"] <= p["p99"]
        assert result.percentiles == p

    def test_percentiles_empty_sample_is_zero(self):
        index, _ = build_index()
        assert index.dht.metrics.latency_percentiles() == {
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
        }

    def test_snapshot_carries_serve_counters(self):
        index, keys = build_index()
        before = index.dht.metrics.snapshot()
        ServeEngine(index, ServeConfig()).run(
            make_workload(keys, n=40, rate=100.0)
        )
        spent = index.dht.metrics.snapshot() - before
        assert spent.serve_requests > 0
        assert spent.serve_batches > 0

    def test_overload_error_is_typed(self):
        assert issubclass(OverloadError, ReproError)


class TestBatchShape:
    def test_empty_batch_rejected(self):
        index, _ = build_index()
        with pytest.raises(ConfigurationError):
            execute_batch(index, [], ServeConfig())

    def test_mixed_batch_rejected(self):
        index, _ = build_index()
        batch = [
            Request(RequestKind.LOOKUP, 0.5),
            Request(RequestKind.INSERT, 0.25, value=1),
        ]
        with pytest.raises(ConfigurationError):
            execute_batch(index, batch, ServeConfig())

    def test_single_write_batch_allowed(self):
        index, _ = build_index()
        result = execute_batch(
            index, [Request(RequestKind.INSERT, 0.25, value=1)], ServeConfig()
        )
        assert result.responses[0].status is Status.OK

    def test_unsorted_arrivals_rejected(self):
        index, keys = build_index()
        workload = make_workload(keys, n=10, rate=100.0)
        shuffled = [workload[1], workload[0], *workload[2:]]
        with pytest.raises(ConfigurationError):
            ServeEngine(index, ServeConfig()).run(shuffled)

    def test_range_request_needs_upper_bound(self):
        with pytest.raises(ConfigurationError):
            Request(RequestKind.RANGE, 0.1)


class TestAsyncFrontend:
    def test_concurrent_sessions_match_direct_answers(self):
        async def drive():
            index, keys = build_index()
            config = ServeConfig(max_in_flight=4, max_queue=256)
            async with AsyncFrontend(index, config) as frontend:
                async def session(session_keys):
                    return [
                        await frontend.submit(Request(RequestKind.LOOKUP, k))
                        for k in session_keys
                    ]

                sessions = [keys[i::8][:12] for i in range(8)]
                results = await asyncio.gather(*map(session, sessions))
            return sessions, results, frontend

        sessions, results, frontend = asyncio.run(drive())
        direct, _ = build_index()
        for session_keys, responses in zip(sessions, results):
            for key, response in zip(session_keys, responses):
                assert response.status is Status.OK
                record, _ = direct.exact_match(key)
                assert response.answer == record
        submitted = sum(len(s) for s in sessions)
        assert sorted(frontend.executed_order) == list(range(submitted))

    def test_mixed_ops_replay_in_executed_order(self):
        async def drive():
            index, keys = build_index()
            requests = [
                Request(RequestKind.INSERT, 0.123456, value="x"),
                Request(RequestKind.LOOKUP, keys[0]),
                Request(RequestKind.LOOKUP, 0.123456),
                Request(RequestKind.REMOVE, keys[1]),
                Request(RequestKind.LOOKUP, keys[1]),
                Request(RequestKind.RANGE, 0.2, hi=0.25),
            ]
            config = ServeConfig(max_in_flight=4, max_queue=64)
            async with AsyncFrontend(index, config) as frontend:
                responses = await asyncio.gather(
                    *(frontend.submit(r) for r in requests)
                )
            return index, requests, responses, frontend

        index, requests, responses, frontend = asyncio.run(drive())
        direct, _ = build_index()
        executed = [requests[i] for i in frontend.executed_order]
        expected = replay_direct(direct, executed)
        by_index = dict(zip(frontend.executed_order, expected))
        for i, response in enumerate(responses):
            assert response.status is Status.OK
            assert response.answer == by_index[i]
        assert index_fingerprint(index) == index_fingerprint(direct)

    def test_overload_raises_typed_error(self):
        async def drive():
            index, keys = build_index()
            config = ServeConfig(max_in_flight=1, max_queue=1)
            rejected = 0
            async with AsyncFrontend(index, config) as frontend:
                tasks = [
                    asyncio.ensure_future(
                        frontend.submit(Request(RequestKind.LOOKUP, k))
                    )
                    for k in keys[:12]
                ]
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            for outcome in outcomes:
                if isinstance(outcome, OverloadError):
                    rejected += 1
                else:
                    assert outcome.status is Status.OK
            return rejected, index

        rejected, index = asyncio.run(drive())
        assert rejected > 0
        assert index.dht.metrics.serve_rejections == rejected

    def test_submit_before_enter_rejected(self):
        async def drive():
            index, keys = build_index()
            frontend = AsyncFrontend(index)
            with pytest.raises(ConfigurationError):
                await frontend.submit(Request(RequestKind.LOOKUP, keys[0]))

        asyncio.run(drive())


class TestThreadedFrontend:
    def test_concurrent_sessions_match_direct_answers(self):
        index, keys = build_index()
        config = ServeConfig(max_in_flight=4, max_queue=256)
        sessions = [keys[i::8][:12] for i in range(8)]
        out: dict[int, list] = {}
        with ThreadedFrontend(index, config) as frontend:
            def run_session(i):
                out[i] = [
                    frontend.submit(Request(RequestKind.LOOKUP, k))
                    for k in sessions[i]
                ]

            threads = [
                threading.Thread(target=run_session, args=(i,))
                for i in range(len(sessions))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        direct, _ = build_index()
        for i, session_keys in enumerate(sessions):
            for key, response in zip(session_keys, out[i]):
                assert response.status is Status.OK
                record, _ = direct.exact_match(key)
                assert response.answer == record
        submitted = sum(len(s) for s in sessions)
        assert sorted(frontend.executed_order) == list(range(submitted))

    def test_overload_raises_typed_error(self):
        # A gate holds the dispatcher inside its first batch until every
        # session thread has attempted admission, so the tiny window
        # (1 in flight + 1 queued) deterministically rejects the burst.
        gate = threading.Event()

        class GatedDHT(LocalDHT):
            def get(self, key):
                gate.wait()
                return super().get(key)

        dht = GatedDHT(n_peers=16, seed=SEED)
        index = LHTIndex(dht, IndexConfig(theta_split=THETA, max_depth=20))
        rng = np.random.default_rng(SEED + 1)
        keys = [float(k) for k in rng.random(N_KEYS)]
        gate.set()
        index.bulk_load(keys)
        gate.clear()

        config = ServeConfig(max_in_flight=1, max_queue=1)
        outcomes: list[object] = []
        lock = threading.Lock()
        with ThreadedFrontend(index, config) as frontend:
            def run_session(key):
                try:
                    response = frontend.submit(
                        Request(RequestKind.LOOKUP, key)
                    )
                except OverloadError as exc:
                    with lock:
                        outcomes.append(exc)
                else:
                    with lock:
                        outcomes.append(response)

            threads = [
                threading.Thread(target=run_session, args=(k,))
                for k in keys[:12]
            ]
            for t in threads:
                t.start()
            # Open the gate only once all 12 sessions have either been
            # admitted (and are blocked awaiting a response) or rejected.
            while True:
                with lock:
                    rejected_so_far = sum(
                        1 for o in outcomes if isinstance(o, OverloadError)
                    )
                if rejected_so_far + frontend._submitted >= 12:
                    break
            gate.set()
            for t in threads:
                t.join()
        rejected = sum(1 for o in outcomes if isinstance(o, OverloadError))
        served = [o for o in outcomes if not isinstance(o, OverloadError)]
        assert all(r.status is Status.OK for r in served)
        assert rejected + len(served) == 12
        # Window 1 + queue 1: at most 2 admitted while the gate was shut.
        assert rejected >= 10
        assert index.dht.metrics.serve_rejections == rejected

    def test_submit_before_enter_rejected(self):
        index, keys = build_index()
        frontend = ThreadedFrontend(index)
        with pytest.raises(ConfigurationError):
            frontend.submit(Request(RequestKind.LOOKUP, keys[0]))


class TestWorkloadGenerator:
    def test_same_seed_same_workload(self):
        _, keys = build_index()
        a = make_workload(keys, n=100, seed=3)
        b = make_workload(keys, n=100, seed=3)
        assert a == b

    def test_different_seed_different_workload(self):
        _, keys = build_index()
        a = make_workload(keys, n=100, seed=3)
        b = make_workload(keys, n=100, seed=4)
        assert a != b

    def test_arrivals_sorted_and_indexed(self):
        _, keys = build_index()
        workload = make_workload(keys, n=100)
        assert [a.index for a in workload] == list(range(100))
        times = [a.time for a in workload]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_sessions_round_robin(self):
        _, keys = build_index()
        workload = make_workload(keys, n=16, n_sessions=4)
        assert [a.session for a in workload] == [i % 4 for i in range(16)]

    def test_skew_repeats_hot_keys(self):
        _, keys = build_index()
        flat = make_workload(keys, n=300, skew=0.0, mix={"lookup": 1.0})
        skewed = make_workload(keys, n=300, skew=1.5, mix={"lookup": 1.0})
        assert len({a.request.key for a in skewed}) < len(
            {a.request.key for a in flat}
        )

    def test_mix_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(mix={"lookup": 0.0})
        with pytest.raises(ConfigurationError):
            WorkloadConfig(mix={"nonsense": 1.0})
        with pytest.raises(ConfigurationError):
            WorkloadConfig(rate=0.0)

    def test_empty_workload(self):
        _, keys = build_index()
        assert make_workload(keys, n=0) == []
