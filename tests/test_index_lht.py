"""Tests for the distributed LHT index: mutation, maintenance, accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    IndexConfig,
    IndexInspector,
    Label,
    LHTIndex,
    ReferenceTree,
    naming,
)
from repro.dht import LocalDHT
from repro.errors import LookupError_

unit_floats = st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False)


def _fresh(theta: int = 8, depth: int = 20, merge: bool = False):
    dht = LocalDHT(n_peers=16, seed=0)
    index = LHTIndex(
        dht, IndexConfig(theta_split=theta, max_depth=depth, merge_enabled=merge)
    )
    return index, dht


class TestBootstrap:
    def test_root_bucket_under_virtual_root(self):
        index, dht = _fresh()
        bucket = dht.peek("#")
        assert bucket is not None and bucket.label == Label.parse("#0")
        assert index.leaf_count == 1
        assert len(index) == 0


class TestInsert:
    def test_insert_returns_costs(self):
        index, _ = _fresh()
        result = index.insert(0.5, "payload")
        assert result.leaf == Label.parse("#0")
        assert result.split is None
        # lookup probes + the DHT-put towards κ
        assert result.dht_lookups >= 2

    def test_split_event_fields(self):
        index, _ = _fresh(theta=4)
        events = [index.insert(k).split for k in (0.1, 0.2, 0.3, 0.6)]
        split = next(e for e in events if e is not None)
        assert split.parent == Label.parse("#0")
        assert {split.local, split.remote} == {
            Label.parse("#00"),
            Label.parse("#01"),
        }
        assert split.dht_lookups == 1
        assert 0.0 <= split.alpha <= 1.0

    def test_remote_bucket_named_to_parent_label(self):
        """Theorem 2 made operational: after the root splits, the remote
        child is stored under the old label '#0'."""
        index, dht = _fresh(theta=4)
        for key in (0.1, 0.2, 0.3, 0.6):
            index.insert(key)
        remote = dht.peek("#0")
        local = dht.peek("#")
        assert remote is not None and local is not None
        assert naming(remote.label) == Label.parse("#0")
        assert naming(local.label) == Label.parse("#")

    def test_at_most_one_split_per_insert_even_when_skewed(self):
        index, dht = _fresh(theta=4)
        for i in range(40):
            before = index.ledger.split_count
            index.insert(1e-6 + i * 1e-9)
            assert index.ledger.split_count - before <= 1
        IndexInspector(dht).verify()

    def test_overfull_bucket_at_max_depth(self):
        """When the depth cap prevents a split the bucket absorbs the
        overflow instead of failing."""
        index, dht = _fresh(theta=4, depth=3)
        for i in range(30):
            index.insert(i / 64 + 1e-6)
        IndexInspector(dht).verify()
        assert len(index) == 30

    def test_alpha_accounting_matches_formula_on_uniform(self):
        theta = 10
        index, _ = _fresh(theta=theta)
        rng = np.random.default_rng(3)
        for key in rng.random(4000):
            index.insert(float(key))
        expected = 0.5 + 1.0 / (2 * theta)
        assert abs(index.ledger.average_alpha - expected) < 0.05


class TestDelete:
    def test_delete_present_and_absent(self):
        index, _ = _fresh()
        index.insert(0.4, "x")
        assert index.delete(0.4).deleted
        assert not index.delete(0.4).deleted
        assert len(index) == 0

    def test_merge_is_dual_of_split(self):
        index, dht = _fresh(theta=8, merge=True)
        keys = [i / 64 + 1e-6 for i in range(64)]
        for key in keys:
            index.insert(key)
        splits = index.ledger.split_count
        assert splits > 0
        for key in keys:
            index.delete(key)
        IndexInspector(dht).verify()
        assert index.ledger.merges, "deleting everything should merge leaves"
        # merged survivor keeps its storage key: state remains consistent
        assert index.range_query(0.0, 1.0).records == ()

    def test_merge_moves_records(self):
        index, _ = _fresh(theta=8, merge=True)
        keys = [i / 64 + 1e-6 for i in range(64)]
        for key in keys:
            index.insert(key)
        for key in keys[:60]:
            index.delete(key)
        moved = sum(e.records_moved for e in index.ledger.merges)
        assert moved >= 0
        assert all(e.dht_lookups == 2 for e in index.ledger.merges)


class TestBulkLoad:
    def test_accepts_pairs_and_bare_keys(self):
        index, _ = _fresh()
        index.bulk_load([0.1, (0.2, "v")])
        record, _ = index.exact_match(0.2)
        assert record.value == "v"

    def test_equivalent_tree_to_per_record_insert(self):
        rng = np.random.default_rng(1)
        keys = [float(k) for k in rng.random(1500)]
        slow, slow_dht = _fresh(theta=8)
        for key in keys:
            slow.insert(key)
        fast, fast_dht = _fresh(theta=8)
        fast.bulk_load(keys)
        slow_leaves = sorted(
            str(b.label) for b in IndexInspector(slow_dht).buckets().values()
        )
        fast_leaves = sorted(
            str(b.label) for b in IndexInspector(fast_dht).buckets().values()
        )
        assert slow_leaves == fast_leaves
        assert slow.ledger.split_count == fast.ledger.split_count
        assert (
            slow.ledger.maintenance_records_moved
            == fast.ledger.maintenance_records_moved
        )

    def test_mirror_detects_foreign_mutation(self):
        index, dht = _fresh(theta=4)
        index.bulk_load([0.1, 0.2, 0.3, 0.6, 0.7])
        # Corrupt the stored bucket behind the mirror's back.
        some_key = next(iter(dht.keys()))
        dht.put(some_key, "not a bucket")
        with pytest.raises(LookupError_):
            index.bulk_load([0.15, 0.65, 0.05, 0.95, 0.45, 0.25, 0.35])


class TestOracleEquivalence:
    @given(st.lists(unit_floats, min_size=1, max_size=300))
    def test_distributed_state_matches_reference(self, keys):
        index, dht = _fresh(theta=4, depth=40)
        tree = ReferenceTree(IndexConfig(theta_split=4, max_depth=40))
        for key in keys:
            index.insert(key)
            tree.insert(key)
        tree.check_invariants()
        inspector = IndexInspector(dht)
        inspector.verify()
        assert sorted(
            str(b.label) for b in inspector.buckets().values()
        ) == sorted(str(l) for l in tree.leaf_labels)
        assert inspector.all_keys() == tree.all_keys()

    @given(
        st.lists(unit_floats, min_size=1, max_size=120),
        st.randoms(use_true_random=False),
    )
    def test_mixed_workload_stays_consistent(self, keys, rand):
        index, dht = _fresh(theta=4, depth=40, merge=True)
        live: list[float] = []
        for key in keys:
            if live and rand.random() < 0.35:
                victim = live.pop(rand.randrange(len(live)))
                assert index.delete(victim).deleted
            else:
                index.insert(key)
                live.append(key)
        IndexInspector(dht).verify()
        assert IndexInspector(dht).all_keys() == sorted(live)


class TestIntrospection:
    def test_leaf_labels_ordered(self):
        index, _ = _fresh(theta=4)
        rng = np.random.default_rng(2)
        for key in rng.random(200):
            index.insert(float(key))
        labels = index.leaf_labels()
        lows = [label.interval.low for label in labels]
        assert lows == sorted(lows)
        assert index.leaf_count == len(labels)
        assert index.depth == max(l.depth for l in labels)

    def test_contains(self):
        index, _ = _fresh()
        index.insert(0.42)
        assert 0.42 in index
        assert 0.43 not in index

    def test_stats_inspector(self):
        index, dht = _fresh(theta=4)
        rng = np.random.default_rng(4)
        for key in rng.random(300):
            index.insert(float(key))
        stats = IndexInspector(dht).stats()
        assert stats.n_records == 300
        assert stats.n_leaves == index.leaf_count
        assert stats.min_depth <= stats.mean_depth <= stats.max_depth
        assert sum(stats.depth_histogram.values()) == stats.n_leaves
