"""Regression tests for the array-backed PeerStore sorted-id index.

Pre-PR, Chord kept a private ``_sorted_cache`` that a single join or
leave invalidated, forcing a full ``sorted()`` rebuild on the next
route.  The kernel now maintains one incrementally-spliced index for
all substrates; these tests pin that the spliced index never drifts
from a from-scratch rebuild under arbitrary churn, and that routing on
a churned ring is identical to routing on a freshly rebuilt copy.
"""

from __future__ import annotations

import random

import pytest

from repro.dht.chord import ChordDHT
from repro.dht.kernel import PeerStore
from repro.errors import NoSuchPeerError


class TestPeerStoreIndex:
    def test_spliced_index_matches_full_rebuild_under_churn(self):
        store = PeerStore()
        rng = random.Random(11)
        live: set[int] = set()
        for step in range(400):
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                live.discard(victim)
                store.remove_peer(victim)
            else:
                peer = rng.randrange(1 << 16)
                if peer in live:
                    continue
                live.add(peer)
                store.add_peer(peer)
            assert store.sorted_ids() == sorted(live), f"drift at step {step}"

    def test_successor_of_matches_naive_scan(self):
        store = PeerStore()
        ids = [5, 17, 42, 99, 200]
        for peer in ids:
            store.add_peer(peer)
        for point in [0, 5, 6, 17, 41, 99, 150, 200, 201, 1 << 20]:
            expected = min(
                (i for i in ids if i >= point), default=min(ids)
            )
            assert store.successor_of(point) == expected

    def test_successor_of_empty_store_raises(self):
        with pytest.raises(NoSuchPeerError):
            PeerStore().successor_of(0)

    def test_remove_unknown_peer_leaves_index_intact(self):
        store = PeerStore()
        store.add_peer(7)
        with pytest.raises(NoSuchPeerError):
            store.remove_peer(8)
        assert store.sorted_ids() == [7]


class TestChordChurnRouting:
    def test_churned_ring_routes_like_a_rebuilt_index(self):
        """After joins and leaves, routing on the incrementally-spliced
        index equals routing on a deep copy whose index is rebuilt from
        scratch with ``sorted()`` — the old ``_sorted_cache`` protocol.
        Identical (owner, hops) on every probe means the splices left
        no stale or misordered entries behind."""
        import copy

        churned = ChordDHT(n_peers=24, seed=3)
        rng = random.Random(7)
        for _ in range(10):
            churned.leave(rng.choice(churned.peers.sorted_ids()))
        joined = [churned.join() for _ in range(6)]
        assert all(node_id in churned.peers for node_id in joined)

        rebuilt = copy.deepcopy(churned)
        rebuilt.peers._sorted_ids = sorted(rebuilt.peers._stores)
        assert churned.peers.sorted_ids() == rebuilt.peers.sorted_ids()
        for i in range(100):
            key = f"route-key-{i}"
            assert churned.route(key) == rebuilt.route(key)

    def test_owner_resolution_is_identical_before_and_after_index(self):
        """peer_of must agree with the naive sorted-scan successor rule
        on a churned ring — the exact property the old ``_sorted_cache``
        rebuild guaranteed."""
        from repro.dht.hashing import hash_key

        dht = ChordDHT(n_peers=24, seed=3)
        rng = random.Random(7)
        for _ in range(8):
            dht.leave(rng.choice(dht.peers.sorted_ids()))
        for _ in range(4):
            dht.join()
        ids = sorted(dht.peers.sorted_ids())
        for i in range(200):
            key = f"churn-key-{i}"
            kid = hash_key(key, dht.id_bits)
            expected = min(
                (p for p in ids if p >= kid), default=min(ids)
            )
            assert dht.peer_of(key) == expected
