"""The sorted bulk-build fast path (repro.core.bulkbuild).

Contract under test: ``bulk_load(items, fast=True)`` leaves the DHT in
exactly the state the incremental algorithm produces for the *sorted*
input — byte-identical leaf buckets under the same keys — while issuing
exactly one routed put per final leaf and moving zero records.  Query
answers therefore match the incremental build for any insertion order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pht import PHTIndex
from repro.core import serialize
from repro.core.config import IndexConfig
from repro.core.index import LHTIndex
from repro.dht.local import LocalDHT
from repro.experiments.common import SUBSTRATES


def _lht_state(dht) -> dict[str, bytes]:
    """DHT key -> canonical bucket bytes (the byte-identity fingerprint)."""
    return {key: serialize.dumps(dht.peek(key)) for key in dht.keys()}


def _pht_state(dht) -> dict[str, tuple]:
    out = {}
    for key in dht.keys():
        node = dht.peek(key)
        out[key] = (
            node.label.bits,
            node.is_leaf,
            tuple((r.key, r.value) for r in node.records),
            None if node.prev_label is None else node.prev_label.bits,
            None if node.next_label is None else node.next_label.bits,
        )
    return out


def _pair(theta: int = 8, depth: int = 12, scheme: str = "lht"):
    """Two identical index/DHT stacks, one per build path."""
    cls = LHTIndex if scheme == "lht" else PHTIndex
    config = IndexConfig(theta_split=theta, max_depth=depth)
    fast = cls(LocalDHT(n_peers=16, seed=3), config)
    slow = cls(LocalDHT(n_peers=16, seed=3), config)
    return fast, slow


keys_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, exclude_max=True, width=32),
    max_size=120,
)


class TestLHTEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(keys=keys_lists)
    def test_fast_matches_incremental_on_sorted_input(self, keys):
        fast, slow = _pair()
        fast.bulk_load(list(keys), fast=True)
        slow.bulk_load(sorted(keys))
        assert _lht_state(fast.dht) == _lht_state(slow.dht)
        assert fast.leaf_count == slow.leaf_count
        assert fast.record_count == slow.record_count

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_lists)
    def test_query_answers_match_any_insertion_order(self, keys):
        fast, slow = _pair()
        fast.bulk_load(list(keys), fast=True)
        slow.bulk_load(list(keys))  # unsorted incremental
        for key in keys:
            frec, _ = fast.exact_match(key)
            srec, _ = slow.exact_match(key)
            assert frec is not None and srec is not None
            assert frec.key == srec.key
        fr = fast.range_query(0.2, 0.8)
        sr = slow.range_query(0.2, 0.8)
        assert [r.key for r in fr.records] == [r.key for r in sr.records]

    def test_layered_loads_compose(self):
        """A fast load on top of an already-built index must equal the
        incremental replay of the same sorted batch."""
        rng = np.random.default_rng(7)
        first = [float(k) for k in rng.random(200)]
        second = [float(k) for k in rng.random(200)]
        fast, slow = _pair(theta=16, depth=16)
        fast.bulk_load(first)
        slow.bulk_load(first)
        fast.bulk_load(second, fast=True)
        slow.bulk_load(sorted(second))
        assert _lht_state(fast.dht) == _lht_state(slow.dht)

    def test_empty_load_is_free(self):
        fast, _ = _pair()
        before = fast.dht.metrics.snapshot()
        assert fast.bulk_load([], fast=True) == 0
        spent = fast.dht.metrics.snapshot() - before
        assert spent.puts == 0


@pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
class TestSubstrateIndependence:
    def test_one_put_per_leaf_zero_moves(self, substrate):
        rng = np.random.default_rng(11)
        keys = [float(k) for k in rng.random(600)]
        config = IndexConfig(theta_split=24, max_depth=16)
        fast = LHTIndex(SUBSTRATES[substrate](16, 5), config)
        slow = LHTIndex(SUBSTRATES[substrate](16, 5), config)

        before = fast.dht.metrics.snapshot()
        fast.bulk_load(keys, fast=True)
        spent = fast.dht.metrics.snapshot() - before
        assert spent.puts == fast.leaf_count
        assert spent.records_moved == 0

        slow.bulk_load(sorted(keys))
        assert _lht_state(fast.dht) == _lht_state(slow.dht)


class TestPHTEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(keys=keys_lists)
    def test_fast_matches_incremental_on_sorted_input(self, keys):
        fast, slow = _pair(scheme="pht")
        fast.bulk_load(list(keys), fast=True)
        slow.bulk_load(sorted(keys))
        assert _pht_state(fast.dht) == _pht_state(slow.dht)

    def test_leaf_chain_links_survive_fast_build(self):
        rng = np.random.default_rng(13)
        keys = [float(k) for k in rng.random(400)]
        fast, slow = _pair(theta=16, depth=16, scheme="pht")
        fast.bulk_load(keys, fast=True)
        slow.bulk_load(sorted(keys))
        assert _pht_state(fast.dht) == _pht_state(slow.dht)
        # The chain must answer range queries identically.
        fr = fast.range_query_sequential(0.1, 0.6)
        sr = slow.range_query_sequential(0.1, 0.6)
        assert [r.key for r in fr.records] == [r.key for r in sr.records]
